//! Site statistics (Section 6.2).
//!
//! The cost function relies on quantitative knowledge of the site,
//! "initially estimated exploring the site by means of a tool such as
//! WebSQL, and updated on a regular basis":
//!
//! * `|P|` — page-scheme cardinalities;
//! * `|L|` — average fan-out of each nested list attribute;
//! * `c_A` — number of distinct values of each mono-valued attribute
//!   (selectivity `s_A = 1/c_A`);
//! * join selectivities (defaulted to `1/max(c_A, c_B)` under the uniform
//!   distribution assumption, overridable);
//! * average page size per scheme — a secondary cost component that breaks
//!   ties between plans with equal page counts (the paper's strategy 2 is
//!   preferred over strategy 1 because the database-conference list "is a
//!   smaller page").
//!
//! Statistics can be [`SiteStatistics::crawl`]ed through the same
//! page-source abstraction the evaluator uses, computed from a generated
//! site's ground truth, or written/parsed in a plain text format.

use adm::{Field, Tuple, Value, WebScheme, WebType};
use nalg::PageSource;
use std::collections::{HashMap, HashSet};

/// Quantitative description of a site instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteStatistics {
    /// `|P|` per page-scheme.
    pub scheme_card: HashMap<String, f64>,
    /// Average items per occurrence of each list attribute
    /// (key: `Scheme.Path`).
    pub fanout: HashMap<String, f64>,
    /// Distinct non-null values per mono attribute (key: `Scheme.Path`).
    pub distinct: HashMap<String, f64>,
    /// Average page size in bytes per scheme.
    pub page_bytes: HashMap<String, f64>,
    /// Join-selectivity overrides keyed by the two scheme-qualified
    /// attribute paths (order-normalized).
    pub join_selectivity: HashMap<(String, String), f64>,
}

impl SiteStatistics {
    /// Cardinality of a scheme (default 1.0 — unknown schemes are treated
    /// as entry-point-like singletons).
    pub fn card(&self, scheme: &str) -> f64 {
        *self.scheme_card.get(scheme).unwrap_or(&1.0)
    }

    /// Fan-out of a list attribute (default 1.0).
    pub fn fanout_of(&self, key: &str) -> f64 {
        *self.fanout.get(key).unwrap_or(&1.0)
    }

    /// Distinct count of a mono attribute; defaults to the cardinality of
    /// its scheme (attributes assumed key-like when unknown).
    pub fn distinct_of(&self, key: &str) -> f64 {
        if let Some(v) = self.distinct.get(key) {
            return *v;
        }
        let scheme = key.split('.').next().unwrap_or("");
        self.card(scheme).max(1.0)
    }

    /// Average page bytes for a scheme (default 1024).
    pub fn bytes_of(&self, scheme: &str) -> f64 {
        *self.page_bytes.get(scheme).unwrap_or(&1024.0)
    }

    /// Join selectivity between two scheme-qualified attributes:
    /// an override if present, else `1/max(c_A, c_B)`.
    pub fn selectivity(&self, a: &str, b: &str) -> f64 {
        let key = if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        if let Some(v) = self.join_selectivity.get(&key) {
            return *v;
        }
        1.0 / self.distinct_of(a).max(self.distinct_of(b)).max(1.0)
    }

    /// True if an attribute is key-like for its scheme (distinct count ≈
    /// page count at its occurrence level). Used by the repeated-navigation
    /// rule (rule 4), which is only sound when the join attribute
    /// functionally identifies the page.
    pub fn is_key_like(&self, scheme: &str, attr_key: &str) -> bool {
        let card = self.card(scheme);
        self.distinct_of(attr_key) + 0.5 >= card
    }

    /// Collects statistics by crawling the site from its entry points
    /// through a page source (the paper's "exploring the site").
    pub fn crawl(ws: &WebScheme, source: &impl PageSource) -> SiteStatistics {
        Self::from_instance(ws, &crate::crawl::crawl_instance(ws, source))
    }

    /// Collects statistics from an already-crawled instance.
    pub fn from_instance(ws: &WebScheme, instance: &crate::crawl::SiteInstance) -> SiteStatistics {
        let mut acc = Accumulator::default();
        for (scheme, pages) in instance {
            let Ok(ps) = ws.scheme(scheme) else { continue };
            for (_, tuple) in pages {
                acc.record_page(scheme, &ps.fields, tuple);
            }
        }
        acc.finish()
    }

    /// Computes statistics from a generated site's ground truth (a cheap
    /// oracle equivalent of crawling; page sizes are taken from the server
    /// and the access counters are reset afterwards).
    pub fn from_site(site: &websim::Site) -> SiteStatistics {
        let mut acc = Accumulator::default();
        let mut bytes: HashMap<String, (f64, f64)> = HashMap::new();
        for ps in site.scheme.schemes() {
            for (url, tuple) in site.instance(&ps.name) {
                acc.record_page(&ps.name, &ps.fields, &tuple);
                if let Ok(resp) = site.server.get(&url) {
                    let e = bytes.entry(ps.name.clone()).or_insert((0.0, 0.0));
                    e.0 += resp.body.len() as f64;
                    e.1 += 1.0;
                }
            }
        }
        site.server.reset_stats();
        let mut stats = acc.finish();
        stats.page_bytes = bytes
            .into_iter()
            .map(|(k, (total, n))| (k, total / n.max(1.0)))
            .collect();
        stats
    }

    /// Serializes to a plain text format (one datum per line).
    pub fn to_text(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        let mut sorted: Vec<_> = self.scheme_card.iter().collect();
        sorted.sort_by_key(|(k, _)| (*k).clone());
        for (k, v) in sorted {
            lines.push(format!("card {k} {v}"));
        }
        let mut sorted: Vec<_> = self.fanout.iter().collect();
        sorted.sort_by_key(|(k, _)| (*k).clone());
        for (k, v) in sorted {
            lines.push(format!("fanout {k} {v}"));
        }
        let mut sorted: Vec<_> = self.distinct.iter().collect();
        sorted.sort_by_key(|(k, _)| (*k).clone());
        for (k, v) in sorted {
            lines.push(format!("distinct {k} {v}"));
        }
        let mut sorted: Vec<_> = self.page_bytes.iter().collect();
        sorted.sort_by_key(|(k, _)| (*k).clone());
        for (k, v) in sorted {
            lines.push(format!("bytes {k} {v}"));
        }
        let mut sorted: Vec<_> = self.join_selectivity.iter().collect();
        sorted.sort_by_key(|(k, _)| (*k).clone());
        for ((a, b), v) in sorted {
            lines.push(format!("jsel {a} {b} {v}"));
        }
        lines.join("\n")
    }

    /// Parses the text format produced by [`SiteStatistics::to_text`].
    /// Unknown or malformed lines are skipped.
    pub fn from_text(text: &str) -> SiteStatistics {
        let mut s = SiteStatistics::default();
        for line in text.lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["card", k, v] => {
                    if let Ok(v) = v.parse() {
                        s.scheme_card.insert((*k).to_string(), v);
                    }
                }
                ["fanout", k, v] => {
                    if let Ok(v) = v.parse() {
                        s.fanout.insert((*k).to_string(), v);
                    }
                }
                ["distinct", k, v] => {
                    if let Ok(v) = v.parse() {
                        s.distinct.insert((*k).to_string(), v);
                    }
                }
                ["bytes", k, v] => {
                    if let Ok(v) = v.parse() {
                        s.page_bytes.insert((*k).to_string(), v);
                    }
                }
                ["jsel", a, b, v] => {
                    if let Ok(v) = v.parse() {
                        s.join_selectivity
                            .insert(((*a).to_string(), (*b).to_string()), v);
                    }
                }
                _ => {}
            }
        }
        s
    }
}

/// Incremental accumulator for per-attribute statistics.
#[derive(Default)]
struct Accumulator {
    card: HashMap<String, f64>,
    // list path -> (total items, occurrences)
    lists: HashMap<String, (f64, f64)>,
    // mono path -> distinct values
    values: HashMap<String, HashSet<Value>>,
}

impl Accumulator {
    fn record_page(&mut self, scheme: &str, fields: &[Field], tuple: &Tuple) {
        *self.card.entry(scheme.to_string()).or_insert(0.0) += 1.0;
        self.record_fields(scheme, fields, std::slice::from_ref(tuple));
    }

    fn record_fields(&mut self, prefix: &str, fields: &[Field], rows: &[Tuple]) {
        for f in fields {
            let key = format!("{prefix}.{}", f.name);
            match &f.ty {
                WebType::List(inner) => {
                    for row in rows {
                        if let Some(Value::List(items)) = row.get(&f.name) {
                            let e = self.lists.entry(key.clone()).or_insert((0.0, 0.0));
                            e.0 += items.len() as f64;
                            e.1 += 1.0;
                            self.record_fields(&key, inner, items);
                        }
                    }
                }
                _ => {
                    for row in rows {
                        if let Some(v) = row.get(&f.name) {
                            if !v.is_null() {
                                self.values
                                    .entry(key.clone())
                                    .or_default()
                                    .insert(v.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    fn finish(self) -> SiteStatistics {
        SiteStatistics {
            scheme_card: self.card,
            fanout: self
                .lists
                .into_iter()
                .map(|(k, (items, occ))| (k, items / occ.max(1.0)))
                .collect(),
            distinct: self
                .values
                .into_iter()
                .map(|(k, set)| (k, set.len() as f64))
                .collect(),
            page_bytes: HashMap::new(),
            join_selectivity: HashMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::LiveSource;
    use websim::sitegen::{University, UniversityConfig};

    fn uni() -> University {
        University::generate(UniversityConfig {
            departments: 3,
            professors: 9,
            courses: 18,
            seed: 6,
            ..UniversityConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn crawl_measures_cardinalities() {
        let u = uni();
        let src = LiveSource::for_site(&u.site);
        let stats = SiteStatistics::crawl(&u.site.scheme, &src);
        assert_eq!(stats.card("ProfPage"), 9.0);
        assert_eq!(stats.card("CoursePage"), 18.0);
        assert_eq!(stats.card("DeptPage"), 3.0);
        assert_eq!(stats.card("SessionPage"), 3.0);
        assert_eq!(stats.card("HomePage"), 1.0);
    }

    #[test]
    fn crawl_matches_ground_truth_stats() {
        let u = uni();
        let src = LiveSource::for_site(&u.site);
        let crawled = SiteStatistics::crawl(&u.site.scheme, &src);
        let truth = SiteStatistics::from_site(&u.site);
        assert_eq!(crawled.scheme_card, truth.scheme_card);
        assert_eq!(crawled.fanout, truth.fanout);
        assert_eq!(crawled.distinct, truth.distinct);
    }

    #[test]
    fn fanout_and_distincts_are_consistent() {
        let u = uni();
        let stats = SiteStatistics::from_site(&u.site);
        // every professor appears exactly once in the professor list
        assert_eq!(stats.fanout_of("ProfListPage.ProfList"), 9.0);
        // PName is a key of ProfPage
        assert!(stats.is_key_like("ProfPage", "ProfPage.PName"));
        // Session has 3 distinct values on 18 course pages: not a key
        assert!(!stats.is_key_like("CoursePage", "CoursePage.Session"));
        assert_eq!(stats.distinct_of("CoursePage.Session"), 3.0);
        // average courses per session = 18/3
        assert!((stats.fanout_of("SessionPage.CourseList") - 6.0).abs() < 1e-9);
    }

    #[test]
    fn selectivity_default_and_override() {
        let u = uni();
        let mut stats = SiteStatistics::from_site(&u.site);
        let s = stats.selectivity("CoursePage.CName", "ProfPage.CourseList.CName");
        assert!((s - 1.0 / 18.0).abs() < 1e-9);
        stats.join_selectivity.insert(
            (
                "CoursePage.CName".to_string(),
                "ProfPage.CourseList.CName".to_string(),
            ),
            0.25,
        );
        // order-normalized lookup
        assert_eq!(
            stats.selectivity("ProfPage.CourseList.CName", "CoursePage.CName"),
            0.25
        );
    }

    #[test]
    fn text_round_trip() {
        let u = uni();
        let stats = SiteStatistics::from_site(&u.site);
        let text = stats.to_text();
        let parsed = SiteStatistics::from_text(&text);
        assert_eq!(stats.scheme_card, parsed.scheme_card);
        assert_eq!(stats.fanout, parsed.fanout);
        assert_eq!(stats.distinct, parsed.distinct);
        assert_eq!(stats.page_bytes, parsed.page_bytes);
    }

    #[test]
    fn defaults_for_unknown_keys() {
        let stats = SiteStatistics::default();
        assert_eq!(stats.card("Nope"), 1.0);
        assert_eq!(stats.fanout_of("Nope.L"), 1.0);
        assert_eq!(stats.bytes_of("Nope"), 1024.0);
        assert!(stats.selectivity("A.X", "B.Y") <= 1.0);
    }

    #[test]
    fn page_bytes_measured() {
        let u = uni();
        let stats = SiteStatistics::from_site(&u.site);
        // the professor list page is bigger than a single course page? Not
        // necessarily — but both must be measured and positive.
        assert!(stats.bytes_of("ProfListPage") > 0.0);
        assert!(stats.bytes_of("CoursePage") > 0.0);
        // stats collection must not leave access counters dirty
        assert_eq!(u.site.server.stats().gets, 0);
    }
}
