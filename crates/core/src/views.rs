//! External relations and their default navigations (Section 5, rule 1).
//!
//! An external relation is a flat relation offered to users; its extent is
//! not directly accessible and must be built by navigating the site. Each
//! relation carries one or more **default navigations**: computable NALG
//! expressions plus a *binding* from each relational attribute to the
//! qualified column that materializes it. The paper's five university
//! external relations (items 1–5 of Section 5) are provided verbatim by
//! [`university_catalog`]; [`bibliography_catalog`] covers the
//! introduction's bibliography site.
//!
//! Some designer-declared navigations are **incomplete**: they reach only a
//! subset of the extent (e.g. the database-conference list covers only
//! database conferences). The paper notes the converse containments do not
//! hold in general; such navigations are marked and only used when the
//! optimizer is explicitly allowed to (the introduction's strategies 2 and
//! 3 are of this kind — correct for VLDB queries because VLDB appears in
//! every list).

use crate::{OptError, Result};
use adm::WebScheme;
use nalg::NalgExpr;
use std::collections::BTreeMap;

/// A computable navigation materializing an external relation.
#[derive(Debug, Clone, PartialEq)]
pub struct DefaultNavigation {
    /// The navigation expression (no σ/π; those are applied by queries).
    pub expr: NalgExpr,
    /// Attribute → fully qualified column.
    pub bindings: Vec<(String, String)>,
    /// Whether this navigation reaches the *whole* extent. Incomplete
    /// navigations (subset paths) are only used when explicitly enabled.
    pub complete: bool,
}

impl DefaultNavigation {
    /// A complete navigation.
    pub fn new<S: Into<String>>(expr: NalgExpr, bindings: Vec<(S, S)>) -> Self {
        DefaultNavigation {
            expr,
            bindings: bindings
                .into_iter()
                .map(|(a, c)| (a.into(), c.into()))
                .collect(),
            complete: true,
        }
    }

    /// Marks the navigation as reaching only a subset of the extent.
    pub fn incomplete(mut self) -> Self {
        self.complete = false;
        self
    }

    /// The qualified column bound to an attribute.
    pub fn binding(&self, attr: &str) -> Option<&str> {
        self.bindings
            .iter()
            .find_map(|(a, c)| (a == attr).then_some(c.as_str()))
    }
}

/// An external relation: name, attributes, and default navigations.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalRelation {
    /// Relation name.
    pub name: String,
    /// Attribute names.
    pub attrs: Vec<String>,
    /// Default navigations (rule 1 alternatives).
    pub navigations: Vec<DefaultNavigation>,
}

impl ExternalRelation {
    /// Creates an external relation.
    pub fn new<S: Into<String>>(
        name: impl Into<String>,
        attrs: Vec<S>,
        navigations: Vec<DefaultNavigation>,
    ) -> Self {
        ExternalRelation {
            name: name.into(),
            attrs: attrs.into_iter().map(Into::into).collect(),
            navigations,
        }
    }
}

/// The set of external relations offered over a site.
#[derive(Debug, Clone, Default)]
pub struct ViewCatalog {
    relations: BTreeMap<String, ExternalRelation>,
}

impl ViewCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        ViewCatalog::default()
    }

    /// Adds a relation (builder style).
    pub fn with(mut self, rel: ExternalRelation) -> Self {
        self.relations.insert(rel.name.clone(), rel);
        self
    }

    /// Looks a relation up.
    pub fn relation(&self, name: &str) -> Result<&ExternalRelation> {
        self.relations
            .get(name)
            .ok_or_else(|| OptError::UnknownRelation(name.to_string()))
    }

    /// All relations, name-ordered.
    pub fn relations(&self) -> impl Iterator<Item = &ExternalRelation> {
        self.relations.values()
    }

    /// Checks that every navigation is computable, that every binding
    /// resolves against its navigation's output columns, and that every
    /// attribute is bound by every navigation.
    pub fn validate(&self, ws: &WebScheme) -> Result<()> {
        for rel in self.relations.values() {
            if rel.navigations.is_empty() {
                return Err(OptError::BadQuery(format!(
                    "external relation {} has no default navigation",
                    rel.name
                )));
            }
            for nav in &rel.navigations {
                if !nav.expr.is_computable() {
                    return Err(OptError::NoPlan(format!(
                        "default navigation for {} is not computable",
                        rel.name
                    )));
                }
                let cols = nav.expr.output_columns(ws).map_err(OptError::Eval)?;
                for attr in &rel.attrs {
                    let col = nav
                        .binding(attr)
                        .ok_or_else(|| OptError::UnknownViewAttribute {
                            relation: rel.name.clone(),
                            attr: attr.clone(),
                        })?;
                    nalg::expr::resolve_column(&cols, col).map_err(OptError::Eval)?;
                }
            }
        }
        Ok(())
    }
}

/// The paper's external schema over the university site (Section 5,
/// items 1–5, with exactly the paper's default navigations — including the
/// two alternatives for `CourseInstructor` and `ProfDept`).
pub fn university_catalog() -> ViewCatalog {
    let prof_spine = || {
        NalgExpr::entry("ProfListPage")
            .unnest("ProfList")
            .follow("ToProf", "ProfPage")
    };
    let dept_spine = || {
        NalgExpr::entry("DeptListPage")
            .unnest("DeptList")
            .follow("ToDept", "DeptPage")
    };
    let course_spine = || {
        NalgExpr::entry("SessionListPage")
            .unnest("SesList")
            .follow("ToSes", "SessionPage")
            .unnest("SessionPage.CourseList")
            .follow("SessionPage.CourseList.ToCourse", "CoursePage")
    };

    ViewCatalog::new()
        .with(ExternalRelation::new(
            "Dept",
            vec!["DName", "Address"],
            vec![DefaultNavigation::new(
                dept_spine(),
                vec![("DName", "DeptPage.DName"), ("Address", "DeptPage.Address")],
            )],
        ))
        .with(ExternalRelation::new(
            "Professor",
            vec!["PName", "Rank", "Email"],
            vec![DefaultNavigation::new(
                prof_spine(),
                vec![
                    ("PName", "ProfPage.PName"),
                    ("Rank", "ProfPage.Rank"),
                    ("Email", "ProfPage.Email"),
                ],
            )],
        ))
        .with(ExternalRelation::new(
            "Course",
            vec!["CName", "Session", "Description", "Type"],
            vec![DefaultNavigation::new(
                course_spine(),
                vec![
                    ("CName", "CoursePage.CName"),
                    ("Session", "CoursePage.Session"),
                    ("Description", "CoursePage.Description"),
                    ("Type", "CoursePage.Type"),
                ],
            )],
        ))
        .with(ExternalRelation::new(
            "CourseInstructor",
            vec!["CName", "PName"],
            vec![
                DefaultNavigation::new(
                    prof_spine().unnest("ProfPage.CourseList"),
                    vec![
                        ("CName", "ProfPage.CourseList.CName"),
                        ("PName", "ProfPage.PName"),
                    ],
                ),
                DefaultNavigation::new(
                    course_spine(),
                    vec![("CName", "CoursePage.CName"), ("PName", "CoursePage.PName")],
                ),
            ],
        ))
        .with(ExternalRelation::new(
            "ProfDept",
            vec!["PName", "DName"],
            vec![
                DefaultNavigation::new(
                    prof_spine(),
                    vec![("PName", "ProfPage.PName"), ("DName", "ProfPage.DName")],
                ),
                DefaultNavigation::new(
                    dept_spine().unnest("DeptPage.ProfList"),
                    vec![
                        ("PName", "DeptPage.ProfList.PName"),
                        ("DName", "DeptPage.DName"),
                    ],
                ),
            ],
        ))
}

/// The external schema over the bibliography site. `AuthorPub` carries the
/// four navigation strategies of the paper's introduction: all-conferences,
/// database-conferences (incomplete), featured (incomplete), and
/// author-first.
pub fn bibliography_catalog() -> ViewCatalog {
    let via_conf_list = |entry_link: &str, list_page: &str| {
        NalgExpr::entry("BibHomePage")
            .follow(entry_link, list_page)
            .unnest("ConfList")
            .follow("ToConf", "ConfPage")
            .unnest("EditionList")
            .follow("ToEdition", "EditionPage")
            .unnest("PaperList")
            .unnest("EditionPage.PaperList.Authors")
    };
    let author_pub_bindings = || {
        vec![
            ("AName", "EditionPage.PaperList.Authors.AName"),
            ("ConfName", "EditionPage.ConfName"),
            ("Year", "EditionPage.Year"),
        ]
    };

    ViewCatalog::new()
        .with(ExternalRelation::new(
            "Conference",
            vec!["ConfName"],
            vec![DefaultNavigation::new(
                NalgExpr::entry("BibHomePage")
                    .follow("ToConfList", "ConfListPage")
                    .unnest("ConfList"),
                vec![("ConfName", "ConfListPage.ConfList.ConfName")],
            )],
        ))
        .with(ExternalRelation::new(
            "ConfEdition",
            vec!["ConfName", "Year", "Editors"],
            vec![DefaultNavigation::new(
                NalgExpr::entry("BibHomePage")
                    .follow("ToConfList", "ConfListPage")
                    .unnest("ConfList")
                    .follow("ToConf", "ConfPage")
                    .unnest("EditionList")
                    .follow("ToEdition", "EditionPage"),
                vec![
                    ("ConfName", "EditionPage.ConfName"),
                    ("Year", "EditionPage.Year"),
                    ("Editors", "EditionPage.Editors"),
                ],
            )],
        ))
        .with(ExternalRelation::new(
            "Author",
            vec!["AName"],
            vec![DefaultNavigation::new(
                NalgExpr::entry("BibHomePage")
                    .follow("ToAuthorList", "AuthorListPage")
                    .unnest("AuthorList"),
                vec![("AName", "AuthorListPage.AuthorList.AName")],
            )],
        ))
        .with(ExternalRelation::new(
            "AuthorPub",
            vec!["AName", "ConfName", "Year"],
            vec![
                // Strategy 1: through the list of all conferences.
                DefaultNavigation::new(
                    via_conf_list("ToConfList", "ConfListPage"),
                    author_pub_bindings(),
                ),
                // Strategy 2: through the (smaller) database-conference
                // list — complete only for database conferences.
                DefaultNavigation::new(
                    via_conf_list("ToDBConfList", "DBConfListPage"),
                    author_pub_bindings(),
                )
                .incomplete(),
                // Strategy 3: through the home page's featured links —
                // complete only for featured conferences.
                DefaultNavigation::new(
                    NalgExpr::entry("BibHomePage")
                        .unnest("Featured")
                        .follow("ToConf", "ConfPage")
                        .unnest("EditionList")
                        .follow("ToEdition", "EditionPage")
                        .unnest("PaperList")
                        .unnest("EditionPage.PaperList.Authors"),
                    author_pub_bindings(),
                )
                .incomplete(),
                // Strategy 4: author-first — go through every author page.
                DefaultNavigation::new(
                    NalgExpr::entry("BibHomePage")
                        .follow("ToAuthorList", "AuthorListPage")
                        .unnest("AuthorList")
                        .follow("ToAuthor", "AuthorPage")
                        .unnest("PubList"),
                    vec![
                        ("AName", "AuthorPage.AName"),
                        ("ConfName", "AuthorPage.PubList.ConfName"),
                        ("Year", "AuthorPage.PubList.Year"),
                    ],
                ),
            ],
        ))
        .with(ExternalRelation::new(
            "Paper",
            vec!["Title", "ConfName", "Year"],
            vec![DefaultNavigation::new(
                NalgExpr::entry("BibHomePage")
                    .follow("ToConfList", "ConfListPage")
                    .unnest("ConfList")
                    .follow("ToConf", "ConfPage")
                    .unnest("EditionList")
                    .follow("ToEdition", "EditionPage")
                    .unnest("PaperList"),
                vec![
                    ("Title", "EditionPage.PaperList.Title"),
                    ("ConfName", "EditionPage.ConfName"),
                    ("Year", "EditionPage.Year"),
                ],
            )],
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::sitegen::bibliography::bibliography_scheme;
    use websim::sitegen::university::university_scheme;

    #[test]
    fn university_catalog_validates() {
        let cat = university_catalog();
        cat.validate(&university_scheme()).unwrap();
        assert_eq!(cat.relations().count(), 5);
    }

    #[test]
    fn bibliography_catalog_validates() {
        let cat = bibliography_catalog();
        cat.validate(&bibliography_scheme()).unwrap();
    }

    #[test]
    fn paper_relations_present_with_alternatives() {
        let cat = university_catalog();
        assert_eq!(
            cat.relation("CourseInstructor").unwrap().navigations.len(),
            2
        );
        assert_eq!(cat.relation("ProfDept").unwrap().navigations.len(), 2);
        assert_eq!(cat.relation("Professor").unwrap().navigations.len(), 1);
    }

    #[test]
    fn author_pub_has_four_strategies() {
        let cat = bibliography_catalog();
        let rel = cat.relation("AuthorPub").unwrap();
        assert_eq!(rel.navigations.len(), 4);
        let complete: Vec<bool> = rel.navigations.iter().map(|n| n.complete).collect();
        assert_eq!(complete, vec![true, false, false, true]);
    }

    #[test]
    fn bindings_resolve() {
        let cat = university_catalog();
        let rel = cat.relation("Course").unwrap();
        assert_eq!(
            rel.navigations[0].binding("Session"),
            Some("CoursePage.Session")
        );
        assert_eq!(rel.navigations[0].binding("Nope"), None);
    }

    #[test]
    fn unknown_relation_error() {
        let cat = university_catalog();
        assert!(matches!(
            cat.relation("Nope"),
            Err(OptError::UnknownRelation(_))
        ));
    }

    #[test]
    fn catalog_rejects_unbound_attr() {
        let ws = university_scheme();
        let bad = ViewCatalog::new().with(ExternalRelation::new(
            "Broken",
            vec!["X"],
            vec![DefaultNavigation::new(
                NalgExpr::entry("ProfListPage"),
                Vec::<(&str, &str)>::new(),
            )],
        ));
        assert!(bad.validate(&ws).is_err());
    }

    #[test]
    fn catalog_rejects_noncomputable_nav() {
        let ws = university_scheme();
        let bad = ViewCatalog::new().with(ExternalRelation::new(
            "Broken",
            vec!["X"],
            vec![DefaultNavigation::new(
                NalgExpr::external("Y"),
                vec![("X", "Y.X")],
            )],
        ));
        assert!(bad.validate(&ws).is_err());
    }
}
