//! The NALG rewrite rules (Section 6.1).
//!
//! | Paper rule | Here |
//! |---|---|
//! | 1 — default navigation | applied by the optimizer during seed construction ([`crate::optimizer`]) |
//! | 2 — join on a link constraint ≡ follow | a semantic lemma underlying rules 8/9; exercised by tests |
//! | 3 — π through unnest | part of [`prune_navigations`] |
//! | 4 — repeated-navigation elimination | [`merge_repeated_navigations`] |
//! | 5 — unnecessary-navigation elimination | part of [`prune_navigations`] |
//! | 6 — selection pushing via link constraints | [`push_selections`] |
//! | 7 — projection pushing via link constraints | part of [`prune_navigations`] |
//! | 8 — **pointer join** | [`join_rewrite_candidates`] |
//! | 9 — **pointer chase** | [`join_rewrite_candidates`] |
//!
//! All rules operate on expressions whose attribute references are fully
//! qualified (`alias.path…`); [`qualify_expr`] normalizes an expression
//! into that form once, before rewriting starts.

use crate::stats::SiteStatistics;
use crate::{OptError, Result};
use adm::{AttrRef, InclusionConstraint, LinkConstraint, WebScheme};
use nalg::expr::{field_of_column, resolve_column};
use nalg::{NalgExpr, Pred};
use std::collections::HashMap;
use std::fmt;

// --------------------------------------------------------------------------
// constraint provenance
// --------------------------------------------------------------------------

/// A constraint a rewrite relied on. The optimizer collects these on every
/// candidate plan (its *constraint provenance*), so runtime auditing knows
/// exactly which site assumptions the winning plan is betting on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConstraintDependency {
    /// A link constraint (licenses rules 6, 7, and 8).
    Link(LinkConstraint),
    /// An inclusion constraint (licenses rule 9). For transitively implied
    /// inclusions this is the *implied* constraint itself — the statement
    /// auditing can check directly against fetched pages.
    Inclusion(InclusionConstraint),
}

impl ConstraintDependency {
    /// The canonical registry key: the constraint's display form, shared
    /// with the `ConstraintHealth` quarantine registry and EXPLAIN output.
    pub fn key(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for ConstraintDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintDependency::Link(c) => write!(f, "{c}"),
            ConstraintDependency::Inclusion(c) => write!(f, "{c}"),
        }
    }
}

/// Decides whether a constraint may license a rewrite. The optimizer
/// passes a closure rejecting quarantined constraints; a rejected
/// constraint simply leaves the expression unrewritten (the plan stays
/// correct, just less optimized).
pub type ConstraintGate<'g> = &'g dyn Fn(&ConstraintDependency) -> bool;

/// The gate that admits every constraint (no quarantine in effect).
pub fn open_gate(_: &ConstraintDependency) -> bool {
    true
}

// --------------------------------------------------------------------------
// tree addressing
// --------------------------------------------------------------------------

/// All node paths of the tree, preorder (root first). A path is the list of
/// child indices from the root.
pub fn all_paths(e: &NalgExpr) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    for (i, c) in e.children().iter().enumerate() {
        for mut p in all_paths(c) {
            p.insert(0, i);
            out.push(p);
        }
    }
    out
}

/// The node at a path.
pub fn get_at<'a>(e: &'a NalgExpr, path: &[usize]) -> &'a NalgExpr {
    match path.split_first() {
        None => e,
        Some((&i, rest)) => get_at(e.children()[i], rest),
    }
}

/// Rebuilds the tree with the node at `path` replaced.
pub fn replace_at(e: NalgExpr, path: &[usize], new: NalgExpr) -> NalgExpr {
    let Some((&i, rest)) = path.split_first() else {
        return new;
    };
    match e {
        NalgExpr::Select { input, pred } => NalgExpr::Select {
            input: Box::new(replace_at(*input, rest, new)),
            pred,
        },
        NalgExpr::Project { input, cols } => NalgExpr::Project {
            input: Box::new(replace_at(*input, rest, new)),
            cols,
        },
        NalgExpr::Unnest { input, attr } => NalgExpr::Unnest {
            input: Box::new(replace_at(*input, rest, new)),
            attr,
        },
        NalgExpr::Follow {
            input,
            link,
            target,
            alias,
        } => NalgExpr::Follow {
            input: Box::new(replace_at(*input, rest, new)),
            link,
            target,
            alias,
        },
        NalgExpr::Join { left, right, on } => {
            if i == 0 {
                NalgExpr::Join {
                    left: Box::new(replace_at(*left, rest, new)),
                    right,
                    on,
                }
            } else {
                NalgExpr::Join {
                    left,
                    right: Box::new(replace_at(*right, rest, new)),
                    on,
                }
            }
        }
        leaf => leaf,
    }
}

// --------------------------------------------------------------------------
// reference mapping
// --------------------------------------------------------------------------

fn map_pred(p: &Pred, f: &impl Fn(&str) -> String) -> Pred {
    match p {
        Pred::Eq(a, v) => Pred::Eq(f(a), v.clone()),
        Pred::EqAttr(a, b) => Pred::EqAttr(f(a), f(b)),
        Pred::And(ps) => Pred::And(ps.iter().map(|q| map_pred(q, f)).collect()),
    }
}

/// Applies `f` to every attribute reference in the tree (predicates,
/// projections, join keys, unnest attributes, follow links).
pub fn map_refs(e: &NalgExpr, f: &impl Fn(&str) -> String) -> NalgExpr {
    match e {
        NalgExpr::Entry { .. } | NalgExpr::External { .. } => e.clone(),
        NalgExpr::Select { input, pred } => NalgExpr::Select {
            input: Box::new(map_refs(input, f)),
            pred: map_pred(pred, f),
        },
        NalgExpr::Project { input, cols } => NalgExpr::Project {
            input: Box::new(map_refs(input, f)),
            cols: cols.iter().map(|c| f(c)).collect(),
        },
        NalgExpr::Join { left, right, on } => NalgExpr::Join {
            left: Box::new(map_refs(left, f)),
            right: Box::new(map_refs(right, f)),
            on: on.iter().map(|(a, b)| (f(a), f(b))).collect(),
        },
        NalgExpr::Unnest { input, attr } => NalgExpr::Unnest {
            input: Box::new(map_refs(input, f)),
            attr: f(attr),
        },
        NalgExpr::Follow {
            input,
            link,
            target,
            alias,
        } => NalgExpr::Follow {
            input: Box::new(map_refs(input, f)),
            link: f(link),
            target: target.clone(),
            alias: alias.clone(),
        },
    }
}

/// Renames an alias: rewrites `Entry`/`Follow` alias fields equal to `from`
/// and every reference prefixed by `from.`.
pub fn rename_alias(e: &NalgExpr, from: &str, to: &str) -> NalgExpr {
    let prefix = format!("{from}.");
    let mapped = map_refs(e, &|s: &str| {
        if let Some(rest) = s.strip_prefix(&prefix) {
            format!("{to}.{rest}")
        } else {
            s.to_string()
        }
    });
    mapped.transform_bottom_up(&|n| match n {
        NalgExpr::Entry { scheme, alias } if alias == from => NalgExpr::Entry {
            scheme,
            alias: to.to_string(),
        },
        NalgExpr::Follow {
            input,
            link,
            target,
            alias,
        } if alias == from => NalgExpr::Follow {
            input,
            link,
            target,
            alias: to.to_string(),
        },
        other => other,
    })
}

/// Replaces every reference exactly equal to `from` with `to`.
pub fn substitute_attr(e: &NalgExpr, from: &str, to: &str) -> NalgExpr {
    map_refs(e, &|s: &str| {
        if s == from {
            to.to_string()
        } else {
            s.to_string()
        }
    })
}

/// The attribute references a node itself carries (not its children's).
fn node_refs(e: &NalgExpr) -> Vec<String> {
    match e {
        NalgExpr::Entry { .. } | NalgExpr::External { .. } => vec![],
        NalgExpr::Select { pred, .. } => pred.attrs().iter().map(|s| s.to_string()).collect(),
        NalgExpr::Project { cols, .. } => cols.clone(),
        NalgExpr::Join { on, .. } => on
            .iter()
            .flat_map(|(a, b)| [a.clone(), b.clone()])
            .collect(),
        NalgExpr::Unnest { attr, .. } => vec![attr.clone()],
        NalgExpr::Follow { link, .. } => vec![link.clone()],
    }
}

/// All references in the tree, excluding those inside the subtree at
/// `skip` (the node's own refs at `skip` are also excluded).
fn refs_excluding(e: &NalgExpr, skip: &[usize]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(e: &NalgExpr, path: &mut Vec<usize>, skip: &[usize], out: &mut Vec<String>) {
        if path.as_slice() == skip {
            return;
        }
        out.extend(node_refs(e));
        for (i, c) in e.children().iter().enumerate() {
            path.push(i);
            walk(c, path, skip, out);
            path.pop();
        }
    }
    walk(e, &mut Vec::new(), skip, &mut out);
    out
}

// --------------------------------------------------------------------------
// qualification & validation
// --------------------------------------------------------------------------

/// Rewrites every attribute reference into its fully qualified form by
/// resolving it against the referencing operator's input columns.
pub fn qualify_expr(e: &NalgExpr, ws: &WebScheme) -> Result<NalgExpr> {
    let q = |cols: &[String], name: &str| -> Result<String> {
        let i = resolve_column(cols, name).map_err(OptError::Eval)?;
        Ok(cols[i].clone())
    };
    Ok(match e {
        NalgExpr::Entry { .. } | NalgExpr::External { .. } => e.clone(),
        NalgExpr::Select { input, pred } => {
            let qi = qualify_expr(input, ws)?;
            let cols = qi.output_columns(ws).map_err(OptError::Eval)?;
            let pred = map_pred_fallible(pred, &|s| q(&cols, s))?;
            NalgExpr::Select {
                input: Box::new(qi),
                pred,
            }
        }
        NalgExpr::Project { input, cols } => {
            let qi = qualify_expr(input, ws)?;
            let in_cols = qi.output_columns(ws).map_err(OptError::Eval)?;
            let cols = cols
                .iter()
                .map(|c| q(&in_cols, c))
                .collect::<Result<Vec<_>>>()?;
            NalgExpr::Project {
                input: Box::new(qi),
                cols,
            }
        }
        NalgExpr::Join { left, right, on } => {
            let ql = qualify_expr(left, ws)?;
            let qr = qualify_expr(right, ws)?;
            let lcols = ql.output_columns(ws).map_err(OptError::Eval)?;
            let rcols = qr.output_columns(ws).map_err(OptError::Eval)?;
            let on = on
                .iter()
                .map(|(a, b)| Ok((q(&lcols, a)?, q(&rcols, b)?)))
                .collect::<Result<Vec<_>>>()?;
            NalgExpr::Join {
                left: Box::new(ql),
                right: Box::new(qr),
                on,
            }
        }
        NalgExpr::Unnest { input, attr } => {
            let qi = qualify_expr(input, ws)?;
            let cols = qi.output_columns(ws).map_err(OptError::Eval)?;
            NalgExpr::Unnest {
                attr: q(&cols, attr)?,
                input: Box::new(qi),
            }
        }
        NalgExpr::Follow {
            input,
            link,
            target,
            alias,
        } => {
            let qi = qualify_expr(input, ws)?;
            let cols = qi.output_columns(ws).map_err(OptError::Eval)?;
            NalgExpr::Follow {
                link: q(&cols, link)?,
                input: Box::new(qi),
                target: target.clone(),
                alias: alias.clone(),
            }
        }
    })
}

fn map_pred_fallible(p: &Pred, f: &impl Fn(&str) -> Result<String>) -> Result<Pred> {
    Ok(match p {
        Pred::Eq(a, v) => Pred::Eq(f(a)?, v.clone()),
        Pred::EqAttr(a, b) => Pred::EqAttr(f(a)?, f(b)?),
        Pred::And(ps) => Pred::And(
            ps.iter()
                .map(|q| map_pred_fallible(q, f))
                .collect::<Result<Vec<_>>>()?,
        ),
    })
}

/// Full static validation: the expression is computable and every
/// reference (including selection and join attributes) resolves.
pub fn validate(e: &NalgExpr, ws: &WebScheme) -> bool {
    if !e.is_computable() || e.output_columns(ws).is_err() {
        return false;
    }
    for path in all_paths(e) {
        match get_at(e, &path) {
            NalgExpr::Select { input, pred } => {
                let Ok(cols) = input.output_columns(ws) else {
                    return false;
                };
                if pred
                    .attrs()
                    .iter()
                    .any(|a| resolve_column(&cols, a).is_err())
                {
                    return false;
                }
            }
            NalgExpr::Join { left, right, on } => {
                let (Ok(l), Ok(r)) = (left.output_columns(ws), right.output_columns(ws)) else {
                    return false;
                };
                for (a, b) in on {
                    if resolve_column(&l, a).is_err() || resolve_column(&r, b).is_err() {
                        return false;
                    }
                }
            }
            _ => {}
        }
    }
    true
}

// --------------------------------------------------------------------------
// helpers shared by the constraint-driven rules
// --------------------------------------------------------------------------

/// Converts a qualified column (`alias.path…`) to a scheme-qualified
/// [`AttrRef`] using the expression's alias map.
fn attr_ref_of(aliases: &HashMap<String, String>, qualified: &str) -> Option<AttrRef> {
    let mut parts = qualified.split('.');
    let alias = parts.next()?;
    let path: Vec<String> = parts.map(str::to_string).collect();
    if path.is_empty() {
        return None;
    }
    let scheme = aliases.get(alias)?;
    Some(AttrRef {
        scheme: scheme.clone(),
        path,
    })
}

/// The alias (first segment) of a qualified column.
fn alias_of(qualified: &str) -> &str {
    qualified.split('.').next().unwrap_or(qualified)
}

/// The declared link constraint on `link` with the given source and target
/// attributes, if one exists and the gate admits it.
fn find_link_constraint(
    ws: &WebScheme,
    link: &AttrRef,
    source: &AttrRef,
    target: &AttrRef,
    gate: ConstraintGate<'_>,
) -> Option<LinkConstraint> {
    ws.link_constraints_for(link)
        .into_iter()
        .find(|c| &c.source_attr == source && &c.target_attr == target)
        .cloned()
        .filter(|c| gate(&ConstraintDependency::Link(c.clone())))
}

/// Finds, for a reference `alias.B` on the target side of `link`, the
/// qualified source column licensed by a link constraint the gate admits,
/// together with the constraint relied on.
fn constraint_source_col(
    ws: &WebScheme,
    aliases: &HashMap<String, String>,
    link_col: &str,
    target_ref_col: &str,
    gate: ConstraintGate<'_>,
) -> Option<(String, ConstraintDependency)> {
    let link_ref = attr_ref_of(aliases, link_col)?;
    let target_ref = attr_ref_of(aliases, target_ref_col)?;
    if target_ref.path.len() != 1 {
        return None;
    }
    let source_alias = alias_of(link_col);
    for c in ws.link_constraints_for(&link_ref) {
        if c.target_attr == target_ref {
            let dep = ConstraintDependency::Link(c.clone());
            if !gate(&dep) {
                continue;
            }
            let col = format!("{source_alias}.{}", c.source_attr.path.join("."));
            return Some((col, dep));
        }
    }
    None
}

// --------------------------------------------------------------------------
// rule 4 — repeated-navigation elimination
// --------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum SpineStep {
    Entry(String),
    Unnest(String),
    Follow { link: String, target: String },
}

/// The alias-insensitive spine of a pure navigation, with its aliases in
/// order of introduction. `None` if the expression contains σ/π/⋈.
fn spine(e: &NalgExpr) -> Option<(Vec<SpineStep>, Vec<String>)> {
    match e {
        NalgExpr::Entry { scheme, alias } => {
            Some((vec![SpineStep::Entry(scheme.clone())], vec![alias.clone()]))
        }
        NalgExpr::Unnest { input, attr } => {
            let (mut steps, aliases) = spine(input)?;
            let leaf = attr.rsplit('.').next().unwrap_or(attr).to_string();
            steps.push(SpineStep::Unnest(leaf));
            Some((steps, aliases))
        }
        NalgExpr::Follow {
            input,
            link,
            target,
            alias,
        } => {
            let (mut steps, mut aliases) = spine(input)?;
            let leaf = link.rsplit('.').next().unwrap_or(link).to_string();
            steps.push(SpineStep::Follow {
                link: leaf,
                target: target.clone(),
            });
            aliases.push(alias.clone());
            Some((steps, aliases))
        }
        _ => None,
    }
}

/// Rule 4: replaces `R ⋈_Y R` (and `(R ∘ A) ⋈_Y R`) by the longer
/// navigation, when both join sides are navigations one of which is a
/// prefix of the other, the join attributes coincide under the alias
/// correspondence, and at least one join attribute identifies the page
/// (URL or a key-like attribute per the statistics). Column references to
/// the dropped side are renamed to the kept side's aliases.
pub fn merge_repeated_navigations(e: NalgExpr, ws: &WebScheme, stats: &SiteStatistics) -> NalgExpr {
    let mut expr = e;
    loop {
        if let Some((path, from, to)) = find_duplicate_follow(&expr) {
            let node = get_at(&expr, &path).clone();
            let NalgExpr::Follow { input, .. } = node else {
                return expr;
            };
            expr = replace_at(expr, &path, *input);
            expr = rename_alias(&expr, &from, &to);
            continue;
        }
        let Some((path, keep_left, renames)) = find_merge(&expr, ws, stats) else {
            return expr;
        };
        let joined = get_at(&expr, &path).clone();
        let NalgExpr::Join { left, right, .. } = joined else {
            return expr;
        };
        let kept = if keep_left { *left } else { *right };
        expr = replace_at(expr, &path, kept);
        for (from, to) in renames {
            expr = rename_alias(&expr, &from, &to);
        }
    }
}

/// Rule 4 on navigations themselves: following the *same* qualified link
/// column a second time re-fetches the same pages, so the outer follow can
/// be dropped with its alias renamed onto the first follow's alias.
/// Returns `(path of redundant follow, dropped alias, kept alias)`.
fn find_duplicate_follow(e: &NalgExpr) -> Option<(Vec<usize>, String, String)> {
    for path in all_paths(e) {
        let NalgExpr::Follow {
            input,
            link,
            alias: outer_alias,
            ..
        } = get_at(e, &path)
        else {
            continue;
        };
        // scan the input spine for a follow of the identical link column
        let mut cur: &NalgExpr = input;
        loop {
            match cur {
                NalgExpr::Follow {
                    input: deeper,
                    link: l1,
                    alias: a1,
                    ..
                } => {
                    if l1 == link && a1 != outer_alias {
                        return Some((path, outer_alias.clone(), a1.clone()));
                    }
                    cur = deeper;
                }
                NalgExpr::Unnest { input: deeper, .. } | NalgExpr::Select { input: deeper, .. } => {
                    cur = deeper
                }
                _ => break,
            }
        }
    }
    None
}

/// `(join path, keep-left?, alias renames)` describing one rule-4 merge.
type MergeAction = (Vec<usize>, bool, Vec<(String, String)>);

fn find_merge(e: &NalgExpr, ws: &WebScheme, stats: &SiteStatistics) -> Option<MergeAction> {
    let aliases = e.alias_map().ok()?;
    for path in all_paths(e) {
        let NalgExpr::Join { left, right, on } = get_at(e, &path) else {
            continue;
        };
        if on.is_empty() {
            continue;
        }
        let Some((sl, al)) = spine(left) else {
            continue;
        };
        let Some((sr, ar)) = spine(right) else {
            continue;
        };
        let (keep_left, kept_aliases, dropped_aliases) =
            if sr.len() <= sl.len() && sl.starts_with(&sr) {
                (true, &al, &ar)
            } else if sl.len() < sr.len() && sr.starts_with(&sl) {
                (false, &ar, &al)
            } else {
                continue;
            };
        let renames: Vec<(String, String)> = dropped_aliases
            .iter()
            .zip(kept_aliases.iter())
            .filter(|(d, k)| d != k)
            .map(|(d, k)| (d.clone(), k.clone()))
            .collect();
        let rename_str = |s: &str| -> String {
            for (from, to) in &renames {
                let prefix = format!("{from}.");
                if let Some(rest) = s.strip_prefix(&prefix) {
                    return format!("{to}.{rest}");
                }
            }
            s.to_string()
        };
        // Join keys must coincide under the alias correspondence, and at
        // least one must be page-identifying.
        let mut any_key_like = false;
        let mut ok = true;
        for (a, b) in on {
            let (a, b) = (rename_str(a), rename_str(b));
            if a != b {
                ok = false;
                break;
            }
            if a.ends_with(".URL") {
                any_key_like = true;
                continue;
            }
            // a join on a nullable attribute also filters null rows —
            // merging would wrongly keep them (SQL null semantics), so
            // only non-optional attributes license a merge
            match field_of_column(ws, &aliases, &a) {
                Ok(f) if !f.optional => {}
                _ => {
                    ok = false;
                    break;
                }
            }
            if let Some(aref) = attr_ref_of(&aliases, &a) {
                // key-like only meaningful for top-level attributes
                if aref.path.len() == 1 && stats.is_key_like(&aref.scheme, &aref.qualified()) {
                    any_key_like = true;
                }
            }
        }
        if ok && any_key_like {
            return Some((path, keep_left, renames));
        }
    }
    None
}

// --------------------------------------------------------------------------
// rules 8 & 9 — pointer join / pointer chase
// --------------------------------------------------------------------------

/// Strips trailing unnest operators, returning the core and the stripped
/// attributes (outermost first).
fn strip_unnests(e: &NalgExpr) -> (&NalgExpr, Vec<String>) {
    let mut cur = e;
    let mut attrs = Vec::new();
    while let NalgExpr::Unnest { input, attr } = cur {
        attrs.push(attr.clone());
        cur = input;
    }
    (cur, attrs)
}

fn reattach_unnests(core: NalgExpr, attrs: &[String]) -> NalgExpr {
    // attrs are outermost-first; re-apply innermost-first.
    attrs
        .iter()
        .rev()
        .fold(core, |acc, a| acc.unnest(a.clone()))
}

/// One-step applications of rule 8 (pointer join) and rule 9 (pointer
/// chase) anywhere in the tree, with every constraint admitted. See
/// [`join_rewrite_candidates_tracked`].
pub fn join_rewrite_candidates(
    e: &NalgExpr,
    ws: &WebScheme,
    pointer_join: bool,
    pointer_chase: bool,
) -> Vec<NalgExpr> {
    join_rewrite_candidates_tracked(e, ws, pointer_join, pointer_chase, &open_gate)
        .into_iter()
        .map(|(c, _)| c)
        .collect()
}

/// One-step applications of rule 8 (pointer join) and rule 9 (pointer
/// chase) anywhere in the tree. Returns all rewritten whole expressions,
/// each with the constraints that licensed it (rule 8: one link constraint
/// per join pair; rule 9: additionally the inclusion it chased through);
/// callers validate and cost them. Candidates that drop a branch whose
/// columns are still referenced fail [`validate`] and are discarded there.
/// Constraints the gate rejects license nothing.
pub fn join_rewrite_candidates_tracked(
    e: &NalgExpr,
    ws: &WebScheme,
    pointer_join: bool,
    pointer_chase: bool,
    gate: ConstraintGate<'_>,
) -> Vec<(NalgExpr, Vec<ConstraintDependency>)> {
    let mut out = Vec::new();
    let Ok(aliases) = e.alias_map() else {
        return out;
    };
    for path in all_paths(e) {
        let NalgExpr::Join { left, right, on } = get_at(e, &path) else {
            continue;
        };
        if on.is_empty() {
            continue;
        }
        for follow_on_left in [true, false] {
            let (fside, oside): (&NalgExpr, &NalgExpr) = if follow_on_left {
                (left, right)
            } else {
                (right, left)
            };
            // orient pairs as (followed-side attr, other-side attr)
            let pairs: Vec<(String, String)> = on
                .iter()
                .map(|(a, b)| {
                    if follow_on_left {
                        (a.clone(), b.clone())
                    } else {
                        (b.clone(), a.clone())
                    }
                })
                .collect();
            let (core, stripped) = strip_unnests(fside);
            let NalgExpr::Follow {
                input: r1,
                link: l1,
                target,
                alias: a3,
            } = core
            else {
                continue;
            };
            // every followed-side join attr must be a top-level attribute
            // of the followed page (alias a3)
            if !pairs.iter().all(|(f, _)| alias_of(f) == a3) {
                continue;
            }
            let Ok(ocols) = oside.output_columns(ws) else {
                continue;
            };
            // candidate links L2 in the other side pointing to the target
            for l2col in &ocols {
                let Some(l2field) = field_of_column(ws, &aliases, l2col).ok() else {
                    continue;
                };
                if l2field.ty.link_target() != Some(target.as_str()) {
                    continue;
                }
                let Some(l2ref) = attr_ref_of(&aliases, l2col) else {
                    continue;
                };
                // every pair must be licensed by a link constraint on L2
                // the gate admits; the constraints used become the
                // candidate's provenance
                let mut pair_deps: Vec<ConstraintDependency> = Vec::new();
                let mut licensed = true;
                for (f, o) in &pairs {
                    let (Some(fref), Some(oref)) =
                        (attr_ref_of(&aliases, f), attr_ref_of(&aliases, o))
                    else {
                        licensed = false;
                        break;
                    };
                    // nullable join attributes filter rows the rewritten
                    // plan would keep — refuse the rewrite (cf. rule 4)
                    let non_nullable = |col: &str| matches!(field_of_column(ws, &aliases, col), Ok(fld) if !fld.optional);
                    if !(fref.path.len() == 1
                        && resolve_column(&ocols, o).is_ok()
                        && non_nullable(f)
                        && non_nullable(o))
                    {
                        licensed = false;
                        break;
                    }
                    match find_link_constraint(ws, &l2ref, &oref, &fref, gate) {
                        Some(c) => pair_deps.push(ConstraintDependency::Link(c)),
                        None => {
                            licensed = false;
                            break;
                        }
                    }
                }
                if !licensed {
                    continue;
                }
                if pointer_join {
                    // Rule 8: (R1 –L→ R3) ⋈_{R3.B=R2.A} R2
                    //       = (R1 ⋈_{R1.L=R2.L} R2) –L→ R3
                    let join = NalgExpr::Join {
                        left: r1.clone(),
                        right: Box::new(oside.clone()),
                        on: vec![(l1.clone(), l2col.clone())],
                    };
                    let rewritten = reattach_unnests(
                        join.follow_as(l1.clone(), target.clone(), a3.clone()),
                        &stripped,
                    );
                    out.push((replace_at(e.clone(), &path, rewritten), pair_deps.clone()));
                }
                if pointer_chase {
                    // Rule 9 additionally needs R2.L ⊆ R1.L.
                    let Some(l1ref) = attr_ref_of(&aliases, l1) else {
                        continue;
                    };
                    if ws.inclusion_implied(&l2ref, &l1ref) {
                        let mut deps = pair_deps.clone();
                        // A trivial self-inclusion (same link attribute on
                        // both sides) assumes nothing about the site.
                        if l2ref != l1ref {
                            let dep = ConstraintDependency::Inclusion(InclusionConstraint::new(
                                l2ref.clone(),
                                l1ref.clone(),
                            ));
                            if !gate(&dep) {
                                continue;
                            }
                            deps.push(dep);
                        }
                        let rewritten = reattach_unnests(
                            oside
                                .clone()
                                .follow_as(l2col.clone(), target.clone(), a3.clone()),
                            &stripped,
                        );
                        out.push((replace_at(e.clone(), &path, rewritten), deps));
                    }
                }
            }
        }
    }
    out
}

// --------------------------------------------------------------------------
// rule 6 — selection pushing
// --------------------------------------------------------------------------

/// Pushes every selection atom as deep as it can go, with every constraint
/// admitted. See [`push_selections_tracked`].
pub fn push_selections(e: &NalgExpr, ws: &WebScheme) -> Result<NalgExpr> {
    push_selections_tracked(e, ws, &open_gate).map(|(out, _)| out)
}

/// Pushes every selection atom as deep as it can go: through π, ⋈, ∘, and
/// — via link constraints (rule 6) — through follow-link operators,
/// rewriting target-side attributes into their replicated source-side
/// anchors. Returns the rewritten expression with the link constraints
/// relied on (sorted, deduplicated). Constraints the gate rejects are not
/// pushed through — the selection simply stays above the navigation.
pub fn push_selections_tracked(
    e: &NalgExpr,
    ws: &WebScheme,
    gate: ConstraintGate<'_>,
) -> Result<(NalgExpr, Vec<ConstraintDependency>)> {
    let mut deps = Vec::new();
    let out = push_sel(e, ws, gate, &mut deps)?;
    deps.sort();
    deps.dedup();
    Ok((out, deps))
}

fn push_sel(
    e: &NalgExpr,
    ws: &WebScheme,
    gate: ConstraintGate<'_>,
    deps: &mut Vec<ConstraintDependency>,
) -> Result<NalgExpr> {
    Ok(match e {
        NalgExpr::Select { input, pred } => {
            let mut cur = push_sel(input, ws, gate, deps)?;
            for atom in pred.conjuncts() {
                cur = match sink(&cur, &atom, ws, gate, deps)? {
                    Some(pushed) => pushed,
                    None => cur.select(atom),
                };
            }
            cur
        }
        NalgExpr::Project { input, cols } => NalgExpr::Project {
            input: Box::new(push_sel(input, ws, gate, deps)?),
            cols: cols.clone(),
        },
        NalgExpr::Join { left, right, on } => NalgExpr::Join {
            left: Box::new(push_sel(left, ws, gate, deps)?),
            right: Box::new(push_sel(right, ws, gate, deps)?),
            on: on.clone(),
        },
        NalgExpr::Unnest { input, attr } => NalgExpr::Unnest {
            input: Box::new(push_sel(input, ws, gate, deps)?),
            attr: attr.clone(),
        },
        NalgExpr::Follow {
            input,
            link,
            target,
            alias,
        } => NalgExpr::Follow {
            input: Box::new(push_sel(input, ws, gate, deps)?),
            link: link.clone(),
            target: target.clone(),
            alias: alias.clone(),
        },
        leaf => leaf.clone(),
    })
}

/// Tries to apply `atom` as deep as possible inside `e`. Returns the
/// rewritten expression, or `None` if the atom's attributes do not resolve
/// anywhere in `e`. Rule-6 pushes record the link constraint used.
fn sink(
    e: &NalgExpr,
    atom: &Pred,
    ws: &WebScheme,
    gate: ConstraintGate<'_>,
    deps: &mut Vec<ConstraintDependency>,
) -> Result<Option<NalgExpr>> {
    let resolves_here = |node: &NalgExpr| -> bool {
        node.output_columns(ws)
            .map(|cols| {
                atom.attrs()
                    .iter()
                    .all(|a| resolve_column(&cols, a).is_ok())
            })
            .unwrap_or(false)
    };
    match e {
        NalgExpr::Select { input, pred } => {
            Ok(
                sink(input, atom, ws, gate, deps)?.map(|new| NalgExpr::Select {
                    input: Box::new(new),
                    pred: pred.clone(),
                }),
            )
        }
        NalgExpr::Project { input, cols } => {
            Ok(
                sink(input, atom, ws, gate, deps)?.map(|new| NalgExpr::Project {
                    input: Box::new(new),
                    cols: cols.clone(),
                }),
            )
        }
        NalgExpr::Join { left, right, on } => {
            if let Some(new_left) = sink(left, atom, ws, gate, deps)? {
                return Ok(Some(NalgExpr::Join {
                    left: Box::new(new_left),
                    right: right.clone(),
                    on: on.clone(),
                }));
            }
            if let Some(new_right) = sink(right, atom, ws, gate, deps)? {
                return Ok(Some(NalgExpr::Join {
                    left: left.clone(),
                    right: Box::new(new_right),
                    on: on.clone(),
                }));
            }
            if resolves_here(e) {
                return Ok(Some(e.clone().select(atom.clone())));
            }
            Ok(None)
        }
        NalgExpr::Unnest { input, attr } => {
            if let Some(new) = sink(input, atom, ws, gate, deps)? {
                return Ok(Some(NalgExpr::Unnest {
                    input: Box::new(new),
                    attr: attr.clone(),
                }));
            }
            if resolves_here(e) {
                return Ok(Some(e.clone().select(atom.clone())));
            }
            Ok(None)
        }
        NalgExpr::Follow {
            input,
            link,
            target,
            alias,
        } => {
            if let Some(new) = sink(input, atom, ws, gate, deps)? {
                return Ok(Some(NalgExpr::Follow {
                    input: Box::new(new),
                    link: link.clone(),
                    target: target.clone(),
                    alias: alias.clone(),
                }));
            }
            // Rule 6: a constant selection on a replicated target attribute
            // moves below the navigation, rewritten onto the source anchor.
            if let Pred::Eq(a, v) = atom {
                if alias_of(a) == alias {
                    let aliases = e.alias_map().map_err(OptError::Eval)?;
                    if let Some((src_col, dep)) = constraint_source_col(ws, &aliases, link, a, gate)
                    {
                        deps.push(dep);
                        let new_atom = Pred::Eq(src_col, v.clone());
                        let new_input = match sink(input, &new_atom, ws, gate, deps)? {
                            Some(pushed) => pushed,
                            None => input.as_ref().clone().select(new_atom),
                        };
                        return Ok(Some(NalgExpr::Follow {
                            input: Box::new(new_input),
                            link: link.clone(),
                            target: target.clone(),
                            alias: alias.clone(),
                        }));
                    }
                }
            }
            if resolves_here(e) {
                return Ok(Some(e.clone().select(atom.clone())));
            }
            Ok(None)
        }
        leaf => {
            if resolves_here(leaf) {
                Ok(Some(leaf.clone().select(atom.clone())))
            } else {
                Ok(None)
            }
        }
    }
}

// --------------------------------------------------------------------------
// rules 3, 5, 7 — navigation & unnest pruning under projections
// --------------------------------------------------------------------------

/// Removes navigations and unnests whose results the query never uses:
///
/// * rule 5 — `π_X(R1 –L→ R2) = π_X(R1)` when `X ⊆ attrs(R1)` and `L` is
///   non-optional;
/// * rule 7 — references to replicated target attributes are first
///   rewritten onto their source anchors (link constraints), which can turn
///   a used navigation into an unused one;
/// * rule 3 — `π_X(R ∘ A) = π_X(R)` when `X` doesn't use the unnested
///   columns.
///
/// Only applies when the expression root is a projection (the rules hold
/// under set-projection semantics). This variant admits every constraint;
/// see [`prune_navigations_tracked`].
pub fn prune_navigations(e: NalgExpr, ws: &WebScheme) -> Result<NalgExpr> {
    prune_navigations_tracked(e, ws, &open_gate).map(|(out, _)| out)
}

/// [`prune_navigations`] with constraint provenance: returns the pruned
/// expression and the link constraints rule 7 rewrote references through
/// (sorted, deduplicated). Rules 3 and 5 assume nothing about the site and
/// contribute no dependencies. Constraints the gate rejects block the
/// rule-7 substitution, leaving the navigation in place.
pub fn prune_navigations_tracked(
    e: NalgExpr,
    ws: &WebScheme,
    gate: ConstraintGate<'_>,
) -> Result<(NalgExpr, Vec<ConstraintDependency>)> {
    let mut deps = Vec::new();
    if !matches!(e, NalgExpr::Project { .. }) {
        return Ok((e, deps));
    }
    let mut expr = e;
    while let Some((path, substitutions, used)) = find_prune(&expr, ws, gate)? {
        deps.extend(used);
        for (from, to) in substitutions {
            expr = substitute_attr(&expr, &from, &to);
        }
        let node = get_at(&expr, &path).clone();
        let replacement = match node {
            NalgExpr::Follow { input, .. } => *input,
            NalgExpr::Unnest { input, .. } => *input,
            _ => break,
        };
        expr = replace_at(expr, &path, replacement);
    }
    deps.sort();
    deps.dedup();
    Ok((expr, deps))
}

type PruneAction = (Vec<usize>, Vec<(String, String)>, Vec<ConstraintDependency>);

fn find_prune(
    e: &NalgExpr,
    ws: &WebScheme,
    gate: ConstraintGate<'_>,
) -> Result<Option<PruneAction>> {
    let aliases = e.alias_map().map_err(OptError::Eval)?;
    for path in all_paths(e) {
        match get_at(e, &path) {
            NalgExpr::Follow {
                input, link, alias, ..
            } => {
                // the link must be non-optional for rule 5 to hold
                let Ok(field) = field_of_column(ws, &aliases, link) else {
                    continue;
                };
                if field.optional {
                    continue;
                }
                let prefix = format!("{alias}.");
                let outside: Vec<String> = refs_excluding(e, &path)
                    .into_iter()
                    .filter(|r| r.starts_with(&prefix))
                    .collect();
                if outside.is_empty() {
                    return Ok(Some((path, vec![], vec![])));
                }
                // rule 7: try to replace each referenced target attribute
                // with its replicated source anchor
                let Ok(input_cols) = input.output_columns(ws) else {
                    continue;
                };
                let mut subs = Vec::new();
                let mut used = Vec::new();
                let mut all_replaceable = true;
                for r in &outside {
                    match constraint_source_col(ws, &aliases, link, r, gate) {
                        Some((src, dep)) if resolve_column(&input_cols, &src).is_ok() => {
                            subs.push((r.clone(), src));
                            used.push(dep);
                        }
                        _ => {
                            all_replaceable = false;
                            break;
                        }
                    }
                }
                if all_replaceable {
                    return Ok(Some((path, subs, used)));
                }
            }
            NalgExpr::Unnest { attr, .. } => {
                let prefix = format!("{attr}.");
                let used = refs_excluding(e, &path)
                    .into_iter()
                    .any(|r| r.starts_with(&prefix) || r == *attr);
                if !used {
                    return Ok(Some((path, vec![], vec![])));
                }
            }
            _ => {}
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SiteStatistics;
    use websim::sitegen::bibliography::bibliography_scheme;
    use websim::sitegen::university::university_scheme;
    use websim::sitegen::{BibConfig, Bibliography, University, UniversityConfig};

    fn uni_fixtures() -> (WebScheme, SiteStatistics) {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        (university_scheme(), stats)
    }

    fn prof_spine() -> NalgExpr {
        NalgExpr::entry("ProfListPage")
            .unnest("ProfList")
            .follow("ToProf", "ProfPage")
    }

    #[test]
    fn qualify_rewrites_leaf_references() {
        let ws = university_scheme();
        let e = prof_spine()
            .select(Pred::eq("Rank", "Full"))
            .project(vec!["ProfPage.PName"]);
        let q = qualify_expr(&e, &ws).unwrap();
        let NalgExpr::Project { cols, input } = &q else {
            panic!()
        };
        assert_eq!(cols, &vec!["ProfPage.PName".to_string()]);
        let NalgExpr::Select { pred, .. } = input.as_ref() else {
            panic!()
        };
        assert_eq!(pred.attrs(), vec!["ProfPage.Rank"]);
    }

    #[test]
    fn rename_alias_rewrites_refs_and_nodes() {
        let ws = university_scheme();
        let e = qualify_expr(&prof_spine().project(vec!["ProfPage.PName"]), &ws).unwrap();
        let r = rename_alias(&e, "ProfPage", "P2");
        let NalgExpr::Project { cols, .. } = &r else {
            panic!()
        };
        assert_eq!(cols, &vec!["P2.PName".to_string()]);
        assert!(r.alias_map().unwrap().contains_key("P2"));
        assert!(validate(&r, &ws));
    }

    #[test]
    fn tree_addressing_round_trip() {
        let e = prof_spine().join(NalgExpr::entry("DeptListPage"), vec![("x", "y")]);
        let paths = all_paths(&e);
        assert_eq!(paths.len(), e.size());
        for p in &paths {
            let _ = get_at(&e, p);
        }
        let replaced = replace_at(e.clone(), &[1], NalgExpr::entry("SessionListPage"));
        let NalgExpr::Join { right, .. } = &replaced else {
            panic!()
        };
        assert_eq!(**right, NalgExpr::entry("SessionListPage"));
    }

    #[test]
    fn rule4_merges_identical_spines() {
        let (ws, stats) = uni_fixtures();
        // Professor ⋈ ProfDept (nav 1) — both the same professor spine.
        let left = qualify_expr(&prof_spine(), &ws).unwrap();
        let right = qualify_expr(
            &rename_alias(
                &rename_alias(&prof_spine(), "ProfPage", "P2"),
                "ProfListPage",
                "L2",
            ),
            &ws,
        )
        .unwrap();
        let joined = left
            .join(right, vec![("ProfPage.PName", "P2.PName")])
            .project(vec!["ProfPage.Rank".to_string(), "P2.DName".to_string()]);
        let merged = merge_repeated_navigations(joined, &ws, &stats);
        assert_eq!(merged.follow_count(), 1);
        assert!(validate(&merged, &ws));
        // the dropped alias was renamed in the projection
        let NalgExpr::Project { cols, .. } = &merged else {
            panic!()
        };
        assert!(cols.contains(&"ProfPage.DName".to_string()));
    }

    #[test]
    fn rule4_merges_prefix_spines() {
        let (ws, stats) = uni_fixtures();
        // (ProfSpine ∘ CourseList) ⋈_{PName} ProfSpine: prefix case.
        let long = qualify_expr(&prof_spine().unnest("ProfPage.CourseList"), &ws).unwrap();
        let short = qualify_expr(
            &rename_alias(
                &rename_alias(&prof_spine(), "ProfPage", "P2"),
                "ProfListPage",
                "L2",
            ),
            &ws,
        )
        .unwrap();
        let joined = long
            .join(short, vec![("ProfPage.PName", "P2.PName")])
            .project(vec![
                "ProfPage.CourseList.CName".to_string(),
                "P2.Rank".to_string(),
            ]);
        let merged = merge_repeated_navigations(joined, &ws, &stats);
        assert_eq!(merged.follow_count(), 1);
        assert!(validate(&merged, &ws));
    }

    #[test]
    fn rule4_refuses_nullable_join_attributes() {
        // Regression (found by the randomized soundness test): a self-join
        // on the optional Email attribute filters null-email professors;
        // merging the navigations would wrongly keep them.
        let (ws, stats) = uni_fixtures();
        let left = qualify_expr(&prof_spine(), &ws).unwrap();
        let right = qualify_expr(
            &rename_alias(
                &rename_alias(&prof_spine(), "ProfPage", "P2"),
                "ProfListPage",
                "L2",
            ),
            &ws,
        )
        .unwrap();
        let joined = left
            .join(
                right,
                vec![
                    ("ProfPage.PName", "P2.PName"),
                    ("ProfPage.Email", "P2.Email"),
                ],
            )
            .project(vec!["ProfPage.PName".to_string(), "P2.PName".to_string()]);
        let merged = merge_repeated_navigations(joined.clone(), &ws, &stats);
        assert_eq!(merged, joined, "nullable Email must block the merge");
    }

    #[test]
    fn rule4_requires_key_like_join() {
        let (ws, stats) = uni_fixtures();
        // joining two professor spines on Rank (non-key) must NOT merge
        let left = qualify_expr(&prof_spine(), &ws).unwrap();
        let right = qualify_expr(
            &rename_alias(
                &rename_alias(&prof_spine(), "ProfPage", "P2"),
                "ProfListPage",
                "L2",
            ),
            &ws,
        )
        .unwrap();
        let joined = left
            .join(right, vec![("ProfPage.Rank", "P2.Rank")])
            .project(vec!["ProfPage.PName".to_string(), "P2.PName".to_string()]);
        let merged = merge_repeated_navigations(joined.clone(), &ws, &stats);
        assert_eq!(merged, joined);
    }

    #[test]
    fn rule6_pushes_selection_through_navigation() {
        let (ws, _) = uni_fixtures();
        let e = qualify_expr(
            &NalgExpr::entry("DeptListPage")
                .unnest("DeptList")
                .follow("ToDept", "DeptPage")
                .select(Pred::eq("DeptPage.DName", "Computer Science"))
                .project(vec!["Address"]),
            &ws,
        )
        .unwrap();
        let pushed = push_selections(&e, &ws).unwrap();
        assert!(validate(&pushed, &ws));
        // the selection must now sit below the follow, on the anchor
        let rendered = nalg::display::tree(&pushed);
        assert!(rendered.contains("DeptListPage.DeptList.DName='Computer Science'"));
        // the follow is now the plan root's child; the selection sits below
        let sel_line = rendered.lines().position(|l| l.contains("σ[")).unwrap();
        let follow_line = rendered
            .lines()
            .position(|l| l.contains("ToDept→"))
            .unwrap();
        assert!(sel_line > follow_line, "{rendered}");
    }

    #[test]
    fn rule6_pushes_through_two_hops() {
        let ws = bibliography_scheme();
        let e = qualify_expr(
            &NalgExpr::entry("BibHomePage")
                .follow("ToConfList", "ConfListPage")
                .unnest("ConfList")
                .follow("ToConf", "ConfPage")
                .unnest("EditionList")
                .follow("ToEdition", "EditionPage")
                .select(Pred::eq("EditionPage.ConfName", "VLDB"))
                .project(vec!["EditionPage.Editors"]),
            &ws,
        )
        .unwrap();
        let pushed = push_selections(&e, &ws).unwrap();
        assert!(validate(&pushed, &ws));
        let rendered = nalg::display::inline(&pushed);
        // pushed all the way to the conference-list anchor
        assert!(rendered.contains("ConfListPage.ConfList.ConfName='VLDB'"));
    }

    #[test]
    fn rule5_7_prune_unused_navigation() {
        let ws = bibliography_scheme();
        // editors of VLDB '96: the edition page need not be fetched — the
        // conference page replicates Year and Editors.
        let e = qualify_expr(
            &NalgExpr::entry("BibHomePage")
                .follow("ToConfList", "ConfListPage")
                .unnest("ConfList")
                .follow("ToConf", "ConfPage")
                .unnest("EditionList")
                .follow("ToEdition", "EditionPage")
                .select(Pred::And(vec![
                    Pred::eq("EditionPage.ConfName", "VLDB"),
                    Pred::eq("EditionPage.Year", "1996"),
                ]))
                .project(vec!["EditionPage.Editors"]),
            &ws,
        )
        .unwrap();
        let pushed = push_selections(&e, &ws).unwrap();
        let pruned = prune_navigations(pushed, &ws).unwrap();
        assert!(validate(&pruned, &ws));
        // the ToEdition navigation is gone
        assert_eq!(pruned.follow_count(), 2); // home→conflist, conflist→conf
        let rendered = nalg::display::inline(&pruned);
        assert!(!rendered.contains("–ToEdition→"));
        assert!(rendered.contains("ConfPage.EditionList.Editors"));
    }

    #[test]
    fn prune_respects_used_navigations() {
        let (ws, _) = uni_fixtures();
        // Description only exists on the course page — cannot prune.
        let e = qualify_expr(
            &NalgExpr::entry("SessionListPage")
                .unnest("SesList")
                .follow("ToSes", "SessionPage")
                .unnest("SessionPage.CourseList")
                .follow("SessionPage.CourseList.ToCourse", "CoursePage")
                .project(vec!["CoursePage.Description"]),
            &ws,
        )
        .unwrap();
        let pruned = prune_navigations(e.clone(), &ws).unwrap();
        assert_eq!(pruned.follow_count(), e.follow_count());
    }

    #[test]
    fn prune_replaces_anchor_only_navigation() {
        let (ws, _) = uni_fixtures();
        // π[CName] over the full course navigation: CName is replicated in
        // the session page's course list, so the course pages need not be
        // fetched.
        let e = qualify_expr(
            &NalgExpr::entry("SessionListPage")
                .unnest("SesList")
                .follow("ToSes", "SessionPage")
                .unnest("SessionPage.CourseList")
                .follow("SessionPage.CourseList.ToCourse", "CoursePage")
                .project(vec!["CoursePage.CName"]),
            &ws,
        )
        .unwrap();
        let pruned = prune_navigations(e, &ws).unwrap();
        assert!(validate(&pruned, &ws));
        assert_eq!(pruned.follow_count(), 1); // only ToSes remains
        let NalgExpr::Project { cols, .. } = &pruned else {
            panic!()
        };
        assert_eq!(cols, &vec!["SessionPage.CourseList.CName".to_string()]);
    }

    #[test]
    fn rule8_pointer_join_on_example_71_shape() {
        let (ws, _) = uni_fixtures();
        // J1 = prof spine ∘ CourseList; right = course spine (ends with a
        // follow to CoursePage); join on replicated CName.
        let j1 = qualify_expr(&prof_spine().unnest("ProfPage.CourseList"), &ws).unwrap();
        let course = qualify_expr(
            &NalgExpr::entry("SessionListPage")
                .unnest("SesList")
                .follow("ToSes", "SessionPage")
                .unnest("SessionPage.CourseList")
                .follow("SessionPage.CourseList.ToCourse", "CoursePage"),
            &ws,
        )
        .unwrap();
        let joined = j1
            .join(
                course,
                vec![("ProfPage.CourseList.CName", "CoursePage.CName")],
            )
            .project(vec!["CoursePage.Description".to_string()]);
        let candidates = join_rewrite_candidates(&joined, &ws, true, false);
        assert!(!candidates.is_empty());
        let valid: Vec<_> = candidates.iter().filter(|c| validate(c, &ws)).collect();
        assert!(!valid.is_empty());
        // pointer-join shape: join now on the two ToCourse link columns
        let rendered = nalg::display::tree(valid[0]);
        assert!(
            rendered.contains("ToCourse = ") || rendered.contains(".ToCourse"),
            "{rendered}"
        );
    }

    #[test]
    fn rule9_pointer_chase_requires_inclusion() {
        let (ws, _) = uni_fixtures();
        let j1 = qualify_expr(&prof_spine().unnest("ProfPage.CourseList"), &ws).unwrap();
        let course = qualify_expr(
            &NalgExpr::entry("SessionListPage")
                .unnest("SesList")
                .follow("ToSes", "SessionPage")
                .unnest("SessionPage.CourseList")
                .follow("SessionPage.CourseList.ToCourse", "CoursePage"),
            &ws,
        )
        .unwrap();
        let joined = j1
            .join(
                course,
                vec![("ProfPage.CourseList.CName", "CoursePage.CName")],
            )
            .project(vec!["CoursePage.Description".to_string()]);
        let candidates = join_rewrite_candidates(&joined, &ws, false, true);
        // Inclusion ProfPage.CourseList.ToCourse ⊆ SessionPage.CourseList.ToCourse
        // holds, so chasing from the professor side is licensed.
        let valid: Vec<_> = candidates
            .into_iter()
            .filter(|c| validate(c, &ws))
            .collect();
        assert!(!valid.is_empty());
        let best = &valid[0];
        // the session branch is gone: entry SessionListPage disappears
        let rendered = nalg::display::tree(best);
        assert!(!rendered.contains("SessionListPage"), "{rendered}");
        assert!(
            rendered.contains("ProfPage.CourseList.ToCourse"),
            "{rendered}"
        );
    }

    #[test]
    fn rule9_candidates_referencing_dropped_branch_fail_validation() {
        let (ws, _) = uni_fixtures();
        let j1 = qualify_expr(&prof_spine().unnest("ProfPage.CourseList"), &ws).unwrap();
        let course = qualify_expr(
            &NalgExpr::entry("SessionListPage")
                .unnest("SesList")
                .follow("ToSes", "SessionPage")
                .unnest("SessionPage.CourseList")
                .follow("SessionPage.CourseList.ToCourse", "CoursePage"),
            &ws,
        )
        .unwrap();
        // projection references SessionPage.Session — the chase that drops
        // the session branch must fail validation.
        let joined = j1
            .join(
                course,
                vec![("ProfPage.CourseList.CName", "CoursePage.CName")],
            )
            .project(vec!["SessionPage.Session".to_string()]);
        let candidates = join_rewrite_candidates(&joined, &ws, false, true);
        for c in candidates {
            let rendered = nalg::display::tree(&c);
            if !rendered.contains("SessionListPage") {
                assert!(!validate(&c, &ws));
            }
        }
    }

    #[test]
    fn rule2_semantics_join_on_constraint_equals_follow() {
        // Rule 2 lemma, checked semantically on a real site: joining the
        // professor list with professor pages on the replicated PName
        // equals following the ToProf links.
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 8,
            seed: 9,
            ..UniversityConfig::default()
        })
        .unwrap();
        let ws = u.site.scheme.clone();
        let src = crate::source::LiveSource::for_site(&u.site);
        let follow = qualify_expr(
            &prof_spine().project(vec!["ProfListPage.ProfList.PName", "ProfPage.Rank"]),
            &ws,
        )
        .unwrap();
        let report = nalg::Evaluator::new(&ws, &src).eval(&follow).unwrap();
        // manual "join" via the anchors: same rows
        assert_eq!(report.relation.len(), 6);
        for i in 0..report.relation.len() {
            let anchor = report
                .relation
                .value(i, "ProfListPage.ProfList.PName")
                .unwrap();
            assert!(!anchor.is_null());
        }
    }

    #[test]
    fn validate_rejects_dangling_refs() {
        let ws = university_scheme();
        let bad = prof_spine().select(Pred::eq("NoSuchAttr", "x"));
        assert!(!validate(&bad, &ws));
        let bad = prof_spine().project(vec!["CoursePage.Description"]);
        assert!(!validate(&bad, &ws));
        assert!(validate(&prof_spine(), &ws));
    }

    #[test]
    fn substitute_attr_exact_only() {
        let e = prof_spine().project(vec!["ProfPage.PName", "ProfPage.PName2"]);
        let s = substitute_attr(&e, "ProfPage.PName", "X.Y");
        let NalgExpr::Project { cols, .. } = &s else {
            panic!()
        };
        assert_eq!(
            cols,
            &vec!["X.Y".to_string(), "ProfPage.PName2".to_string()]
        );
    }

    #[test]
    fn bibliography_rule9_home_featured_chase() {
        let ws = bibliography_scheme();
        let bib = Bibliography::generate(BibConfig {
            authors: 20,
            conferences: 5,
            db_conferences: 2,
            featured: 1,
            editions_per_conf: 2,
            papers_per_edition: 3,
            seed: 5,
            ..BibConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&bib.site);
        // Featured ⊆ DBConfList ⊆ ConfList: transitive inclusion holds.
        let sub = AttrRef::parse("BibHomePage.Featured.ToConf").unwrap();
        let sup = AttrRef::parse("ConfListPage.ConfList.ToConf").unwrap();
        assert!(ws.inclusion_implied(&sub, &sup));
        let _ = stats; // fixture exercised above
    }

    #[test]
    fn pred_qualification_error_on_unknown() {
        let ws = university_scheme();
        let e = prof_spine().select(Pred::eq("Bogus", "x"));
        assert!(qualify_expr(&e, &ws).is_err());
    }

    fn example_71_join(ws: &WebScheme) -> NalgExpr {
        let j1 = qualify_expr(&prof_spine().unnest("ProfPage.CourseList"), ws).unwrap();
        let course = qualify_expr(
            &NalgExpr::entry("SessionListPage")
                .unnest("SesList")
                .follow("ToSes", "SessionPage")
                .unnest("SessionPage.CourseList")
                .follow("SessionPage.CourseList.ToCourse", "CoursePage"),
            ws,
        )
        .unwrap();
        j1.join(
            course,
            vec![("ProfPage.CourseList.CName", "CoursePage.CName")],
        )
        .project(vec!["CoursePage.Description".to_string()])
    }

    #[test]
    fn tracked_rewrites_record_their_constraints() {
        let (ws, _) = uni_fixtures();
        let joined = example_71_join(&ws);
        // Rule 8 records the licensing link constraint.
        let tracked = join_rewrite_candidates_tracked(&joined, &ws, true, false, &open_gate);
        assert!(!tracked.is_empty());
        for (_, deps) in &tracked {
            assert!(!deps.is_empty());
            assert!(deps
                .iter()
                .all(|d| matches!(d, ConstraintDependency::Link(_))));
        }
        // Rule 9 additionally records the inclusion it chases through.
        let chased = join_rewrite_candidates_tracked(&joined, &ws, false, true, &open_gate);
        assert!(chased.iter().any(|(_, deps)| deps
            .iter()
            .any(|d| matches!(d, ConstraintDependency::Inclusion(_)))));
        // Provenance does not perturb the candidates themselves.
        let plain = join_rewrite_candidates(&joined, &ws, true, true);
        let both = join_rewrite_candidates_tracked(&joined, &ws, true, true, &open_gate);
        assert_eq!(plain, both.into_iter().map(|(c, _)| c).collect::<Vec<_>>());
    }

    #[test]
    fn closed_gate_blocks_constraint_rewrites() {
        let (ws, _) = uni_fixtures();
        let closed = |_: &ConstraintDependency| false;
        // Rules 8/9: no candidate may be generated.
        let joined = example_71_join(&ws);
        assert!(join_rewrite_candidates_tracked(&joined, &ws, true, true, &closed).is_empty());
        // Rule 6: the selection stays above the navigation.
        let e = qualify_expr(
            &NalgExpr::entry("DeptListPage")
                .unnest("DeptList")
                .follow("ToDept", "DeptPage")
                .select(Pred::eq("DeptPage.DName", "Computer Science"))
                .project(vec!["Address"]),
            &ws,
        )
        .unwrap();
        let (pushed, deps) = push_selections_tracked(&e, &ws, &closed).unwrap();
        assert!(deps.is_empty());
        assert!(
            !nalg::display::inline(&pushed).contains("DeptList.DName='Computer Science'"),
            "selection must not cross the follow under a closed gate"
        );
        let (open_pushed, open_deps) = push_selections_tracked(&e, &ws, &open_gate).unwrap();
        assert_eq!(open_deps.len(), 1);
        assert!(validate(&open_pushed, &ws));
        // Rule 7: the replicated-attribute navigation is kept.
        let e = qualify_expr(
            &NalgExpr::entry("SessionListPage")
                .unnest("SesList")
                .follow("ToSes", "SessionPage")
                .unnest("SessionPage.CourseList")
                .follow("SessionPage.CourseList.ToCourse", "CoursePage")
                .project(vec!["CoursePage.CName"]),
            &ws,
        )
        .unwrap();
        let (kept, deps) = prune_navigations_tracked(e.clone(), &ws, &closed).unwrap();
        assert_eq!(kept.follow_count(), 2);
        assert!(deps.is_empty());
        let (pruned, deps) = prune_navigations_tracked(e, &ws, &open_gate).unwrap();
        assert_eq!(pruned.follow_count(), 1);
        assert_eq!(deps.len(), 1);
    }
}
