//! End-to-end reproduction of the paper's Section 7 examples.
//!
//! Example 7.1 — "Name and Description of courses taught by full
//! professors in the Fall session": the **pointer-join** plan (rule 8,
//! Figure 3 (1d)) must win.
//!
//! Example 7.2 — "Name and Email of professors who are members of the
//! Computer Science Department, and who are instructors of Graduate
//! Courses": the **pointer-chase** plan (rule 9, Figure 4 (2)) must win;
//! at the paper's parameters (50 courses, 20 professors, 3 departments)
//! its cost is ≈23 while the pointer-join plan is well over 50.

use std::collections::HashSet;
use websim::sitegen::{University, UniversityConfig};
use wvcore::views::university_catalog;
use wvcore::{ConjunctiveQuery, LiveSource, Optimizer, QuerySession, RuleMask, SiteStatistics};

fn university() -> University {
    University::generate(UniversityConfig::default()).unwrap()
}

fn query_71() -> ConjunctiveQuery {
    ConjunctiveQuery::new("example 7.1")
        .atom("Professor")
        .atom("CourseInstructor")
        .atom("Course")
        .join((0, "PName"), (1, "PName"))
        .join((1, "CName"), (2, "CName"))
        .select((0, "Rank"), "Full")
        .select((2, "Session"), "Fall")
        .project((2, "CName"))
        .project((2, "Description"))
}

fn query_72() -> ConjunctiveQuery {
    ConjunctiveQuery::new("example 7.2")
        .atom("Course")
        .atom("CourseInstructor")
        .atom("Professor")
        .atom("ProfDept")
        .join((0, "CName"), (1, "CName"))
        .join((1, "PName"), (2, "PName"))
        .join((2, "PName"), (3, "PName"))
        .select((3, "DName"), "Computer Science")
        .select((0, "Type"), "Graduate")
        .project((2, "PName"))
        .project((2, "Email"))
}

/// Oracle for 7.1: (CName, Description) of Fall courses taught by Full
/// professors.
fn oracle_71(u: &University) -> HashSet<String> {
    let full: HashSet<String> = u
        .expected_professor()
        .into_iter()
        .filter(|(_, r, _)| r == "Full")
        .map(|(n, _, _)| n)
        .collect();
    let instr: std::collections::HashMap<String, String> =
        u.expected_course_instructor().into_iter().collect();
    u.expected_course()
        .into_iter()
        .filter(|(cn, s, _, _)| s == "Fall" && full.contains(&instr[cn]))
        .map(|(cn, _, _, _)| cn)
        .collect()
}

/// Oracle for 7.2: PNames of CS professors teaching a graduate course.
fn oracle_72(u: &University) -> HashSet<String> {
    let cs: HashSet<String> = u
        .expected_prof_dept()
        .into_iter()
        .filter(|(_, d)| d == "Computer Science")
        .map(|(p, _)| p)
        .collect();
    let grad_courses: HashSet<String> = u
        .expected_course()
        .into_iter()
        .filter(|(_, _, _, t)| t == "Graduate")
        .map(|(c, _, _, _)| c)
        .collect();
    u.expected_course_instructor()
        .into_iter()
        .filter(|(c, p)| grad_courses.contains(c) && cs.contains(p))
        .map(|(_, p)| p)
        .collect()
}

#[test]
fn example_71_answer_is_correct() {
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    let outcome = session.run(&query_71()).unwrap();
    let got: HashSet<String> = outcome
        .report
        .relation
        .rows()
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect();
    assert_eq!(got, oracle_71(&u), "plan:\n{}", outcome.explain.report());
}

#[test]
fn example_71_pointer_join_beats_pointer_chase() {
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let opt = Optimizer::new(&u.site.scheme, &catalog, &stats);
    let explain = opt.optimize(&query_71()).unwrap();
    // The winning plan must NOT navigate all 50 course pages: its cost is
    // below the pointer-chase cost 1 + |Prof| + |Course|/3 ≈ 37.7.
    let best = explain.best();
    assert!(
        best.estimate.cost.pages < 33.0,
        "best plan too expensive:\n{}",
        explain.report()
    );
    // Both strategies must be in the candidate pool: some candidate joins
    // the two pointer sets (rule 8 shape: join on ToCourse link columns).
    let has_pointer_join = explain.candidates.iter().any(|c| {
        let t = nalg::display::tree(&c.expr);
        t.contains("ToCourse = ") || t.contains("= SessionPage.CourseList.ToCourse")
    });
    assert!(has_pointer_join, "{}", explain.report());
}

#[test]
fn example_71_measured_accesses_agree() {
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    let outcome = session.run(&query_71()).unwrap();
    // actual downloads must be far below navigating every course page:
    // full naive navigation costs 1 + 20 profs + 1 + 3 sessions + 50
    // courses = 75 pages.
    assert!(
        outcome.downloads() < 50,
        "downloads {} too high; plan:\n{}",
        outcome.downloads(),
        outcome.explain.report()
    );
}

#[test]
fn example_72_answer_is_correct() {
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    let outcome = session.run(&query_72()).unwrap();
    let got: HashSet<String> = outcome
        .report
        .relation
        .rows()
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect();
    assert_eq!(got, oracle_72(&u), "plan:\n{}", outcome.explain.report());
}

#[test]
fn example_72_pointer_chase_wins_at_paper_parameters() {
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let opt = Optimizer::new(&u.site.scheme, &catalog, &stats);
    let explain = opt.optimize(&query_72()).unwrap();
    let best = explain.best();
    // The paper: pointer-chase ≈ 23 (we estimate 1+1+20/3+50/3 ≈ 25.3),
    // pointer-join "well over 50".
    assert!(
        best.estimate.cost.pages < 30.0,
        "best plan too expensive:\n{}",
        explain.report()
    );
    // The best plan chases from the department page: it must not contain
    // the session-list entry point (which would mean downloading all
    // course pages).
    let t = nalg::display::tree(&best.expr);
    assert!(
        !t.contains("SessionListPage"),
        "expected pointer-chase plan, got:\n{}",
        explain.report()
    );
    assert!(t.contains("DeptListPage"), "{t}");
}

#[test]
fn example_72_disabling_rule9_degrades_plan() {
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let full = Optimizer::new(&u.site.scheme, &catalog, &stats)
        .optimize(&query_72())
        .unwrap();
    let no_chase = Optimizer::new(&u.site.scheme, &catalog, &stats)
        .with_mask(RuleMask::all().without_pointer_chase())
        .optimize(&query_72())
        .unwrap();
    assert!(
        full.best().estimate.cost.pages < no_chase.best().estimate.cost.pages,
        "rule 9 should matter: full {} vs masked {}\n{}",
        full.best().estimate.cost,
        no_chase.best().estimate.cost,
        no_chase.report()
    );
}

#[test]
fn example_72_measured_pointer_chase_beats_paper_pointer_join() {
    // Execute the winning (pointer-chase) plan and the paper's plan (1)
    // (the pointer-join plan that derives instructor pointers by
    // downloading every session and course page) against the live site and
    // compare *measured* page accesses — the paper's ≈23 vs >50 claim.
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);

    let explain = session.explain(&query_72()).unwrap();
    let chase = session.execute(&explain.best().expr).unwrap();

    // The paper's plan (1): among the candidates, the most expensive one
    // that enters through the session list (it must download all course
    // pages to find instructors of graduate courses).
    let paper_join = explain
        .candidates
        .iter()
        .filter(|c| nalg::display::tree(&c.expr).contains("SessionListPage"))
        .max_by(|a, b| {
            a.estimate
                .cost
                .pages
                .partial_cmp(&b.estimate.cost.pages)
                .unwrap()
        })
        .expect("a session-list-based candidate exists");
    u.site.server.reset_stats();
    let join_report = session.execute(&paper_join.expr).unwrap();

    let chase_pages = chase.cost_model_accesses();
    let join_pages = join_report.cost_model_accesses();
    assert!(
        chase_pages < join_pages,
        "chase {chase_pages} vs join {join_pages}"
    );
    // magnitudes in the paper's ballpark: ≈23 vs "well over 50"
    assert!(chase_pages <= 35, "chase = {chase_pages}");
    assert!(join_pages >= 45, "join = {join_pages}");
    // answers agree regardless of strategy
    let a: std::collections::HashSet<String> = chase
        .relation
        .rows()
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect();
    let b: std::collections::HashSet<String> = join_report
        .relation
        .rows()
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect();
    assert_eq!(a, b);
}

#[test]
fn estimated_vs_measured_within_factor_two() {
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    for q in [query_71(), query_72()] {
        let outcome = session.run(&q).unwrap();
        let est = outcome.estimated_pages();
        let meas = outcome.measured_pages() as f64;
        assert!(
            est <= 2.0 * meas + 5.0 && meas <= 2.0 * est + 5.0,
            "{}: estimate {est} vs measured {meas}",
            q.name
        );
        u.site.server.reset_stats();
    }
}
