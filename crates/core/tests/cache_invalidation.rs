//! Integration tests for [`nalg::SharedPageCache`] Last-Modified
//! invalidation when the server's `put_updated` races concurrent reads.
//!
//! The cache is write-through and never authoritative: a page updated on
//! the server keeps being served from cache until a URL check (HEAD)
//! observes the newer Last-Modified stamp and calls
//! `invalidate_older_than`. These tests pin the three read paths — cold,
//! warm, invalidated — on exact hit/miss counters, and show that the
//! protocol converges even when a slow reader re-inserts a stale tuple
//! *after* the invalidation ran.

use adm::{Field, PageScheme, Tuple, Url, WebScheme};
use nalg::{PageSource, SharedPageCache};
use websim::VirtualServer;
use wvcore::{CachedSource, LiveSource};

fn one_page_site() -> (WebScheme, VirtualServer, Url) {
    let scheme = WebScheme::builder()
        .scheme(PageScheme::new("P", vec![Field::text("A")]).unwrap())
        .entry_point("P", "/p.html")
        .build()
        .unwrap();
    let server = VirtualServer::new();
    let url = Url::new("/p.html");
    server.put(url.clone(), "P", body("v1"));
    (scheme, server, url)
}

fn body(v: &str) -> String {
    format!(r#"<div class="adm-page"><span data-attr="A">{v}</span></div>"#)
}

fn text_of(t: &Tuple) -> String {
    t.get("A").unwrap().as_text().unwrap().to_string()
}

#[test]
fn cold_warm_invalidated_paths_on_hit_miss_counters() {
    let (ws, server, url) = one_page_site();
    let live = LiveSource::new(&ws, &server);
    let cache = SharedPageCache::default();
    let src = CachedSource::new(&live, &cache);

    // cold: miss, forwarded to the server, written through
    let t = src.fetch(&url, "P").unwrap();
    assert_eq!(text_of(&t), "v1");
    assert_eq!((cache.stats().hits, cache.stats().misses), (0, 1));
    assert_eq!(server.stats().gets, 1);

    // warm: hit, no connection
    let t = src.fetch(&url, "P").unwrap();
    assert_eq!(text_of(&t), "v1");
    assert_eq!((cache.stats().hits, cache.stats().misses), (1, 1));
    assert_eq!(server.stats().gets, 1);

    // the server publishes v2; the cache keeps answering v1 until a HEAD
    // observes the newer stamp and invalidates
    server.put_updated(url.clone(), "P", body("v2"));
    assert_eq!(text_of(&src.fetch(&url, "P").unwrap()), "v1");
    assert_eq!((cache.stats().hits, cache.stats().misses), (2, 1));

    let lm = server.head(&url).unwrap().last_modified;
    assert!(cache.invalidate_older_than(&url, lm), "older entry dropped");
    assert_eq!(cache.stats().invalidations, 1);

    // invalidated: miss again, the fresh tuple comes from the server
    let t = src.fetch(&url, "P").unwrap();
    assert_eq!(text_of(&t), "v2");
    assert_eq!((cache.stats().hits, cache.stats().misses), (2, 2));
    assert_eq!(server.stats().gets, 2);

    // a current entry survives the same check
    assert!(!cache.invalidate_older_than(&url, lm), "entry is current");
    assert_eq!(text_of(&src.fetch(&url, "P").unwrap()), "v2");
    assert_eq!((cache.stats().hits, cache.stats().misses), (3, 2));
}

#[test]
fn stale_reinsert_after_invalidation_is_caught_by_the_next_check() {
    // The race in slow motion: reader R misses, downloads v1, stalls;
    // writer publishes v2 and the URL check invalidates; R finally inserts
    // its v1 tuple (stamped with v1's Last-Modified). The cache is stale
    // again — but the *next* URL check sees lm(v1) < lm(v2) and drops it,
    // so staleness never survives a check.
    let (ws, server, url) = one_page_site();
    let live = LiveSource::new(&ws, &server);
    let cache = SharedPageCache::default();

    // reader R's download of v1, not yet inserted
    let (stale_tuple, stale_lm) = live.fetch_stamped(&url, "P").unwrap();

    // writer publishes v2; the URL check finds nothing cached to drop
    server.put_updated(url.clone(), "P", body("v2"));
    let lm2 = server.head(&url).unwrap().last_modified;
    assert!(!cache.invalidate_older_than(&url, lm2));

    // R wakes up and inserts its stale download
    cache.insert(&url, &stale_tuple, stale_lm);
    assert_eq!(text_of(&cache.get(&url).unwrap()), "v1", "stale again");

    // the next check catches it
    assert!(cache.invalidate_older_than(&url, lm2));
    assert!(cache.get(&url).is_none());
    assert_eq!(
        text_of(&CachedSource::new(&live, &cache).fetch(&url, "P").unwrap()),
        "v2"
    );
    // counters saw exactly: one hit (the stale read), two misses (the
    // post-invalidation get + the refetch), one invalidation
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
}

#[test]
fn put_updated_racing_concurrent_reads_converges() {
    let (ws, server, url) = one_page_site();
    let live = LiveSource::new(&ws, &server);
    let cache = SharedPageCache::default();
    const VERSIONS: usize = 20;
    const READERS: usize = 4;

    std::thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                let src = CachedSource::new(&live, &cache);
                for _ in 0..200 {
                    // every answer must be a version that existed at some
                    // point — never a torn or phantom page
                    let v = text_of(&src.fetch(&url, "P").unwrap());
                    let n: usize = v.strip_prefix('v').unwrap().parse().unwrap();
                    assert!((1..=VERSIONS).contains(&n), "phantom version {v}");
                }
            });
        }
        s.spawn(|| {
            for i in 2..=VERSIONS {
                server.put_updated(url.clone(), "P", body(&format!("v{i}")));
                let lm = server.head(&url).unwrap().last_modified;
                cache.invalidate_older_than(&url, lm);
            }
        });
    });

    // convergence: readers may have re-inserted any stale version, but one
    // final URL check flushes it and the cache settles on the last one
    let lm = server.head(&url).unwrap().last_modified;
    cache.invalidate_older_than(&url, lm);
    let src = CachedSource::new(&live, &cache);
    assert_eq!(
        text_of(&src.fetch(&url, "P").unwrap()),
        format!("v{VERSIONS}")
    );
    assert_eq!(
        text_of(&cache.get(&url).unwrap()),
        format!("v{VERSIONS}"),
        "the settled cache entry is the newest version"
    );
    // accounting stayed exact under the race
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, READERS as u64 * 200 + 2);
    assert_eq!(s.entries, 1);
}
