//! Rewrite soundness: every candidate plan the optimizer enumerates for a
//! query computes the same answer *values* when executed against the live
//! site. (Plans may disagree on result column *names* — rule 7 rewrites
//! projections onto replicated anchors — but never on the values.)

use websim::sitegen::{University, UniversityConfig};
use wvcore::views::university_catalog;
use wvcore::{ConjunctiveQuery, LiveSource, QuerySession, SiteStatistics};

fn workload() -> Vec<ConjunctiveQuery> {
    vec![
        ConjunctiveQuery::new("full professors")
            .atom("Professor")
            .select((0, "Rank"), "Full")
            .project((0, "PName")),
        ConjunctiveQuery::new("cs profs")
            .atom("Professor")
            .atom("ProfDept")
            .join((0, "PName"), (1, "PName"))
            .select((1, "DName"), "Computer Science")
            .project((0, "PName"))
            .project((0, "Rank")),
        ConjunctiveQuery::new("example 7.1")
            .atom("Professor")
            .atom("CourseInstructor")
            .atom("Course")
            .join((0, "PName"), (1, "PName"))
            .join((1, "CName"), (2, "CName"))
            .select((0, "Rank"), "Full")
            .select((2, "Session"), "Fall")
            .project((2, "CName")),
        ConjunctiveQuery::new("example 7.2")
            .atom("Course")
            .atom("CourseInstructor")
            .atom("Professor")
            .atom("ProfDept")
            .join((0, "CName"), (1, "CName"))
            .join((1, "PName"), (2, "PName"))
            .join((2, "PName"), (3, "PName"))
            .select((3, "DName"), "Computer Science")
            .select((0, "Type"), "Graduate")
            .project((2, "PName")),
        ConjunctiveQuery::new("teachers of winter courses")
            .atom("CourseInstructor")
            .atom("Course")
            .join((0, "CName"), (1, "CName"))
            .select((1, "Session"), "Winter")
            .project((0, "PName")),
    ]
}

#[test]
fn every_candidate_plan_computes_the_same_answer() {
    let u = University::generate(UniversityConfig {
        departments: 3,
        professors: 12,
        courses: 24,
        seed: 99,
        ..UniversityConfig::default()
    })
    .unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);

    for q in workload() {
        let explain = session.explain(&q).unwrap();
        assert!(!explain.candidates.is_empty(), "{}: no candidates", q.name);
        let mut reference: Option<std::collections::BTreeSet<Vec<String>>> = None;
        for (i, cand) in explain.candidates.iter().enumerate() {
            let report = session.execute(&cand.expr).unwrap();
            let answer: std::collections::BTreeSet<Vec<String>> = report
                .relation
                .rows()
                .iter()
                .map(|row| row.iter().map(|v| v.to_string()).collect())
                .collect();
            match &reference {
                None => reference = Some(answer),
                Some(r) => assert_eq!(
                    &answer,
                    r,
                    "{}: candidate {i} disagrees\n{}",
                    q.name,
                    nalg::display::tree(&cand.expr)
                ),
            }
        }
    }
}

#[test]
fn candidate_plans_are_deterministic() {
    // the optimizer must be a pure function of (query, scheme, stats)
    let u = University::generate(UniversityConfig::default()).unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    for q in workload() {
        let a = session.explain(&q).unwrap();
        let b = session.explain(&q).unwrap();
        assert_eq!(a.candidates.len(), b.candidates.len(), "{}", q.name);
        for (x, y) in a.candidates.iter().zip(b.candidates.iter()) {
            assert_eq!(x.expr, y.expr, "{}", q.name);
        }
    }
}
