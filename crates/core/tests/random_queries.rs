//! Randomized soundness: for arbitrary conjunctive queries over the
//! university view, the fully optimized plan computes the same answer as
//! the naive (rule-1-only) plan. The naive plan is correct by
//! construction — it just evaluates the default navigations — so this
//! pins the whole rewrite stack.

use proptest::prelude::*;
use std::sync::OnceLock;
use websim::sitegen::{University, UniversityConfig};
use wvcore::views::university_catalog;
use wvcore::{ConjunctiveQuery, LiveSource, QuerySession, RuleMask, SiteStatistics, ViewCatalog};

struct Fixture {
    u: University,
    stats: SiteStatistics,
    catalog: ViewCatalog,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 10,
            courses: 18,
            seed: 123,
            ..UniversityConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        Fixture {
            u,
            stats,
            catalog: university_catalog(),
        }
    })
}

/// The relations and, per attribute, a pool of plausible constants.
const RELATIONS: &[(&str, &[&str])] = &[
    ("Dept", &["DName", "Address"]),
    ("Professor", &["PName", "Rank", "Email"]),
    ("Course", &["CName", "Session", "Description", "Type"]),
    ("CourseInstructor", &["CName", "PName"]),
    ("ProfDept", &["PName", "DName"]),
];

fn values_for(attr: &str) -> Vec<&'static str> {
    match attr {
        "Rank" => vec!["Full", "Associate", "Assistant"],
        "Session" => vec!["Fall", "Winter", "Summer"],
        "Type" => vec!["Graduate", "Undergraduate"],
        "DName" => vec!["Computer Science", "Mathematics", "Physics", "Nowhere"],
        _ => vec!["no-such-value"],
    }
}

#[derive(Debug, Clone)]
struct RandomQuery {
    atoms: Vec<usize>,                        // indices into RELATIONS
    selections: Vec<(usize, String, String)>, // (atom, attr, value)
    join_all_shared: bool,
}

fn arb_query() -> impl Strategy<Value = RandomQuery> {
    (
        proptest::collection::vec(0usize..RELATIONS.len(), 1..=3),
        proptest::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>()),
            0..3,
        ),
        any::<bool>(),
    )
        .prop_map(|(atoms, sel_picks, join_all_shared)| {
            let mut selections = Vec::new();
            for (ai, vi) in sel_picks {
                let atom = ai.index(atoms.len());
                let attrs = RELATIONS[atoms[atom]].1;
                let attr = attrs[vi.index(attrs.len())];
                let pool = values_for(attr);
                let value = pool[vi.index(pool.len())];
                selections.push((atom, attr.to_string(), value.to_string()));
            }
            RandomQuery {
                atoms,
                selections,
                join_all_shared,
            }
        })
}

fn build(rq: &RandomQuery) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new("random");
    for &a in &rq.atoms {
        q = q.atom(RELATIONS[a].0);
    }
    // join every later atom to every earlier one on shared attribute names
    // (natural-join style), so most queries are connected
    if rq.join_all_shared {
        for j in 1..rq.atoms.len() {
            for i in 0..j {
                for attr in RELATIONS[rq.atoms[i]].1 {
                    if RELATIONS[rq.atoms[j]].1.contains(attr) {
                        q = q.join((i, *attr), (j, *attr));
                    }
                }
            }
        }
    }
    for (atom, attr, value) in &rq.selections {
        q = q.select((*atom, attr.clone()), value.clone());
    }
    // project the first attribute of every atom
    for (i, &a) in rq.atoms.iter().enumerate() {
        q = q.project((i, RELATIONS[a].1[0]));
    }
    q
}

fn answer_of(
    session: &QuerySession<'_, LiveSource<'_>>,
    q: &ConjunctiveQuery,
) -> std::collections::BTreeSet<Vec<String>> {
    let outcome = session.run(q).expect("query runs");
    outcome
        .report
        .relation
        .rows()
        .iter()
        .map(|row| row.iter().map(|v| v.to_string()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn optimized_equals_naive(rq in arb_query()) {
        let fx = fixture();
        let q = build(&rq);
        q.validate(&fx.catalog).expect("generated query is valid");
        let source = LiveSource::for_site(&fx.u.site);
        let optimized = QuerySession::new(&fx.u.site.scheme, &fx.catalog, &fx.stats, &source);
        let naive = QuerySession::new(&fx.u.site.scheme, &fx.catalog, &fx.stats, &source)
            .with_mask(RuleMask::none());
        let a = answer_of(&optimized, &q);
        let b = answer_of(&naive, &q);
        prop_assert_eq!(a, b, "query: {}", q);
    }

    #[test]
    fn optimized_never_costs_more_than_naive(rq in arb_query()) {
        let fx = fixture();
        let q = build(&rq);
        let source = LiveSource::for_site(&fx.u.site);
        let optimized = QuerySession::new(&fx.u.site.scheme, &fx.catalog, &fx.stats, &source);
        let naive = QuerySession::new(&fx.u.site.scheme, &fx.catalog, &fx.stats, &source)
            .with_mask(RuleMask::none());
        let oe = optimized.explain(&q).expect("optimizes");
        let ne = naive.explain(&q).expect("optimizes");
        prop_assert!(
            oe.best().estimate.cost.pages <= ne.best().estimate.cost.pages + 1e-6,
            "optimized {} vs naive {} for {}",
            oe.best().estimate.cost,
            ne.best().estimate.cost,
            q
        );
    }
}
