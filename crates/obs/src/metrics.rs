//! A registry of named counters, gauges and histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap cloneable
//! `Arc`-backed cells; the registry maps stable names to handles and
//! renders them as Prometheus-style text or a JSON snapshot.
//! Subsystems keep their existing snapshot structs (`CacheStats`,
//! `AccessSnapshot`, …) as *views*: the struct is assembled by reading
//! registry-backed handles, so totals are identical to the old ad-hoc
//! atomics while every number is also exportable by name.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotonically increasing counter (resettable for test harnesses).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (useful for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (used by `reset_stats`-style harness hooks).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A signed gauge: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not registered anywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `k` counts observations whose
/// value needs `k` bits, i.e. `v <= 2^k - 1` and `v > 2^(k-1) - 1`.
const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A histogram over `u64` observations with power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A histogram not registered anywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let k = (64 - v.leading_zeros()) as usize;
        self.0.buckets[k].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(upper_bound, raw_count)`, smallest bound
    /// first. The upper bound of bucket `k` is `2^k - 1`.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|k| {
                let n = self.0.buckets[k].load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let le = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
                Some((le, n))
            })
            .collect()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct RegistryInner {
    prefix: String,
    metrics: RwLock<BTreeMap<String, Metric>>,
}

/// A named collection of metrics. Cloning is cheap; all clones share
/// the same underlying map.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with no name prefix.
    pub fn new() -> Self {
        Self::with_prefix("")
    }

    /// An empty registry whose metric names are all prefixed with
    /// `<prefix>_` (e.g. prefix `"cache"` + name `"hits"` →
    /// `cache_hits`).
    pub fn with_prefix(prefix: &str) -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                prefix: prefix.to_string(),
                metrics: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    fn full_name(&self, name: &str) -> String {
        if self.inner.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}_{}", self.inner.prefix, name)
        }
    }

    /// Registers (or retrieves) a counter under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let full = self.full_name(name);
        let mut map = self.inner.metrics.write();
        match map
            .entry(full.clone())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {full} already registered as {}", other.type_name()),
        }
    }

    /// Registers (or retrieves) a gauge under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let full = self.full_name(name);
        let mut map = self.inner.metrics.write();
        match map
            .entry(full.clone())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {full} already registered as {}", other.type_name()),
        }
    }

    /// Registers (or retrieves) a histogram under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let full = self.full_name(name);
        let mut map = self.inner.metrics.write();
        match map
            .entry(full.clone())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {full} already registered as {}", other.type_name()),
        }
    }

    /// All registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner.metrics.read().keys().cloned().collect()
    }

    /// Prometheus-style text exposition (`# TYPE` lines plus samples;
    /// histogram buckets are cumulative with `le` labels).
    pub fn render_prometheus(&self) -> String {
        let map = self.inner.metrics.read();
        let mut out = String::new();
        for (name, metric) in map.iter() {
            out.push_str(&format!("# TYPE {name} {}\n", metric.type_name()));
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => {
                    let mut cum = 0u64;
                    for (le, n) in h.buckets() {
                        cum += n;
                        if le == u64::MAX {
                            continue;
                        }
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }

    /// One JSON object mapping each metric name to its snapshot.
    pub fn render_json(&self) -> String {
        let map = self.inner.metrics.read();
        let mut out = String::from("{");
        for (i, (name, metric)) in map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":"));
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{}}}", c.get()))
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{}}}", g.get()))
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count(),
                        h.sum()
                    ));
                    for (j, (le, n)) in h.buckets().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        if *le == u64::MAX {
                            out.push_str(&format!("[null,{n}]"));
                        } else {
                            out.push_str(&format!("[{le},{n}]"));
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::with_prefix("cache");
        let hits = reg.counter("hits");
        hits.inc();
        hits.add(4);
        assert_eq!(hits.get(), 5);
        // Same name yields the same underlying cell.
        assert_eq!(reg.counter("hits").get(), 5);
        hits.reset();
        assert_eq!(reg.counter("hits").get(), 0);

        let g = reg.gauge("entries");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        assert_eq!(reg.names(), vec!["cache_entries", "cache_hits"]);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1000);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let b = h.buckets();
        // 0 → le 0; 1 → le 1; 2,3 → le 3; 1000 → le 1023.
        assert_eq!(b, vec![(0, 1), (1, 1), (3, 2), (1023, 1)]);
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let reg = MetricsRegistry::with_prefix("websim");
        reg.counter("gets").add(3);
        let h = reg.histogram("get_bytes");
        h.observe(100);
        h.observe(200);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE websim_gets counter"));
        assert!(text.contains("websim_gets 3"));
        assert!(text.contains("# TYPE websim_get_bytes histogram"));
        assert!(text.contains("websim_get_bytes_bucket{le=\"127\"} 1"));
        assert!(text.contains("websim_get_bytes_bucket{le=\"255\"} 2"));
        assert!(text.contains("websim_get_bytes_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("websim_get_bytes_sum 300"));
        assert!(text.contains("websim_get_bytes_count 2"));
    }

    #[test]
    fn json_snapshot_shapes() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.gauge("b").set(-1);
        let json = reg.render_json();
        assert_eq!(
            json,
            "{\"a\":{\"type\":\"counter\",\"value\":2},\"b\":{\"type\":\"gauge\",\"value\":-1}}"
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_clash_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
