//! Observability for the web-view engine.
//!
//! Independent facilities, composable per subsystem:
//!
//! * [`trace`] — a lightweight structured tracing core: spans and
//!   instantaneous events collected into a bounded ring buffer with
//!   seeded, deterministic ids and JSON-lines export. A [`TraceSink`]
//!   is a cheap cloneable handle; subsystems hold an
//!   `Option<TraceSink>` and skip all work when it is `None`, so
//!   tracing has zero overhead unless explicitly attached.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges and
//!   histograms with Prometheus-style text exposition and a JSON
//!   snapshot. Subsystem counter structs (`CacheStats`,
//!   `AccessSnapshot`, `ResilienceSnapshot`, …) are views over
//!   registry-backed handles, so the registry is the single
//!   registration point without changing any public API.
//! * [`hist`] — a [`FixedHistogram`]: HDR-style sub-bucketed latency
//!   histogram bounding quantile quantization error at ~3.1%, where the
//!   log2 [`Histogram`] can be off by almost 2×.
//! * [`slo`] — latency objectives with deterministic request-count
//!   multi-window burn-rate accounting over a [`FixedHistogram`].
//! * [`flight`] — a [`FlightRecorder`]: a bounded ring of recent
//!   per-request causal traces, frozen into a JSONL dump when a request
//!   is shed, falls back, misses a degraded view, or breaches the SLO.
//! * [`reqctx`] — ambient per-request context so the fetch layer
//!   (coalescing, pool workers, upqueries) can attribute work to the
//!   request it serves without any API threading.
//! * [`deadline`] — per-request wall-clock budgets ([`Deadline`]) and
//!   cooperative per-URL cancellation ([`CancelToken`]) threaded through
//!   the same ambient context.
//!
//! Everything is offline-shim compatible: the only dependency is the
//! workspace `parking_lot` shim.

pub mod deadline;
pub mod flight;
pub mod hist;
pub mod metrics;
pub mod reqctx;
pub mod slo;
pub mod trace;

pub use deadline::{CancelToken, Deadline};
pub use flight::{FlightDump, FlightRecorder, PhaseBreakdown, RequestTrace, TriggerKind};
pub use hist::FixedHistogram;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use slo::{LatencyObjective, SloSnapshot, SloTracker};
pub use trace::{EventKind, FieldValue, Span, TraceEvent, TraceSink};
