//! Observability for the web-view engine.
//!
//! Two independent facilities:
//!
//! * [`trace`] — a lightweight structured tracing core: spans and
//!   instantaneous events collected into a bounded ring buffer with
//!   seeded, deterministic ids and JSON-lines export. A [`TraceSink`]
//!   is a cheap cloneable handle; subsystems hold an
//!   `Option<TraceSink>` and skip all work when it is `None`, so
//!   tracing has zero overhead unless explicitly attached.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges and
//!   histograms with Prometheus-style text exposition and a JSON
//!   snapshot. Subsystem counter structs (`CacheStats`,
//!   `AccessSnapshot`, `ResilienceSnapshot`, …) are views over
//!   registry-backed handles, so the registry is the single
//!   registration point without changing any public API.
//!
//! Both are offline-shim compatible: the only dependency is the
//! workspace `parking_lot` shim.

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{EventKind, FieldValue, Span, TraceEvent, TraceSink};
