//! Ambient per-request context for fetch-layer attribution.
//!
//! The fetch layer (`nalg`'s coalescing source, pool workers, the
//! dataflow store's upqueries) sits below the evaluator and has no
//! request parameter to thread a trace handle through — a
//! `PageSource::fetch` call carries a URL and nothing else. This module
//! provides the missing channel: the serving layer installs a
//! [`RequestCtx`] for the duration of a request's evaluation (and
//! re-installs it inside pool worker threads), and the fetch layer
//! picks it up with [`current`] to emit attribution events and charge
//! fetch time to the right request.
//!
//! The context is deliberately *optional everywhere*: when nothing is
//! installed, [`current`] is a thread-local read returning `None` and
//! the fetch layer does no extra work — tracing off stays free, and
//! results never depend on it.

use crate::deadline::{CancelToken, Deadline};
use crate::trace::TraceSink;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Accumulates wall-clock microseconds spent inside fetch calls on a
/// request's behalf, across every thread that worked for it. With a
/// worker pool the total can exceed the request's elapsed wall clock.
#[derive(Debug, Clone, Default)]
pub struct FetchClock {
    total: Arc<AtomicU64>,
}

impl FetchClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `us` microseconds of fetch time.
    pub fn add_us(&self, us: u64) {
        self.total.fetch_add(us, Ordering::Relaxed);
    }

    /// Total charged so far.
    pub fn total_us(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// The ambient identity of the request the current thread is working
/// for.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    /// Sink receiving fetch attribution events (leader/follower links,
    /// upqueries). The serving layer points this at a side sink so the
    /// request's deterministic causal trace is not perturbed by
    /// scheduling-dependent events.
    pub sink: TraceSink,
    /// Span id attribution events should parent under.
    pub parent: u64,
    /// The owning request's id.
    pub request_id: u64,
    /// Where fetch time is charged.
    pub clock: FetchClock,
    /// The request's remaining wall-clock budget; infinite when no
    /// latency objective is configured.
    pub deadline: Deadline,
    /// Cooperative cancellation for in-flight fetches, if the request
    /// opted into relevance-driven cancellation.
    pub cancel: Option<CancelToken>,
}

thread_local! {
    static CURRENT: RefCell<Option<RequestCtx>> = const { RefCell::new(None) };
}

/// The context installed on this thread, if any.
pub fn current() -> Option<RequestCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Runs `f` with `ctx` installed as this thread's request context,
/// restoring the previous context afterwards (also on panic). Passing
/// `None` explicitly clears the context for the duration — pool workers
/// use this to mirror their spawner's state exactly.
pub fn with_ctx<R>(ctx: Option<RequestCtx>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<RequestCtx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventKind, TraceSink};

    fn ctx(req: u64) -> RequestCtx {
        RequestCtx {
            sink: TraceSink::with_seed(req),
            parent: 1,
            request_id: req,
            clock: FetchClock::new(),
            deadline: Deadline::infinite(),
            cancel: None,
        }
    }

    #[test]
    fn install_read_restore() {
        assert!(current().is_none());
        with_ctx(Some(ctx(7)), || {
            let c = current().unwrap();
            assert_eq!(c.request_id, 7);
            // Nested install shadows, then restores.
            with_ctx(Some(ctx(8)), || {
                assert_eq!(current().unwrap().request_id, 8);
            });
            assert_eq!(current().unwrap().request_id, 7);
            // Explicit None clears for the duration.
            with_ctx(None, || assert!(current().is_none()));
            assert_eq!(current().unwrap().request_id, 7);
        });
        assert!(current().is_none());
    }

    #[test]
    fn restores_on_panic() {
        let result = std::panic::catch_unwind(|| {
            with_ctx(Some(ctx(1)), || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(current().is_none());
    }

    #[test]
    fn clock_is_shared_across_clones_and_threads() {
        let c = ctx(3);
        with_ctx(Some(c.clone()), || {
            let grabbed = current().unwrap();
            std::thread::scope(|s| {
                s.spawn(move || {
                    // A worker thread re-installs the captured context.
                    with_ctx(Some(grabbed), || {
                        current().unwrap().clock.add_us(40);
                    });
                });
            });
            current().unwrap().clock.add_us(2);
        });
        assert_eq!(c.clock.total_us(), 42);
    }

    #[test]
    fn sink_receives_attribution_events() {
        let c = ctx(5);
        with_ctx(Some(c.clone()), || {
            let cur = current().unwrap();
            cur.sink
                .event(EventKind::Fetch, "fetch.join", Some(cur.parent), vec![]);
        });
        assert_eq!(c.sink.len(), 1);
        assert_eq!(c.sink.events()[0].parent, Some(1));
    }
}
