//! Fixed-precision (HDR-style sub-bucketed) histogram.
//!
//! The log2 [`crate::Histogram`] doubles its bucket width at every
//! octave, so a p99 read from it can be off by almost 2× — fine for
//! order-of-magnitude dashboards, useless for SLO math. A
//! [`FixedHistogram`] subdivides every octave into `2^SUB_BITS = 32`
//! sub-buckets, bounding the relative quantization error of any
//! reported quantile at `1/32 ≈ 3.1%` while still covering the full
//! `u64` range with a fixed 1920-slot table (no allocation per
//! observation, no dynamic resizing).
//!
//! Like the rest of the `obs` metric types it is a cheap cloneable
//! handle over shared atomics, safe to feed from many threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket precision: each power-of-two range is split into
/// `2^SUB_BITS` equal sub-buckets.
pub const SUB_BITS: u32 = 5;

const SUB_COUNT: u64 = 1 << SUB_BITS; // 32
/// Values below `2 * SUB_COUNT` are recorded exactly (one bucket per
/// integer value).
const EXACT_LIMIT: u64 = SUB_COUNT * 2; // 64
/// Total bucket count: 64 exact slots + 58 octaves × 32 sub-buckets.
const BUCKETS: usize = (EXACT_LIMIT + (63 - SUB_BITS as u64) * SUB_COUNT) as usize;

/// Stable identifier for this bucket layout, embedded in benchmark
/// output so `benchcmp` can flag resolution changes instead of
/// silently diffing percentiles quantized on different grids.
pub const RESOLUTION: &str = "hdr32";

#[derive(Debug)]
struct Inner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-precision histogram over `u64` observations (≤3.1% relative
/// quantization error on any quantile).
#[derive(Debug, Clone)]
pub struct FixedHistogram {
    inner: Arc<Inner>,
}

impl Default for FixedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl FixedHistogram {
    pub fn new() -> Self {
        FixedHistogram {
            inner: Arc::new(Inner {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Bucket index for a value: exact below [`EXACT_LIMIT`], then one
    /// of 32 sub-buckets per octave.
    fn index(v: u64) -> usize {
        if v < EXACT_LIMIT {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS + 1
        let shift = msb - SUB_BITS as u64;
        let sub = (v >> shift) - SUB_COUNT; // 0..SUB_COUNT
        (EXACT_LIMIT + (shift - 1) * SUB_COUNT + sub) as usize
    }

    /// Largest value mapping to the bucket at `index` (the bucket's
    /// inclusive upper bound, reported by quantile reads).
    fn upper_bound(index: usize) -> u64 {
        let index = index as u64;
        if index < EXACT_LIMIT {
            return index;
        }
        let rel = index - EXACT_LIMIT;
        let shift = rel / SUB_COUNT + 1;
        let sub = rel % SUB_COUNT;
        // The very top bucket's bound is 2^64, which wraps to exactly
        // u64::MAX after the decrement.
        ((SUB_COUNT + sub + 1) << shift).wrapping_sub(1)
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.inner.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Mean of the recorded observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`. Within
    /// ~3.1% of the true order statistic; 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return Self::upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (Self::upper_bound(i), c))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_limit() {
        let h = FixedHistogram::new();
        for v in 0..EXACT_LIMIT {
            h.observe(v);
        }
        for (i, (ub, c)) in h.buckets().into_iter().enumerate() {
            assert_eq!((ub, c), (i as u64, 1));
        }
    }

    #[test]
    fn index_and_upper_bound_are_consistent() {
        // Every bucket's upper bound must map back to that bucket, and
        // one past it must map to the next.
        for i in 0..BUCKETS {
            let ub = FixedHistogram::upper_bound(i);
            assert_eq!(FixedHistogram::index(ub), i, "upper bound of bucket {i}");
            if ub < u64::MAX {
                assert_eq!(FixedHistogram::index(ub + 1), i + 1);
            }
        }
        assert_eq!(FixedHistogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_within_resolution() {
        let h = FixedHistogram::new();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        for (q, truth) in [(0.5, 5_000u64), (0.99, 9_900), (0.999, 9_990)] {
            let got = h.value_at_quantile(q);
            let err = (got as f64 - truth as f64).abs() / truth as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "q={q}: got {got}, want ~{truth}");
            assert!(got >= truth, "bucket upper bound never under-reports");
        }
        assert_eq!(h.value_at_quantile(1.0), 10_000);
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum(), 50_005_000);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = FixedHistogram::new();
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn clones_share_state_across_threads() {
        let h = FixedHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for v in 0..1000u64 {
                        h.observe(v * 4 + t);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 3999);
    }
}
