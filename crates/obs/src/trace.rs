//! Structured tracing: spans, instantaneous events, a bounded ring
//! buffer, and JSON-lines export.
//!
//! A [`TraceSink`] is a cheap cloneable handle (an `Arc` around the
//! buffer), so it can be attached to evaluators, optimizers, caches and
//! fetch pools without lifetime plumbing. Ids are drawn from a seeded
//! splitmix64 stream at *open* time, so two runs over the same plan
//! with the same seed produce identical span ids in identical order —
//! the property the determinism tests pin.
//!
//! Spans are recorded into the buffer when [`TraceSink::finish`] is
//! called (post-order), while their `id` and `start` sequence number
//! are assigned when [`TraceSink::begin`] is called (pre-order); the
//! pre-order structure of a run is therefore recoverable from `start`
//! even though leaves land in the buffer before their parents.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Default ring-buffer capacity (events); older events are dropped
/// (and counted) once the buffer is full.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Category of a trace event, used for filtering exported traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// One NALG operator application inside the evaluator.
    Operator,
    /// One optimizer action: a rewrite-rule application or a summary.
    Optimizer,
    /// Fetch-pool lifecycle (worker start/terminal events, submissions).
    Fetch,
    /// Shared page cache activity.
    Cache,
    /// Resilience wrappers: retries, breaker transitions.
    Resilience,
    /// Materialized-view maintenance (URL checks, refreshes).
    Maintenance,
    /// Constraint auditing: sampled checks, violations, quarantine.
    Constraint,
    /// Serving-layer request lifecycle: admission, plan-cache lookups,
    /// view answers, request root spans.
    Serve,
    /// Dataflow view maintenance: sync batches, delta propagation,
    /// targeted upqueries.
    Dataflow,
    /// Anything else (session-level markers, notes).
    Info,
}

impl EventKind {
    /// Stable lowercase name used in the JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Operator => "operator",
            EventKind::Optimizer => "optimizer",
            EventKind::Fetch => "fetch",
            EventKind::Cache => "cache",
            EventKind::Resilience => "resilience",
            EventKind::Maintenance => "maintenance",
            EventKind::Constraint => "constraint",
            EventKind::Serve => "serve",
            EventKind::Dataflow => "dataflow",
            EventKind::Info => "info",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl FieldValue {
    fn render_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            FieldValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// A completed (or instantaneous) trace record in the ring buffer.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Deterministic id drawn from the sink's seeded id stream.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Event category.
    pub kind: EventKind,
    /// Human-readable operator / rule / action label.
    pub name: String,
    /// Sequence number assigned when the span was opened (pre-order).
    pub start: u64,
    /// Sequence number assigned when the span was closed; equals
    /// `start` for instantaneous events.
    pub end: u64,
    /// Attached fields, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Looks up a numeric field, accepting `U64` or `I64` values.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.field(name)? {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Looks up a string field.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        match self.field(name)? {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the event as one JSON object (one line of the export).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"parent\":");
        match self.parent {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":\"");
        out.push_str(&escape(&self.name));
        out.push_str("\",\"start\":");
        out.push_str(&self.start.to_string());
        out.push_str(",\"end\":");
        out.push_str(&self.end.to_string());
        out.push_str(",\"fields\":{");
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape(name));
            out.push_str("\":");
            value.render_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// An open span: created by [`TraceSink::begin`], closed (and recorded)
/// by [`TraceSink::finish`]. Fields may be attached at any point in
/// between.
#[derive(Debug)]
pub struct Span {
    id: u64,
    parent: Option<u64>,
    kind: EventKind,
    name: String,
    start: u64,
    fields: Vec<(String, FieldValue)>,
}

impl Span {
    /// The span's deterministic id — pass as `parent` to child spans.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a field (kept in insertion order).
    pub fn set(&mut self, name: &str, value: impl Into<FieldValue>) {
        self.fields.push((name.to_string(), value.into()));
    }
}

#[derive(Debug)]
struct State {
    /// splitmix64 state for the id stream.
    ids: u64,
    /// Monotonic sequence counter for start/end ordering.
    seq: u64,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    state: Mutex<State>,
}

/// Handle to a shared trace buffer. Cloning is cheap (an `Arc` clone);
/// all clones feed the same buffer.
#[derive(Debug, Clone)]
pub struct TraceSink {
    inner: Arc<Inner>,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// A sink with the default seed (0) and capacity.
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// A sink whose id stream is seeded with `seed`. Two sinks with the
    /// same seed assign identical ids to the same sequence of opens.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_seed_and_capacity(seed, DEFAULT_CAPACITY)
    }

    /// Full control over seed and ring-buffer capacity.
    pub fn with_seed_and_capacity(seed: u64, capacity: usize) -> Self {
        TraceSink {
            inner: Arc::new(Inner {
                capacity: capacity.max(1),
                state: Mutex::new(State {
                    ids: seed,
                    seq: 0,
                    events: VecDeque::new(),
                    dropped: 0,
                }),
            }),
        }
    }

    /// Opens a span: assigns its id and start sequence number now.
    pub fn begin(&self, kind: EventKind, name: impl Into<String>, parent: Option<u64>) -> Span {
        let (id, start) = {
            let mut st = self.inner.state.lock();
            (splitmix64(&mut st.ids), next_seq(&mut st.seq))
        };
        Span {
            id,
            parent,
            kind,
            name: name.into(),
            start,
            fields: Vec::new(),
        }
    }

    /// Closes a span and records it in the ring buffer.
    pub fn finish(&self, span: Span) {
        let mut st = self.inner.state.lock();
        let end = next_seq(&mut st.seq);
        let event = TraceEvent {
            id: span.id,
            parent: span.parent,
            kind: span.kind,
            name: span.name,
            start: span.start,
            end,
            fields: span.fields,
        };
        push(&mut st, self.inner.capacity, event);
    }

    /// Records an instantaneous event (`start == end`) and returns its id.
    pub fn event(
        &self,
        kind: EventKind,
        name: impl Into<String>,
        parent: Option<u64>,
        fields: Vec<(String, FieldValue)>,
    ) -> u64 {
        let mut st = self.inner.state.lock();
        let id = splitmix64(&mut st.ids);
        let seq = next_seq(&mut st.seq);
        let event = TraceEvent {
            id,
            parent,
            kind,
            name: name.into(),
            start: seq,
            end: seq,
            fields,
        };
        push(&mut st, self.inner.capacity, event);
        id
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.state.lock().events.iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.state.lock().events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.state.lock().dropped
    }

    /// Clears the buffer (the id/sequence streams keep advancing).
    pub fn clear(&self) {
        let mut st = self.inner.state.lock();
        st.events.clear();
        st.dropped = 0;
    }

    /// Exports the buffer as JSON lines, one event per line, oldest
    /// first.
    pub fn export_jsonl(&self) -> String {
        let st = self.inner.state.lock();
        let mut out = String::new();
        for e in &st.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

fn next_seq(seq: &mut u64) -> u64 {
    let s = *seq;
    *seq += 1;
    s
}

fn push(st: &mut State, capacity: usize, event: TraceEvent) {
    if st.events.len() >= capacity {
        st.events.pop_front();
        st.dropped += 1;
    }
    st.events.push_back(event);
}

/// splitmix64 step: a bijective mix over a counter-advanced state, so
/// the id stream is deterministic and collision-free for a given seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_per_seed() {
        let a = TraceSink::with_seed(42);
        let b = TraceSink::with_seed(42);
        let c = TraceSink::with_seed(43);
        let ids = |s: &TraceSink| -> Vec<u64> {
            (0..5)
                .map(|i| {
                    let sp = s.begin(EventKind::Info, format!("s{i}"), None);
                    let id = sp.id();
                    s.finish(sp);
                    id
                })
                .collect()
        };
        assert_eq!(ids(&a), ids(&b));
        assert_ne!(ids(&a), ids(&c));
    }

    #[test]
    fn span_ids_assigned_preorder_events_recorded_postorder() {
        let sink = TraceSink::new();
        let mut root = sink.begin(EventKind::Operator, "root", None);
        let child = sink.begin(EventKind::Operator, "child", Some(root.id()));
        let child_id = child.id();
        sink.finish(child);
        root.set("rows_out", 3u64);
        sink.finish(root);

        let events = sink.events();
        assert_eq!(events.len(), 2);
        // Post-order in the buffer: child first.
        assert_eq!(events[0].name, "child");
        assert_eq!(events[1].name, "root");
        // Pre-order recoverable from start sequence numbers.
        assert!(events[1].start < events[0].start);
        assert_eq!(events[0].parent, Some(events[1].id));
        assert_eq!(events[0].id, child_id);
        assert_eq!(events[1].field_u64("rows_out"), Some(3));
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let sink = TraceSink::with_seed_and_capacity(0, 3);
        for i in 0..5u64 {
            sink.event(EventKind::Info, format!("e{i}"), None, vec![]);
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let names: Vec<_> = sink.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn jsonl_export_escapes_and_shapes() {
        let sink = TraceSink::new();
        sink.event(
            EventKind::Cache,
            "say \"hi\"",
            None,
            vec![
                ("n".to_string(), FieldValue::U64(7)),
                ("ok".to_string(), FieldValue::Bool(true)),
                ("what".to_string(), FieldValue::Str("a\nb".to_string())),
            ],
        );
        let line = sink.export_jsonl();
        assert!(line.contains("\"kind\":\"cache\""));
        assert!(line.contains("say \\\"hi\\\""));
        assert!(line.contains("\"n\":7"));
        assert!(line.contains("\"ok\":true"));
        assert!(line.contains("\"what\":\"a\\nb\""));
        assert!(line.ends_with('\n'));
    }

    #[test]
    fn every_kind_renders_a_distinct_stable_name() {
        let kinds = [
            EventKind::Operator,
            EventKind::Optimizer,
            EventKind::Fetch,
            EventKind::Cache,
            EventKind::Resilience,
            EventKind::Maintenance,
            EventKind::Constraint,
            EventKind::Serve,
            EventKind::Dataflow,
            EventKind::Info,
        ];
        let names: Vec<_> = kinds.iter().map(|k| k.as_str()).collect();
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), kinds.len(), "kind names must be distinct");
        assert_eq!(EventKind::Serve.as_str(), "serve");
        assert_eq!(EventKind::Dataflow.as_str(), "dataflow");
        for k in kinds {
            assert_eq!(format!("{k}"), k.as_str());
        }
    }

    #[test]
    fn clone_feeds_same_buffer() {
        let sink = TraceSink::new();
        let clone = sink.clone();
        clone.event(EventKind::Fetch, "from-clone", None, vec![]);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].name, "from-clone");
    }
}
