//! Flight recorder: a bounded ring of recent request traces that
//! snapshots a full causal dump when something goes wrong.
//!
//! Counters tell you *how many* requests were shed or fell back;
//! the flight recorder tells you *why this one*. The serving layer
//! [`record`](FlightRecorder::record)s every completed request's
//! [`RequestTrace`] into a ring of the last N requests, and fires
//! [`trigger`](FlightRecorder::trigger) when a request was shed by
//! admission control, fell back after a constraint violation, missed a
//! degraded view, or blew the latency SLO. A trigger freezes the whole
//! ring into a [`FlightDump`] — the causal context *around* the bad
//! request, not just the bad request itself — exportable as JSON lines
//! for `harness trace`.
//!
//! Wall-clock latencies live only in the flight/ops export
//! ([`RequestTrace::to_json`]); the deterministic causal export
//! ([`RequestTrace::causal_jsonl`]) carries none, so same-seed causal
//! exports stay byte-identical, which the workspace determinism tests
//! pin.

use crate::trace::{escape, TraceEvent};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Why a flight dump was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerKind {
    /// Admission control shed the request.
    Shed,
    /// The constraint audit fired and the request fell back.
    ConstraintFallback,
    /// A registered view was degraded and the request went to live
    /// evaluation.
    ViewDegraded,
    /// The request's latency exceeded the SLO threshold.
    SloBreach,
    /// The request's deadline budget ran out mid-evaluation and it
    /// browned out to a partial answer.
    BudgetExhausted,
}

impl TriggerKind {
    /// Stable lowercase name used in the JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            TriggerKind::Shed => "shed",
            TriggerKind::ConstraintFallback => "constraint_fallback",
            TriggerKind::ViewDegraded => "view_degraded",
            TriggerKind::SloBreach => "slo_breach",
            TriggerKind::BudgetExhausted => "budget_exhausted",
        }
    }

    const ALL: [TriggerKind; 5] = [
        TriggerKind::Shed,
        TriggerKind::ConstraintFallback,
        TriggerKind::ViewDegraded,
        TriggerKind::SloBreach,
        TriggerKind::BudgetExhausted,
    ];
}

impl fmt::Display for TriggerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Wall-clock time a request spent in each serving phase, microseconds.
/// `queue` is admission/scheduling delay (the load generator fills it
/// in for open-loop runs), the rest are measured inside
/// `QueryServer::serve`. `fetch` is summed across fetch calls, so with
/// a worker pool it can exceed the wall-clock `eval` it is nested in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    pub queue_us: u64,
    pub plan_us: u64,
    pub fetch_us: u64,
    pub eval_us: u64,
    pub view_us: u64,
}

impl PhaseBreakdown {
    /// Renders as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queue_us\": {}, \"plan_us\": {}, \"fetch_us\": {}, \"eval_us\": {}, \"view_us\": {}}}",
            self.queue_us, self.plan_us, self.fetch_us, self.eval_us, self.view_us
        )
    }
}

/// Everything recorded about one served request: identity, outcome
/// flags, wall-clock phases, and the causal event trees.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Seeded-deterministic request id (stable per query + occurrence).
    pub request_id: u64,
    /// The query's cache key.
    pub query: String,
    /// End-to-end latency, microseconds (wall clock — ops only).
    pub latency_us: u64,
    pub shed: bool,
    pub cached_plan: bool,
    pub from_view: bool,
    pub fell_back: bool,
    pub phases: PhaseBreakdown,
    /// Deterministic causal events (root span, planner, operators).
    pub events: Vec<TraceEvent>,
    /// Scheduling-dependent fetch attribution events (coalescing
    /// leader/follower links) — kept apart so determinism pins can
    /// ignore them without losing them.
    pub fetch_events: Vec<TraceEvent>,
}

impl RequestTrace {
    /// Deterministic export: a header line naming the request, then one
    /// JSON line per causal event. Same seed → byte-identical.
    pub fn causal_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"request\": {}, \"query\": \"{}\", \"shed\": {}, \"cached_plan\": {}, \
             \"from_view\": {}, \"fell_back\": {}}}\n",
            self.request_id,
            escape(&self.query),
            self.shed,
            self.cached_plan,
            self.from_view,
            self.fell_back,
        );
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Full operational export: one JSON object with latency, phases,
    /// and both event streams inline.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"request_id\": {}, \"query\": \"{}\", \"latency_us\": {}, \"shed\": {}, \
             \"cached_plan\": {}, \"from_view\": {}, \"fell_back\": {}, \"phases\": {}, ",
            self.request_id,
            escape(&self.query),
            self.latency_us,
            self.shed,
            self.cached_plan,
            self.from_view,
            self.fell_back,
            self.phases.to_json(),
        ));
        out.push_str("\"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("], \"fetch_events\": [");
        for (i, e) in self.fetch_events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// A frozen snapshot of the ring, taken when a trigger fired.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Dump ordinal (0-based, in trigger order).
    pub seq: u64,
    pub trigger: TriggerKind,
    /// The request that tripped the trigger.
    pub request_id: u64,
    /// The ring contents at trigger time, oldest first.
    pub traces: Vec<RequestTrace>,
}

impl FlightDump {
    /// JSON-lines export: a dump header, then one full request line per
    /// ring entry.
    pub fn export_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"flight_dump\": {}, \"trigger\": \"{}\", \"request_id\": {}, \"requests\": {}}}\n",
            self.seq,
            self.trigger.as_str(),
            self.request_id,
            self.traces.len()
        );
        for t in &self.traces {
            out.push_str(&t.to_json());
            out.push('\n');
        }
        out
    }
}

#[derive(Debug)]
struct RecorderState {
    ring: VecDeque<RequestTrace>,
    dumps: Vec<FlightDump>,
    fired: [u64; TriggerKind::ALL.len()],
    next_dump: u64,
}

/// Bounded ring of recent request traces plus the trigger machinery.
/// Cheap to clone; all clones share one ring.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    max_dumps: usize,
    state: Arc<Mutex<RecorderState>>,
}

/// Default ring capacity (requests).
pub const DEFAULT_RING: usize = 256;
/// Default cap on retained dumps: triggers past it still count but
/// stop snapshotting, so a storm cannot hoard memory.
pub const DEFAULT_MAX_DUMPS: usize = 8;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING, DEFAULT_MAX_DUMPS)
    }

    /// Explicit ring capacity and retained-dump cap.
    pub fn with_capacity(capacity: usize, max_dumps: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            max_dumps,
            state: Arc::new(Mutex::new(RecorderState {
                ring: VecDeque::new(),
                dumps: Vec::new(),
                fired: [0; TriggerKind::ALL.len()],
                next_dump: 0,
            })),
        }
    }

    /// Records one completed request into the ring.
    pub fn record(&self, trace: RequestTrace) {
        let mut st = self.state.lock();
        if st.ring.len() == self.capacity {
            st.ring.pop_front();
        }
        st.ring.push_back(trace);
    }

    /// Fires a trigger: counts it and, while under the dump cap,
    /// freezes the current ring into a new dump. Returns true when a
    /// dump was actually taken.
    pub fn trigger(&self, kind: TriggerKind, request_id: u64) -> bool {
        let mut st = self.state.lock();
        let slot = TriggerKind::ALL.iter().position(|k| *k == kind).unwrap();
        st.fired[slot] += 1;
        if st.dumps.len() >= self.max_dumps {
            return false;
        }
        let dump = FlightDump {
            seq: st.next_dump,
            trigger: kind,
            request_id,
            traces: st.ring.iter().cloned().collect(),
        };
        st.next_dump += 1;
        st.dumps.push(dump);
        true
    }

    /// Ring contents, oldest first (completion order).
    pub fn recent(&self) -> Vec<RequestTrace> {
        self.state.lock().ring.iter().cloned().collect()
    }

    /// All retained dumps, in trigger order.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.state.lock().dumps.clone()
    }

    /// Number of retained dumps.
    pub fn dump_count(&self) -> usize {
        self.state.lock().dumps.len()
    }

    /// `(trigger, times fired)` for every trigger kind, including fires
    /// past the dump cap.
    pub fn fired(&self) -> Vec<(TriggerKind, u64)> {
        let st = self.state.lock();
        TriggerKind::ALL
            .iter()
            .map(|k| {
                let slot = TriggerKind::ALL.iter().position(|x| x == k).unwrap();
                (*k, st.fired[slot])
            })
            .collect()
    }

    /// Exports the ring as one full request line each, sorted by
    /// request id so the order is canonical regardless of which thread
    /// finished first.
    pub fn export_recent_jsonl(&self) -> String {
        let mut traces = self.recent();
        traces.sort_by_key(|t| (t.request_id, t.latency_us));
        let mut out = String::new();
        for t in &traces {
            out.push_str(&t.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventKind, TraceSink};

    fn trace(id: u64) -> RequestTrace {
        let sink = TraceSink::with_seed(id);
        sink.event(EventKind::Serve, "serve.request", None, vec![]);
        RequestTrace {
            request_id: id,
            query: format!("q{id}"),
            latency_us: id * 10,
            shed: false,
            cached_plan: id > 0,
            from_view: false,
            fell_back: false,
            phases: PhaseBreakdown::default(),
            events: sink.events(),
            fetch_events: vec![],
        }
    }

    #[test]
    fn ring_is_bounded_and_dump_freezes_it() {
        let rec = FlightRecorder::with_capacity(3, 8);
        for i in 0..5 {
            rec.record(trace(i));
        }
        assert_eq!(rec.recent().len(), 3);
        assert!(rec.trigger(TriggerKind::Shed, 4));
        rec.record(trace(9));
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].traces.len(), 3, "dump is frozen at trigger time");
        assert_eq!(dumps[0].trigger, TriggerKind::Shed);
        let ids: Vec<_> = dumps[0].traces.iter().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn dump_cap_stops_snapshots_but_keeps_counting() {
        let rec = FlightRecorder::with_capacity(4, 2);
        rec.record(trace(1));
        assert!(rec.trigger(TriggerKind::SloBreach, 1));
        assert!(rec.trigger(TriggerKind::SloBreach, 1));
        assert!(!rec.trigger(TriggerKind::SloBreach, 1));
        assert_eq!(rec.dump_count(), 2);
        let fired = rec.fired();
        let slo = fired
            .iter()
            .find(|(k, _)| *k == TriggerKind::SloBreach)
            .unwrap();
        assert_eq!(slo.1, 3);
    }

    #[test]
    fn exports_are_parseable_shapes() {
        let rec = FlightRecorder::new();
        rec.record(trace(7));
        rec.trigger(TriggerKind::ConstraintFallback, 7);
        let dump = &rec.dumps()[0];
        let jsonl = dump.export_jsonl();
        let mut lines = jsonl.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"flight_dump\": 0"));
        assert!(header.contains("\"trigger\": \"constraint_fallback\""));
        let req = lines.next().unwrap();
        assert!(req.contains("\"request_id\": 7"));
        assert!(req.contains("\"events\": ["));
        assert!(req.contains("\"phases\": {\"queue_us\": 0"));
        assert!(req.contains("serve.request"));
    }

    #[test]
    fn causal_export_is_latency_free_and_deterministic() {
        let a = trace(3);
        let mut b = trace(3);
        b.latency_us = 999_999; // wall clock differs run to run
        b.phases.eval_us = 123;
        assert_eq!(a.causal_jsonl(), b.causal_jsonl());
        assert!(!a.causal_jsonl().contains("latency"));
        assert_ne!(a.to_json(), b.to_json(), "ops export does carry it");
    }

    #[test]
    fn recent_export_sorts_by_request_id() {
        let rec = FlightRecorder::new();
        rec.record(trace(9));
        rec.record(trace(2));
        let out = rec.export_recent_jsonl();
        let first = out.lines().next().unwrap();
        assert!(first.contains("\"request_id\": 2"));
    }
}
