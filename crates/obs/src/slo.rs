//! Latency objectives and multi-window burn-rate accounting.
//!
//! An SLO here is "fraction `target` of requests complete within
//! `threshold_us`". The unspent fraction `1 - target` is the **error
//! budget**; the *burn rate* over a window is the observed breach
//! fraction divided by the budget — 1.0 means the budget is being spent
//! exactly as fast as it accrues, 14.4 is the classic "page somebody"
//! threshold. Because everything else in this workspace is
//! seed-deterministic, windows are **request-count** windows (the last
//! N requests), not wall-clock windows: the same request sequence
//! always yields the same burn rates, so tests can pin them.
//!
//! Latencies feed a [`FixedHistogram`], so the quantiles a tracker
//! reports are within ~3.1% of the true order statistics — tight enough
//! to compare against the objective threshold meaningfully.

use crate::hist::FixedHistogram;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A latency service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyObjective {
    /// Label for rendered output (e.g. `"serve"`).
    pub name: String,
    /// Per-request latency threshold, microseconds.
    pub threshold_us: u64,
    /// Fraction of requests that must land under the threshold
    /// (e.g. `0.999`). Clamped to `[0, 1)` — a target of 1.0 has no
    /// error budget and would make every burn rate infinite.
    pub target: f64,
}

impl LatencyObjective {
    pub fn new(name: impl Into<String>, threshold_us: u64, target: f64) -> Self {
        LatencyObjective {
            name: name.into(),
            threshold_us,
            target: target.clamp(0.0, 0.999_999),
        }
    }

    /// The error budget: the tolerated breach fraction.
    pub fn budget(&self) -> f64 {
        1.0 - self.target
    }
}

/// One request-count burn window: breach count over the last `size`
/// recorded requests.
#[derive(Debug)]
struct BurnWindow {
    size: usize,
    ring: VecDeque<bool>,
    breaches: usize,
}

impl BurnWindow {
    fn new(size: usize) -> Self {
        BurnWindow {
            size: size.max(1),
            ring: VecDeque::new(),
            breaches: 0,
        }
    }

    fn record(&mut self, breach: bool) {
        if self.ring.len() == self.size && self.ring.pop_front() == Some(true) {
            self.breaches -= 1;
        }
        self.ring.push_back(breach);
        if breach {
            self.breaches += 1;
        }
    }

    /// Breach fraction over the window's current contents (0.0 empty).
    fn breach_fraction(&self) -> f64 {
        if self.ring.is_empty() {
            0.0
        } else {
            self.breaches as f64 / self.ring.len() as f64
        }
    }
}

/// Point-in-time view of a tracker, safe to render or assert on.
#[derive(Debug, Clone)]
pub struct SloSnapshot {
    pub objective: LatencyObjective,
    /// Requests recorded.
    pub total: u64,
    /// Requests over the threshold.
    pub breaches: u64,
    /// Lifetime fraction under the threshold (1.0 when empty).
    pub compliance: f64,
    /// `(window size, burn rate)` per configured window, short first.
    pub burn: Vec<(usize, f64)>,
    /// Latency quantiles from the fixed-precision histogram, µs.
    pub p50_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
    pub max_us: u64,
}

impl SloSnapshot {
    /// True when any window is burning budget faster than it accrues.
    pub fn burning(&self) -> bool {
        self.burn.iter().any(|(_, r)| *r > 1.0)
    }

    /// Renders the snapshot as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str(&format!(
            "{{\"objective\": \"{}\", \"threshold_us\": {}, \"target\": {}, \
             \"total\": {}, \"breaches\": {}, \"compliance\": {:.6}, ",
            self.objective.name,
            self.objective.threshold_us,
            self.objective.target,
            self.total,
            self.breaches,
            self.compliance,
        ));
        out.push_str("\"burn\": {");
        for (i, (size, rate)) in self.burn.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"last_{size}\": {rate:.4}"));
        }
        out.push_str(&format!(
            "}}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}}",
            self.p50_us, self.p99_us, self.p999_us, self.max_us
        ));
        out
    }
}

#[derive(Debug)]
struct TrackerState {
    windows: Vec<BurnWindow>,
    total: u64,
    breaches: u64,
}

/// Tracks one latency objective: a fixed-precision latency histogram
/// plus multi-window burn-rate accounting. Cheap to clone; all clones
/// feed the same state.
#[derive(Debug, Clone)]
pub struct SloTracker {
    objective: LatencyObjective,
    hist: FixedHistogram,
    state: Arc<Mutex<TrackerState>>,
}

/// Default burn windows: a short window that reacts fast and a long
/// window that filters blips — the standard multi-window pairing.
pub const DEFAULT_WINDOWS: [usize; 2] = [50, 500];

impl SloTracker {
    /// A tracker with the default short/long windows.
    pub fn new(objective: LatencyObjective) -> Self {
        Self::with_windows(objective, &DEFAULT_WINDOWS)
    }

    /// A tracker with explicit request-count windows (short first).
    pub fn with_windows(objective: LatencyObjective, windows: &[usize]) -> Self {
        SloTracker {
            objective,
            hist: FixedHistogram::new(),
            state: Arc::new(Mutex::new(TrackerState {
                windows: windows.iter().map(|w| BurnWindow::new(*w)).collect(),
                total: 0,
                breaches: 0,
            })),
        }
    }

    pub fn objective(&self) -> &LatencyObjective {
        &self.objective
    }

    /// True when `latency_us` misses the objective.
    pub fn breached(&self, latency_us: u64) -> bool {
        latency_us > self.objective.threshold_us
    }

    /// Records one request latency; returns whether it breached.
    pub fn record(&self, latency_us: u64) -> bool {
        let breach = self.breached(latency_us);
        self.hist.observe(latency_us);
        let mut st = self.state.lock();
        st.total += 1;
        if breach {
            st.breaches += 1;
        }
        for w in &mut st.windows {
            w.record(breach);
        }
        breach
    }

    /// The underlying latency histogram (shared handle).
    pub fn histogram(&self) -> &FixedHistogram {
        &self.hist
    }

    /// Takes a consistent point-in-time snapshot.
    pub fn snapshot(&self) -> SloSnapshot {
        let st = self.state.lock();
        let budget = self.objective.budget().max(f64::EPSILON);
        SloSnapshot {
            objective: self.objective.clone(),
            total: st.total,
            breaches: st.breaches,
            compliance: if st.total == 0 {
                1.0
            } else {
                1.0 - st.breaches as f64 / st.total as f64
            },
            burn: st
                .windows
                .iter()
                .map(|w| (w.size, w.breach_fraction() / budget))
                .collect(),
            p50_us: self.hist.value_at_quantile(0.50),
            p99_us: self.hist.value_at_quantile(0.99),
            p999_us: self.hist.value_at_quantile(0.999),
            max_us: self.hist.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(threshold_us: u64, target: f64) -> SloTracker {
        SloTracker::with_windows(
            LatencyObjective::new("test", threshold_us, target),
            &[4, 10],
        )
    }

    #[test]
    fn burn_rate_is_breach_fraction_over_budget() {
        let t = tracker(100, 0.9); // budget = 0.1
        for _ in 0..9 {
            assert!(!t.record(50));
        }
        assert!(t.record(500)); // 1 breach in 10
        let s = t.snapshot();
        assert_eq!((s.total, s.breaches), (10, 1));
        // short window (last 4): 1/4 breach over 0.1 budget = 2.5
        assert!((s.burn[0].1 - 2.5).abs() < 1e-9);
        // long window (last 10): 1/10 over 0.1 = 1.0
        assert!((s.burn[1].1 - 1.0).abs() < 1e-9);
        assert!(s.burning());
        assert!((s.compliance - 0.9).abs() < 1e-9);
    }

    #[test]
    fn windows_slide_and_recover() {
        let t = tracker(100, 0.9);
        t.record(500);
        for _ in 0..10 {
            t.record(10);
        }
        let s = t.snapshot();
        // The breach has slid out of both windows.
        assert_eq!(s.burn[0].1, 0.0);
        assert_eq!(s.burn[1].1, 0.0);
        assert!(!s.burning());
        assert_eq!(s.breaches, 1, "lifetime counters keep the history");
    }

    #[test]
    fn empty_tracker_is_compliant() {
        let s = tracker(100, 0.999).snapshot();
        assert_eq!(s.total, 0);
        assert_eq!(s.compliance, 1.0);
        assert!(!s.burning());
    }

    #[test]
    fn snapshot_renders_json() {
        let t = tracker(100, 0.99);
        t.record(42);
        t.record(4242);
        let json = t.snapshot().to_json();
        assert!(json.contains("\"objective\": \"test\""));
        assert!(json.contains("\"threshold_us\": 100"));
        assert!(json.contains("\"breaches\": 1"));
        assert!(json.contains("\"last_4\":"));
        assert!(json.contains("\"p99_us\":"));
    }

    #[test]
    fn quantiles_come_from_the_fixed_histogram() {
        let t = tracker(1_000_000, 0.999);
        for v in 1..=1000u64 {
            t.record(v);
        }
        let s = t.snapshot();
        assert!(s.p50_us >= 500 && s.p50_us <= 516, "p50 {}", s.p50_us);
        assert!(s.p99_us >= 990 && s.p99_us <= 1000, "p99 {}", s.p99_us);
        assert_eq!(s.max_us, 1000);
    }
}
