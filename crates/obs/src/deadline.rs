//! Per-request deadline budgets and cooperative cancellation.
//!
//! A [`Deadline`] is a `Copy` wall-clock expiry threaded from the
//! serving layer through planning, evaluation, and the fetch pool; each
//! blocking point checks [`Deadline::expired`] (or bounds its wait by
//! [`Deadline::remaining`]) and fails over to partial-result degradation
//! instead of blocking past the SLO. The default is [`Deadline::infinite`],
//! which makes every check free-ish and never fires — results with no
//! deadline configured are byte-identical to a build without this module.
//!
//! A [`CancelToken`] is the complementary *selective* signal: the
//! evaluator's relevance monitor marks individual URLs whose fetches can
//! no longer contribute an answer tuple, and pool workers / coalescing
//! followers check the token cooperatively before dispatching or while
//! waiting. URL keys are plain strings so this crate needs no dependency
//! on the relation layer.

use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wall-clock budget for one request. `Copy`, two words; the infinite
/// deadline never expires and is the `Default`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline {
    expires: Option<Instant>,
}

impl Deadline {
    /// A deadline that never fires.
    pub fn infinite() -> Self {
        Self { expires: None }
    }

    /// A deadline `us` microseconds from now.
    pub fn after_us(us: u64) -> Self {
        Self {
            expires: Some(Instant::now() + Duration::from_micros(us)),
        }
    }

    /// A deadline at an explicit instant.
    pub fn at(instant: Instant) -> Self {
        Self {
            expires: Some(instant),
        }
    }

    /// Whether this deadline can ever fire.
    pub fn is_finite(&self) -> bool {
        self.expires.is_some()
    }

    /// Remaining budget; `None` for an infinite deadline, zero when
    /// already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.expires
            .map(|e| e.saturating_duration_since(Instant::now()))
    }

    /// Whether the budget is gone.
    pub fn expired(&self) -> bool {
        match self.expires {
            None => false,
            Some(e) => Instant::now() >= e,
        }
    }
}

#[derive(Debug, Default)]
struct TokenInner {
    /// Whole-request cancellation (shutdown, budget exhaustion).
    all: AtomicBool,
    /// Individually cancelled URLs (relevance monitor).
    urls: Mutex<HashSet<String>>,
}

/// Cooperative cancellation shared between the evaluator and the fetch
/// layer. Cheap to clone; all clones observe the same state.
///
/// Cancellation is advisory: a worker that already dispatched a GET
/// finishes it (both accesses are then counted), one that has not yet
/// dispatched skips the server entirely. Individual URLs can be
/// *un*-cancelled — the relevance monitor does this when a URL judged
/// irrelevant for one navigation turns out to be needed by a later one.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancels everything sharing this token.
    pub fn cancel_all(&self) {
        self.inner.all.store(true, Ordering::SeqCst);
    }

    /// Whether whole-request cancellation fired.
    pub fn is_cancelled(&self) -> bool {
        self.inner.all.load(Ordering::SeqCst)
    }

    /// Marks one URL as not worth fetching.
    pub fn cancel_url(&self, url: &str) {
        self.inner.urls.lock().insert(url.to_string());
    }

    /// Clears a per-URL cancellation (the URL became relevant again).
    pub fn uncancel_url(&self, url: &str) {
        self.inner.urls.lock().remove(url);
    }

    /// Whether fetching `url` should be skipped — either the whole
    /// request is cancelled or this URL specifically is.
    pub fn is_url_cancelled(&self, url: &str) -> bool {
        self.is_cancelled() || self.inner.urls.lock().contains(url)
    }

    /// Number of individually cancelled URLs.
    pub fn cancelled_url_count(&self) -> usize {
        self.inner.urls.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_deadline_never_expires() {
        let d = Deadline::infinite();
        assert!(!d.is_finite());
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(!Deadline::default().is_finite());
    }

    #[test]
    fn finite_deadline_counts_down_and_expires() {
        let d = Deadline::after_us(1_000_000);
        assert!(d.is_finite());
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_millis(500));

        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.remaining().unwrap(), Duration::ZERO);
    }

    #[test]
    fn deadline_is_copy() {
        let d = Deadline::after_us(10);
        let d2 = d; // Copy, not move
        assert_eq!(d.is_finite(), d2.is_finite());
    }

    #[test]
    fn token_clones_share_state() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_url_cancelled("http://a"));
        t2.cancel_url("http://a");
        assert!(t.is_url_cancelled("http://a"));
        assert!(!t.is_url_cancelled("http://b"));
        assert_eq!(t.cancelled_url_count(), 1);

        t.uncancel_url("http://a");
        assert!(!t2.is_url_cancelled("http://a"));
        assert_eq!(t2.cancelled_url_count(), 0);
    }

    #[test]
    fn cancel_all_covers_every_url() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel_all();
        assert!(t.is_cancelled());
        assert!(t.is_url_cancelled("http://anything"));
        // Per-URL uncancel cannot undo whole-request cancellation.
        t.uncancel_url("http://anything");
        assert!(t.is_url_cancelled("http://anything"));
    }
}
