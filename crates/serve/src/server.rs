//! The long-lived query server: admission → plan cache → session.
//!
//! A [`QueryServer`] owns what is shared between concurrent sessions over
//! one site — the plan cache, the admission gate, the statistics epoch,
//! and optional shared page cache / constraint health — and builds a
//! cheap borrowed [`QuerySession`] per request. `serve` is `&self` and
//! thread-safe: N serving threads call it concurrently over one server.
//!
//! Per request:
//! 1. **admission** — beyond the concurrency limit the request is shed
//!    immediately: an empty, explicitly incomplete answer in the spirit
//!    of [`nalg::DegradationMode::Partial`], never an error or a queue;
//! 2. **health tick** — one logical tick per served request (exactly like
//!    [`QuerySession::run`]), so quarantine TTLs age identically whether
//!    plans come from the cache or the optimizer;
//! 3. **plan cache** — lookup under the current
//!    `(normalized query, statistics epoch, quarantine fingerprint)`;
//!    a hit skips rule 1–9 enumeration via
//!    [`QuerySession::run_planned`], a miss optimizes and fills the
//!    cache;
//! 4. **audit settlement** — when runtime auditing catches a violated
//!    plan assumption, the drift fallback answers (as in `run`) and the
//!    poisoned plan is dropped from the cache.

use crate::cache::{quarantine_fingerprint, PlanCache, PlanCacheStats};
use adm::{Relation, WebScheme};
use dataflow::IncrementalView;
use nalg::{DegradationMode, PageSource, SharedPageCache};
use obs::{Counter, MetricsRegistry};
use parking_lot::RwLock;
use resilience::{AdmissionControl, AdmissionStats, ConstraintHealth};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wvcore::{ConjunctiveQuery, QueryOutcome, QuerySession, Result, SiteStatistics, ViewCatalog};

/// What the server answered for one request.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The executed query's outcome; `None` when the request was shed at
    /// admission (an empty partial answer: no rows, not complete).
    pub outcome: Option<QueryOutcome>,
    /// True when the plan came from the cache (rule 1–9 enumeration was
    /// skipped).
    pub cached_plan: bool,
    /// True when admission control shed this request.
    pub shed: bool,
    /// The answer read from an incrementally maintained view — no
    /// navigation, no optimizer, zero page accesses. `Some` exactly when
    /// the request was answered by [`QueryServer::with_views`] state;
    /// `outcome` is `None` in that case.
    pub view_answer: Option<Relation>,
}

impl ServeOutcome {
    /// True when the answer covers the whole query — i.e. the request was
    /// not shed (a shed answer is an empty `Partial`-style result).
    pub fn is_complete(&self) -> bool {
        !self.shed
    }

    /// True when a maintained view answered (no live navigation ran).
    pub fn from_view(&self) -> bool {
        self.view_answer.is_some()
    }

    /// The answer relation, wherever it came from: the maintained view or
    /// the executed session. `None` only for shed requests.
    pub fn relation(&self) -> Option<&Relation> {
        self.view_answer
            .as_ref()
            .or_else(|| self.outcome.as_ref().map(|o| &o.report.relation))
    }
}

/// A multi-tenant serving layer over one site. `S` must be `Sync` — the
/// whole point is concurrent sessions sharing one source (typically a
/// [`nalg::CoalescingSource`] stacked on the live/resilient source).
pub struct QueryServer<'a, S: PageSource + Sync> {
    ws: &'a WebScheme,
    catalog: &'a ViewCatalog,
    stats: RwLock<&'a SiteStatistics>,
    source: &'a S,
    stats_epoch: AtomicU64,
    plan_cache: PlanCache,
    admission: AdmissionControl,
    health: Option<&'a ConstraintHealth>,
    shared_cache: Option<&'a SharedPageCache>,
    degradation: DegradationMode,
    audit: Option<(f64, u64)>,
    fetch_workers: Option<usize>,
    views: Option<&'a RwLock<IncrementalView<'a>>>,
    registry: MetricsRegistry,
    requests: Counter,
    shed: Counter,
    view_hits: Counter,
    view_fallbacks: Counter,
}

impl<'a, S: PageSource + Sync> QueryServer<'a, S> {
    /// A server with default policy: 64 cached plans, 8 concurrent
    /// sessions, fail-fast degradation, no audit, sequential fetches.
    pub fn new(
        ws: &'a WebScheme,
        catalog: &'a ViewCatalog,
        stats: &'a SiteStatistics,
        source: &'a S,
    ) -> Self {
        let registry = MetricsRegistry::with_prefix("serve");
        QueryServer {
            ws,
            catalog,
            stats: RwLock::new(stats),
            source,
            stats_epoch: AtomicU64::new(0),
            plan_cache: PlanCache::with_registry(64, &registry),
            admission: AdmissionControl::new(8),
            health: None,
            shared_cache: None,
            degradation: DegradationMode::FailFast,
            audit: None,
            fetch_workers: None,
            views: None,
            requests: registry.counter("requests"),
            shed: registry.counter("shed"),
            view_hits: registry.counter("views_answered"),
            view_fallbacks: registry.counter("views_fallback"),
            registry,
        }
    }

    /// Sets the plan-cache capacity (builder style).
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache = PlanCache::with_registry(capacity, &self.registry);
        self
    }

    /// Sets the admission limit: at most `capacity` concurrent sessions,
    /// the rest shed (builder style).
    pub fn with_admission_capacity(mut self, capacity: usize) -> Self {
        self.admission = AdmissionControl::new(capacity);
        self
    }

    /// Attaches a [`ConstraintHealth`] registry — quarantines invalidate
    /// cached plans and bar constraints from licensing new ones.
    pub fn with_constraint_health(mut self, health: &'a ConstraintHealth) -> Self {
        self.health = Some(health);
        self
    }

    /// Shares a cross-query page cache between every served session.
    pub fn with_shared_cache(mut self, cache: &'a SharedPageCache) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Sets the degradation mode of served sessions (see
    /// [`QuerySession::with_degradation`]).
    pub fn with_degradation(mut self, mode: DegradationMode) -> Self {
        self.degradation = mode;
        self
    }

    /// Enables runtime constraint auditing on served sessions (see
    /// [`QuerySession::with_audit`]).
    pub fn with_audit(mut self, rate: f64, seed: u64) -> Self {
        self.audit = (rate > 0.0).then_some((rate.min(1.0), seed));
        self
    }

    /// Served sessions evaluate with a pool of `workers` fetch threads.
    pub fn with_concurrent_fetch(mut self, workers: usize) -> Self {
        self.fetch_workers = Some(workers.max(1));
        self
    }

    /// Attaches incrementally maintained views (keyed by
    /// [`ConjunctiveQuery::cache_key`]): a request whose key has a live
    /// maintained answer is served from it directly — no optimizer, no
    /// navigation, zero page accesses. A degraded view (its maintenance
    /// hit a transient failure) falls back to ordinary live evaluation
    /// until a later sync rebuilds it.
    pub fn with_views(mut self, views: &'a RwLock<IncrementalView<'a>>) -> Self {
        self.views = Some(views);
        self
    }

    /// The `serve`-prefixed registry (requests, shed, plan-cache
    /// counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The plan cache (inspection/reporting).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The admission gate (inspection/reporting).
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// The current statistics epoch (starts at 0, bumped by
    /// [`QueryServer::recollect_statistics`]).
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch.load(Ordering::SeqCst)
    }

    /// Swaps in freshly collected statistics: bumps the epoch and
    /// explicitly invalidates every cached plan (their cost ranking was
    /// computed against the old statistics). Returns the new epoch.
    pub fn recollect_statistics(&self, stats: &'a SiteStatistics) -> u64 {
        let epoch = {
            let mut slot = self.stats.write();
            *slot = stats;
            self.stats_epoch.fetch_add(1, Ordering::SeqCst) + 1
        };
        self.plan_cache.sync(epoch, self.current_quarantine_fp().1);
        epoch
    }

    fn current_quarantine_fp(&self) -> (Vec<String>, u64) {
        let quarantined = self.health.map(|h| h.quarantined()).unwrap_or_default();
        let fp = quarantine_fingerprint(&quarantined);
        (quarantined, fp)
    }

    /// Builds the per-request session over the current statistics.
    fn session(&self) -> QuerySession<'a, S> {
        let stats: &'a SiteStatistics = *self.stats.read();
        let mut session = QuerySession::new(self.ws, self.catalog, stats, self.source)
            .with_degradation(self.degradation);
        if let Some(cache) = self.shared_cache {
            session = session.with_shared_cache(cache);
        }
        if let Some(h) = self.health {
            session = session.with_constraint_health(h);
        }
        if let Some((rate, seed)) = self.audit {
            session = session.with_audit(rate, seed);
        }
        if let Some(workers) = self.fetch_workers {
            session = session.with_concurrent_fetch(workers);
        }
        session
    }

    /// Serves one query (thread-safe). See the module docs for the
    /// admission → tick → plan-cache → settle pipeline.
    pub fn serve(&self, q: &ConjunctiveQuery) -> Result<ServeOutcome> {
        self.requests.inc();
        let Some(_permit) = self.admission.try_admit() else {
            self.shed.inc();
            return Ok(ServeOutcome {
                outcome: None,
                cached_plan: false,
                shed: true,
                view_answer: None,
            });
        };
        // Maintained views first: a registered, healthy view answers with
        // zero page accesses. A degraded one falls through to the full
        // optimize-and-navigate pipeline below.
        if let Some(views) = self.views {
            let guard = views.read();
            let key = q.cache_key();
            if guard.is_registered(&key) {
                match guard.answer(&key) {
                    Some(rel) => {
                        self.view_hits.inc();
                        return Ok(ServeOutcome {
                            outcome: None,
                            cached_plan: false,
                            shed: false,
                            view_answer: Some(rel),
                        });
                    }
                    None => self.view_fallbacks.inc(),
                }
            }
        }
        // One logical tick per served request, exactly like
        // `QuerySession::run`; re-admissions change the quarantine set,
        // which the sync below turns into explicit invalidation.
        if let Some(h) = self.health {
            h.tick();
        }
        let epoch = self.stats_epoch();
        let (quarantined, fp) = self.current_quarantine_fp();
        self.plan_cache.sync(epoch, fp);
        let key = crate::cache::PlanKey {
            query: q.cache_key(),
            stats_epoch: epoch,
            quarantine_fp: fp,
        };
        let session = self.session();
        let (explain, cached_plan) = match self.plan_cache.lookup(&key, &quarantined) {
            Some(plan) => ((*plan).clone(), true),
            None => (session.explain(q)?, false),
        };
        let outcome = session.run_planned(q, explain)?;
        if outcome.fell_back() {
            // The plan's own audit falsified it — never serve it again.
            self.plan_cache.remove(&key);
        } else if !cached_plan {
            self.plan_cache
                .insert(key, Arc::new(outcome.explain.clone()));
        }
        Ok(ServeOutcome {
            outcome: Some(outcome),
            cached_plan,
            shed: false,
            view_answer: None,
        })
    }

    /// A point-in-time copy of every serving counter.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.get(),
            shed: self.shed.get(),
            view_hits: self.view_hits.get(),
            view_fallbacks: self.view_fallbacks.get(),
            stats_epoch: self.stats_epoch(),
            plan_cache: self.plan_cache.stats(),
            admission: self.admission.snapshot(),
        }
    }
}

/// A point-in-time copy of a server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Requests received (served + shed).
    pub requests: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests answered directly from a maintained incremental view.
    pub view_hits: u64,
    /// Requests whose registered view was degraded, served live instead.
    pub view_fallbacks: u64,
    /// The statistics epoch at snapshot time.
    pub stats_epoch: u64,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
    /// Admission counters.
    pub admission: AdmissionStats,
}
