//! The long-lived query server: admission → plan cache → session.
//!
//! A [`QueryServer`] owns what is shared between concurrent sessions over
//! one site — the plan cache, the admission gate, the statistics epoch,
//! and optional shared page cache / constraint health — and builds a
//! cheap borrowed [`QuerySession`] per request. `serve` is `&self` and
//! thread-safe: N serving threads call it concurrently over one server.
//!
//! Per request:
//! 1. **admission** — beyond the concurrency limit the request is shed
//!    immediately: an empty, explicitly incomplete answer in the spirit
//!    of [`nalg::DegradationMode::Partial`], never an error or a queue;
//! 2. **health tick** — one logical tick per served request (exactly like
//!    [`QuerySession::run`]), so quarantine TTLs age identically whether
//!    plans come from the cache or the optimizer;
//! 3. **plan cache** — lookup under the current
//!    `(normalized query, statistics epoch, quarantine fingerprint)`;
//!    a hit skips rule 1–9 enumeration via
//!    [`QuerySession::run_planned`], a miss optimizes and fills the
//!    cache;
//! 4. **audit settlement** — when runtime auditing catches a violated
//!    plan assumption, the drift fallback answers (as in `run`) and the
//!    poisoned plan is dropped from the cache.

use crate::cache::{quarantine_fingerprint, PlanCache, PlanCacheStats};
use adm::{Relation, WebScheme};
use dataflow::IncrementalView;
use nalg::{DegradationMode, PageSource, SharedPageCache};
use obs::reqctx::{FetchClock, RequestCtx};
use obs::{
    Counter, EventKind, FlightRecorder, MetricsRegistry, PhaseBreakdown, RequestTrace, SloTracker,
    TraceSink, TriggerKind,
};
use parking_lot::{Mutex, RwLock};
use resilience::{AdmissionControl, AdmissionStats, ConstraintHealth};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use wvcore::{ConjunctiveQuery, QueryOutcome, QuerySession, Result, SiteStatistics, ViewCatalog};

/// Finalizer of the splitmix64 generator — a cheap, well-mixed 64-bit
/// permutation used to derive request ids.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed salt separating a request's attribution sink from its causal
/// sink (same request id, disjoint event-id streams).
const ATTR_SALT: u64 = 0x5eed_a77e_f17c_9b3d;

/// Per-server tracing state: the base seed and a per-query occurrence
/// counter, so the k-th serve of a given query gets the same request id
/// on every same-seed run — regardless of which thread serves it.
struct ServeTracing {
    base_seed: u64,
    per_query: Mutex<HashMap<String, u64>>,
}

impl ServeTracing {
    fn new(base_seed: u64) -> Self {
        ServeTracing {
            base_seed,
            per_query: Mutex::new(HashMap::new()),
        }
    }

    /// Deterministic request id for the next serve of `key`: a mix of
    /// the base seed, the query key's hash, and how many times this
    /// query has been served before.
    fn request_id(&self, key: &str) -> u64 {
        let occurrence = {
            let mut m = self.per_query.lock();
            let n = m.entry(key.to_string()).or_insert(0);
            let k = *n;
            *n += 1;
            k
        };
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the key bytes
        for b in key.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        mix64(self.base_seed ^ mix64(h) ^ mix64(occurrence))
    }
}

/// Everything one observed request carries through the pipeline: its
/// identity, sinks, fetch clock, and the phase timings measured so far.
struct RequestObs {
    rid: u64,
    /// Deterministic causal sink (root span, planner, operators).
    sink: TraceSink,
    /// Side sink for scheduling-dependent fetch attribution events.
    attr: TraceSink,
    /// The root `serve.request` span's id.
    root: u64,
    clock: FetchClock,
    /// Set when a registered view was degraded and the request fell
    /// through to live evaluation.
    view_fallback: bool,
    phases: PhaseBreakdown,
}

/// What the server answered for one request.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The executed query's outcome; `None` when the request was shed at
    /// admission (an empty partial answer: no rows, not complete).
    pub outcome: Option<QueryOutcome>,
    /// True when the plan came from the cache (rule 1–9 enumeration was
    /// skipped).
    pub cached_plan: bool,
    /// True when admission control shed this request.
    pub shed: bool,
    /// The answer read from an incrementally maintained view — no
    /// navigation, no optimizer, zero page accesses. `Some` exactly when
    /// the request was answered by [`QueryServer::with_views`] state;
    /// `outcome` is `None` in that case.
    pub view_answer: Option<Relation>,
    /// The request's seeded-deterministic id; `Some` exactly when the
    /// server was built [`QueryServer::with_trace`].
    pub request_id: Option<u64>,
    /// Wall-clock phase breakdown (queue is left 0 — the caller knows
    /// scheduling delay, the server does not); `Some` exactly when
    /// tracing is on.
    pub phases: Option<PhaseBreakdown>,
    /// True when the request's deadline budget expired: before admission
    /// or planning (an empty partial answer, `outcome` is `None`) or
    /// mid-evaluation (`outcome` present, its report carrying the exact
    /// not-yet-fetched URL set in `unreachable`).
    pub brown_out: bool,
}

impl ServeOutcome {
    /// True when the answer covers the whole query — i.e. the request was
    /// neither shed nor browned out (both degrade to `Partial`-style
    /// results: shed is empty, a brown-out covers the pages fetched
    /// within budget).
    pub fn is_complete(&self) -> bool {
        !self.shed && !self.brown_out
    }

    /// True when a maintained view answered (no live navigation ran).
    pub fn from_view(&self) -> bool {
        self.view_answer.is_some()
    }

    /// The answer relation, wherever it came from: the maintained view or
    /// the executed session. `None` only for shed requests.
    pub fn relation(&self) -> Option<&Relation> {
        self.view_answer
            .as_ref()
            .or_else(|| self.outcome.as_ref().map(|o| &o.report.relation))
    }
}

/// A multi-tenant serving layer over one site. `S` must be `Sync` — the
/// whole point is concurrent sessions sharing one source (typically a
/// [`nalg::CoalescingSource`] stacked on the live/resilient source).
pub struct QueryServer<'a, S: PageSource + Sync> {
    ws: &'a WebScheme,
    catalog: &'a ViewCatalog,
    stats: RwLock<&'a SiteStatistics>,
    source: &'a S,
    stats_epoch: AtomicU64,
    plan_cache: PlanCache,
    admission: AdmissionControl,
    health: Option<&'a ConstraintHealth>,
    shared_cache: Option<&'a SharedPageCache>,
    degradation: DegradationMode,
    audit: Option<(f64, u64)>,
    fetch_workers: Option<usize>,
    views: Option<&'a RwLock<IncrementalView<'a>>>,
    tracing: Option<ServeTracing>,
    slo: Option<SloTracker>,
    recorder: Option<FlightRecorder>,
    /// Default per-request deadline budget in µs (explicit override).
    deadline_budget_us: Option<u64>,
    /// Derive the default budget from the attached SLO's objective.
    deadline_from_slo: bool,
    hedge: Option<nalg::HedgeConfig>,
    relevance: bool,
    registry: MetricsRegistry,
    requests: Counter,
    shed: Counter,
    brown_outs: Counter,
    view_hits: Counter,
    view_fallbacks: Counter,
}

impl<'a, S: PageSource + Sync> QueryServer<'a, S> {
    /// A server with default policy: 64 cached plans, 8 concurrent
    /// sessions, fail-fast degradation, no audit, sequential fetches.
    pub fn new(
        ws: &'a WebScheme,
        catalog: &'a ViewCatalog,
        stats: &'a SiteStatistics,
        source: &'a S,
    ) -> Self {
        let registry = MetricsRegistry::with_prefix("serve");
        QueryServer {
            ws,
            catalog,
            stats: RwLock::new(stats),
            source,
            stats_epoch: AtomicU64::new(0),
            plan_cache: PlanCache::with_registry(64, &registry),
            admission: AdmissionControl::new(8),
            health: None,
            shared_cache: None,
            degradation: DegradationMode::FailFast,
            audit: None,
            fetch_workers: None,
            views: None,
            tracing: None,
            slo: None,
            recorder: None,
            deadline_budget_us: None,
            deadline_from_slo: false,
            hedge: None,
            relevance: false,
            requests: registry.counter("requests"),
            shed: registry.counter("shed"),
            brown_outs: registry.counter("brown_outs"),
            view_hits: registry.counter("views_answered"),
            view_fallbacks: registry.counter("views_fallback"),
            registry,
        }
    }

    /// Sets the plan-cache capacity (builder style).
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache = PlanCache::with_registry(capacity, &self.registry);
        self
    }

    /// Sets the admission limit: at most `capacity` concurrent sessions,
    /// the rest shed (builder style).
    pub fn with_admission_capacity(mut self, capacity: usize) -> Self {
        self.admission = AdmissionControl::new(capacity);
        self
    }

    /// Attaches a [`ConstraintHealth`] registry — quarantines invalidate
    /// cached plans and bar constraints from licensing new ones.
    pub fn with_constraint_health(mut self, health: &'a ConstraintHealth) -> Self {
        self.health = Some(health);
        self
    }

    /// Shares a cross-query page cache between every served session.
    pub fn with_shared_cache(mut self, cache: &'a SharedPageCache) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Sets the degradation mode of served sessions (see
    /// [`QuerySession::with_degradation`]).
    pub fn with_degradation(mut self, mode: DegradationMode) -> Self {
        self.degradation = mode;
        self
    }

    /// Enables runtime constraint auditing on served sessions (see
    /// [`QuerySession::with_audit`]).
    pub fn with_audit(mut self, rate: f64, seed: u64) -> Self {
        self.audit = (rate > 0.0).then_some((rate.min(1.0), seed));
        self
    }

    /// Served sessions evaluate with a pool of `workers` fetch threads.
    pub fn with_concurrent_fetch(mut self, workers: usize) -> Self {
        self.fetch_workers = Some(workers.max(1));
        self
    }

    /// Attaches incrementally maintained views (keyed by
    /// [`ConjunctiveQuery::cache_key`]): a request whose key has a live
    /// maintained answer is served from it directly — no optimizer, no
    /// navigation, zero page accesses. A degraded view (its maintenance
    /// hit a transient failure) falls back to ordinary live evaluation
    /// until a later sync rebuilds it.
    pub fn with_views(mut self, views: &'a RwLock<IncrementalView<'a>>) -> Self {
        self.views = Some(views);
        self
    }

    /// Enables request-scoped causal tracing. Every [`QueryServer::serve`]
    /// call gets a deterministic request id (a mix of `seed`, the
    /// query's cache key, and its per-query occurrence count) and a root
    /// `serve.request` span; admission, plan-cache, view, planner, and
    /// evaluator activity parent under it, and fetch-layer attribution
    /// (pool workers, coalescing leader/follower links, dataflow
    /// upqueries) is routed to a per-request side sink via
    /// [`obs::reqctx`]. Same seed, same request sequence → byte-identical
    /// causal exports; answers and page accesses are untouched.
    pub fn with_trace(mut self, seed: u64) -> Self {
        self.tracing = Some(ServeTracing::new(seed));
        self
    }

    /// Attaches a latency SLO: every request's end-to-end latency is
    /// recorded into the (shared) tracker's fixed-precision histogram
    /// and burn windows. A breach fires the flight recorder's
    /// [`TriggerKind::SloBreach`] when one is attached.
    pub fn with_slo(mut self, slo: &SloTracker) -> Self {
        self.slo = Some(slo.clone());
        self
    }

    /// Attaches a (shared) flight recorder: with tracing on, every
    /// completed request's [`RequestTrace`] is recorded into the ring,
    /// and shed / constraint-fallback / degraded-view / SLO-breach
    /// requests freeze it into a dump.
    pub fn with_flight_recorder(mut self, recorder: &FlightRecorder) -> Self {
        self.recorder = Some(recorder.clone());
        self
    }

    /// Gives every request a default deadline budget of `us`
    /// microseconds, measured from the moment [`QueryServer::serve`] is
    /// entered. Past the budget a request browns out: not-yet-fetched
    /// pages are reported exactly (never fetched past the SLO), and a
    /// request arriving already expired is answered as an empty partial
    /// without consuming an admission permit. Overridable per call via
    /// [`QueryServer::serve_with_deadline`].
    pub fn with_deadline_budget(mut self, us: u64) -> Self {
        self.deadline_budget_us = Some(us);
        self
    }

    /// Derives the default deadline budget from the attached SLO's
    /// latency objective (`threshold_us`), so the server never spends
    /// longer on a request than the objective it is judged against. An
    /// explicit [`QueryServer::with_deadline_budget`] wins; without an
    /// SLO attached this is a no-op.
    pub fn with_deadline_from_slo(mut self) -> Self {
        self.deadline_from_slo = true;
        self
    }

    /// Hedges laggard pooled fetches in served sessions (see
    /// [`QuerySession::with_hedging`]): after `cfg.delay_us` in flight,
    /// one backup GET races the primary; the first response wins and the
    /// loser is cancelled. Rows and paper counters are unchanged; hedge
    /// activity lands only in `cfg`'s counters (typically a
    /// `resilience::HedgePolicy`'s registry cells).
    pub fn with_hedging(mut self, cfg: nalg::HedgeConfig) -> Self {
        self.hedge = Some(cfg);
        self
    }

    /// Cancels pending fetches that relevance analysis proves can no
    /// longer contribute to the answer (see
    /// [`QuerySession::with_relevance_cancel`]).
    pub fn with_relevance_cancel(mut self) -> Self {
        self.relevance = true;
        self
    }

    /// The default deadline for [`QueryServer::serve`]: the explicit
    /// budget if set, else the SLO objective when opted in, else
    /// infinite.
    fn default_deadline(&self) -> obs::Deadline {
        if let Some(us) = self.deadline_budget_us {
            return obs::Deadline::after_us(us);
        }
        if self.deadline_from_slo {
            if let Some(slo) = &self.slo {
                return obs::Deadline::after_us(slo.objective().threshold_us);
            }
        }
        obs::Deadline::infinite()
    }

    /// The `serve`-prefixed registry (requests, shed, plan-cache
    /// counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The plan cache (inspection/reporting).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The admission gate (inspection/reporting).
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// The current statistics epoch (starts at 0, bumped by
    /// [`QueryServer::recollect_statistics`]).
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch.load(Ordering::SeqCst)
    }

    /// Swaps in freshly collected statistics: bumps the epoch and
    /// explicitly invalidates every cached plan (their cost ranking was
    /// computed against the old statistics). Returns the new epoch.
    pub fn recollect_statistics(&self, stats: &'a SiteStatistics) -> u64 {
        let epoch = {
            let mut slot = self.stats.write();
            *slot = stats;
            self.stats_epoch.fetch_add(1, Ordering::SeqCst) + 1
        };
        self.plan_cache.sync(epoch, self.current_quarantine_fp().1);
        epoch
    }

    fn current_quarantine_fp(&self) -> (Vec<String>, u64) {
        let quarantined = self.health.map(|h| h.quarantined()).unwrap_or_default();
        let fp = quarantine_fingerprint(&quarantined);
        (quarantined, fp)
    }

    /// Builds the per-request session over the current statistics.
    fn session(&self) -> QuerySession<'a, S> {
        let stats: &'a SiteStatistics = *self.stats.read();
        let mut session = QuerySession::new(self.ws, self.catalog, stats, self.source)
            .with_degradation(self.degradation);
        if let Some(cache) = self.shared_cache {
            session = session.with_shared_cache(cache);
        }
        if let Some(h) = self.health {
            session = session.with_constraint_health(h);
        }
        if let Some((rate, seed)) = self.audit {
            session = session.with_audit(rate, seed);
        }
        if let Some(workers) = self.fetch_workers {
            session = session.with_concurrent_fetch(workers);
        }
        session
    }

    /// Serves one query (thread-safe). See the module docs for the
    /// admission → tick → plan-cache → settle pipeline.
    ///
    /// With tracing/SLO/flight-recorder attached the same pipeline runs
    /// under a root `serve.request` span with per-phase timing; the
    /// answer (rows, completeness, page accesses) never depends on
    /// whether observation is on.
    pub fn serve(&self, q: &ConjunctiveQuery) -> Result<ServeOutcome> {
        self.serve_with_deadline(q, self.default_deadline())
    }

    /// [`QueryServer::serve`] with an explicit per-request deadline,
    /// overriding the configured default budget. The deadline threads
    /// down through planning, evaluation, and the fetch pool: every
    /// blocking point checks the remaining budget and fails over to a
    /// partial answer (a *brown-out*) instead of blocking past it.
    pub fn serve_with_deadline(
        &self,
        q: &ConjunctiveQuery,
        deadline: obs::Deadline,
    ) -> Result<ServeOutcome> {
        self.requests.inc();
        if self.tracing.is_none() && self.slo.is_none() && self.recorder.is_none() {
            return self.serve_pipeline(q, deadline, None);
        }
        let key = q.cache_key();
        let mut obs = self.tracing.as_ref().map(|t| {
            let rid = t.request_id(&key);
            let sink = TraceSink::with_seed(rid);
            let attr = TraceSink::with_seed(rid ^ ATTR_SALT);
            let mut root = sink.begin(EventKind::Serve, "serve.request", None);
            root.set("request", rid);
            root.set("query", key.as_str());
            (
                root,
                RequestObs {
                    rid,
                    sink,
                    attr,
                    root: 0,
                    clock: FetchClock::new(),
                    view_fallback: false,
                    phases: PhaseBreakdown::default(),
                },
            )
        });
        if let Some((root, o)) = obs.as_mut() {
            o.root = root.id();
        }
        let t0 = Instant::now();
        let res = self.serve_pipeline(q, deadline, obs.as_mut().map(|(_, o)| o));
        let latency_us = t0.elapsed().as_micros() as u64;
        let out = res?;
        let fell_back = out.outcome.as_ref().map(|o| o.fell_back()).unwrap_or(false);
        let rid = out.request_id.unwrap_or(0);
        let view_degraded = obs.as_ref().map(|(_, o)| o.view_fallback).unwrap_or(false);
        if let Some((mut root, o)) = obs {
            root.set("shed", u64::from(out.shed));
            root.set("brown_out", u64::from(out.brown_out));
            root.set("cached_plan", u64::from(out.cached_plan));
            root.set("from_view", u64::from(out.from_view()));
            o.sink.finish(root);
            if let Some(rec) = &self.recorder {
                rec.record(RequestTrace {
                    request_id: o.rid,
                    query: key.clone(),
                    latency_us,
                    shed: out.shed,
                    cached_plan: out.cached_plan,
                    from_view: out.from_view(),
                    fell_back,
                    phases: out.phases.unwrap_or_default(),
                    events: o.sink.events(),
                    fetch_events: o.attr.events(),
                });
            }
        }
        let breached = self
            .slo
            .as_ref()
            .map(|s| s.record(latency_us))
            .unwrap_or(false);
        if let Some(rec) = &self.recorder {
            if out.shed {
                rec.trigger(TriggerKind::Shed, rid);
            }
            if fell_back {
                rec.trigger(TriggerKind::ConstraintFallback, rid);
            }
            if view_degraded {
                rec.trigger(TriggerKind::ViewDegraded, rid);
            }
            if breached {
                rec.trigger(TriggerKind::SloBreach, rid);
            }
            if out.brown_out {
                rec.trigger(TriggerKind::BudgetExhausted, rid);
            }
        }
        Ok(out)
    }

    /// The untimed pipeline shared by observed and unobserved requests.
    /// `obs`, when present, receives phase timings and causal events;
    /// control flow is identical either way.
    fn serve_pipeline(
        &self,
        q: &ConjunctiveQuery,
        deadline: obs::Deadline,
        mut obs: Option<&mut RequestObs>,
    ) -> Result<ServeOutcome> {
        let outcome_of = |obs: &Option<&mut RequestObs>,
                          outcome: Option<QueryOutcome>,
                          cached_plan: bool,
                          shed: bool,
                          brown_out: bool,
                          view_answer: Option<Relation>| {
            ServeOutcome {
                outcome,
                cached_plan,
                shed,
                brown_out,
                view_answer,
                request_id: obs.as_ref().map(|o| o.rid),
                phases: obs.as_ref().map(|o| o.phases),
            }
        };
        // A request arriving with its budget already gone (e.g. it aged
        // out in the caller's queue) is answered immediately as an empty
        // partial — crucially *without* consuming an admission permit a
        // live request could use.
        if deadline.expired() {
            self.brown_outs.inc();
            if let Some(o) = obs.as_deref_mut() {
                o.sink.event(
                    EventKind::Serve,
                    "serve.deadline",
                    Some(o.root),
                    vec![("pre_admission".to_string(), 1u64.into())],
                );
            }
            return Ok(outcome_of(&obs, None, false, true, true, None));
        }
        let admitted = self.admission.try_admit();
        if let Some(o) = obs.as_deref_mut() {
            o.sink.event(
                EventKind::Serve,
                "serve.admission",
                Some(o.root),
                vec![("admitted".to_string(), u64::from(admitted.is_some()).into())],
            );
        }
        let Some(_permit) = admitted else {
            self.shed.inc();
            return Ok(outcome_of(&obs, None, false, true, false, None));
        };
        // Maintained views first: a registered, healthy view answers with
        // zero page accesses. A degraded one falls through to the full
        // optimize-and-navigate pipeline below.
        if let Some(views) = self.views {
            let guard = views.read();
            let key = q.cache_key();
            if guard.is_registered(&key) {
                let t_view = Instant::now();
                let answer = guard.answer(&key);
                if let Some(o) = obs.as_deref_mut() {
                    o.phases.view_us = t_view.elapsed().as_micros() as u64;
                    o.sink.event(
                        EventKind::Serve,
                        "serve.view",
                        Some(o.root),
                        vec![("answered".to_string(), u64::from(answer.is_some()).into())],
                    );
                }
                match answer {
                    Some(rel) => {
                        self.view_hits.inc();
                        return Ok(outcome_of(&obs, None, false, false, false, Some(rel)));
                    }
                    None => {
                        self.view_fallbacks.inc();
                        if let Some(o) = obs.as_deref_mut() {
                            o.view_fallback = true;
                        }
                    }
                }
            }
        }
        // One logical tick per served request, exactly like
        // `QuerySession::run`; re-admissions change the quarantine set,
        // which the sync below turns into explicit invalidation.
        if let Some(h) = self.health {
            h.tick();
        }
        let t_plan = Instant::now();
        let epoch = self.stats_epoch();
        let (quarantined, fp) = self.current_quarantine_fp();
        self.plan_cache.sync(epoch, fp);
        let key = crate::cache::PlanKey {
            query: q.cache_key(),
            stats_epoch: epoch,
            quarantine_fp: fp,
        };
        let mut session = self.session();
        if let Some(o) = obs.as_deref_mut() {
            session = session.with_trace(&o.sink).with_trace_parent(o.root);
        }
        // A per-request cancel token whenever some mechanism will use
        // it: deadline aborts, hedging's loser cancellation, or
        // relevance-driven cancellation.
        let token = (deadline.is_finite() || self.hedge.is_some() || self.relevance)
            .then(obs::CancelToken::new);
        if deadline.is_finite() {
            session = session.with_deadline(deadline);
        }
        if let Some(t) = &token {
            session = session.with_cancel_token(t.clone());
        }
        if let Some(cfg) = &self.hedge {
            session = session.with_hedging(cfg.clone());
        }
        if self.relevance {
            session = session.with_relevance_cancel();
        }
        let (explain, cached_plan) = match self.plan_cache.lookup(&key, &quarantined) {
            Some(plan) => ((*plan).clone(), true),
            None => {
                // Rule 1–9 enumeration is the most expensive pre-fetch
                // phase; never start it with the budget already gone.
                if deadline.expired() {
                    self.brown_outs.inc();
                    if let Some(o) = obs.as_deref_mut() {
                        o.sink.event(
                            EventKind::Serve,
                            "serve.deadline",
                            Some(o.root),
                            vec![("pre_plan".to_string(), 1u64.into())],
                        );
                    }
                    return Ok(outcome_of(&obs, None, false, true, true, None));
                }
                (session.explain(q)?, false)
            }
        };
        if let Some(o) = obs.as_deref_mut() {
            o.phases.plan_us = t_plan.elapsed().as_micros() as u64;
            o.sink.event(
                EventKind::Serve,
                "serve.plan_cache",
                Some(o.root),
                vec![("hit".to_string(), u64::from(cached_plan).into())],
            );
        }
        let t_eval = Instant::now();
        // The ambient request context carries the deadline and token to
        // the layers that only see the thread — pool workers, coalescing
        // followers — so even an untraced request installs one when a
        // finite budget or a token needs to propagate.
        let ctx = match (obs.as_deref(), &token) {
            (Some(o), _) => Some(RequestCtx {
                sink: o.attr.clone(),
                parent: o.root,
                request_id: o.rid,
                clock: o.clock.clone(),
                deadline,
                cancel: token.clone(),
            }),
            (None, Some(_)) => Some(RequestCtx {
                sink: TraceSink::with_seed(0),
                parent: 0,
                request_id: 0,
                clock: FetchClock::new(),
                deadline,
                cancel: token.clone(),
            }),
            (None, None) => None,
        };
        let outcome = match ctx {
            Some(ctx) => obs::reqctx::with_ctx(Some(ctx), || session.run_planned(q, explain))?,
            None => session.run_planned(q, explain)?,
        };
        let brown_out = outcome.report.deadline_exceeded;
        if brown_out {
            self.brown_outs.inc();
        }
        if let Some(o) = obs.as_deref_mut() {
            let total = t_eval.elapsed().as_micros() as u64;
            o.phases.fetch_us = o.clock.total_us();
            o.phases.eval_us = total.saturating_sub(o.phases.fetch_us);
        }
        if outcome.fell_back() {
            // The plan's own audit falsified it — never serve it again.
            self.plan_cache.remove(&key);
        } else if !cached_plan {
            self.plan_cache
                .insert(key, Arc::new(outcome.explain.clone()));
        }
        Ok(outcome_of(
            &obs,
            Some(outcome),
            cached_plan,
            false,
            brown_out,
            None,
        ))
    }

    /// A point-in-time copy of every serving counter.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.get(),
            shed: self.shed.get(),
            brown_outs: self.brown_outs.get(),
            view_hits: self.view_hits.get(),
            view_fallbacks: self.view_fallbacks.get(),
            stats_epoch: self.stats_epoch(),
            plan_cache: self.plan_cache.stats(),
            admission: self.admission.snapshot(),
        }
    }
}

/// A point-in-time copy of a server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Requests received (served + shed).
    pub requests: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests whose deadline budget expired (before admission,
    /// before planning, or mid-evaluation).
    pub brown_outs: u64,
    /// Requests answered directly from a maintained incremental view.
    pub view_hits: u64,
    /// Requests whose registered view was degraded, served live instead.
    pub view_fallbacks: u64,
    /// The statistics epoch at snapshot time.
    pub stats_epoch: u64,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
    /// Admission counters.
    pub admission: AdmissionStats,
}
