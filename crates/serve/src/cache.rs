//! The plan cache: repeated queries skip rule 1–9 enumeration.
//!
//! Algorithm 1 re-derives the same winning plan every time a popular
//! query arrives; on a serving workload that CPU is pure waste. The cache
//! maps a [`PlanKey`] — the *normalized* query
//! ([`wvcore::ConjunctiveQuery::cache_key`]), the statistics epoch, and a
//! fingerprint of the current quarantine set — to the full [`Explain`]
//! the optimizer produced, so a hit replays plan selection for free via
//! [`wvcore::QuerySession::run_planned`].
//!
//! **Invalidation.** All three key components exist to invalidate:
//! recollecting statistics bumps the epoch, and any
//! [`resilience::ConstraintHealth`] quarantine or TTL re-admission
//! changes the fingerprint — either way cached plans stop matching and
//! [`PlanCache::sync`] purges them (counted as `serve_plan_invalidations`).
//! On top of that, [`PlanCache::lookup`] re-checks the served plan's own
//! [`wvcore::rules::ConstraintDependency`] set against the quarantine list
//! at hit time:
//! a cached plan licensed by a since-quarantined constraint is **never
//! served**, even if a stale fingerprint were to collide (counted as
//! `serve_plan_quarantine_rejections`).
//!
//! Counters live under the `serve` prefix of an [`obs::MetricsRegistry`],
//! mirroring the `cache`/`resilience`/`constraint` registries elsewhere.

use obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wvcore::Explain;

/// What a cached plan is keyed on. Any component changing is a miss.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`wvcore::ConjunctiveQuery::cache_key`] — the normalized query AST.
    pub query: String,
    /// The serving layer's statistics epoch (bumped on recollection).
    pub stats_epoch: u64,
    /// [`quarantine_fingerprint`] of the quarantined constraint keys.
    pub quarantine_fp: u64,
}

/// A stable order-sensitive fingerprint of the (sorted) quarantine set,
/// FNV-1a over the keys with a splitmix64 finisher. The empty set is 0.
pub fn quarantine_fingerprint(quarantined: &[String]) -> u64 {
    if quarantined.is_empty() {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for key in quarantined {
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff; // key separator
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finisher for avalanche
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Entry {
    explain: Arc<Explain>,
    last_used: u64,
}

struct CacheState {
    map: HashMap<PlanKey, Entry>,
    clock: u64,
}

/// A bounded LRU plan cache with `serve`-prefixed metrics.
pub struct PlanCache {
    capacity: usize,
    state: Mutex<CacheState>,
    registry: MetricsRegistry,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
    quarantine_rejections: Counter,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1), with a fresh
    /// `serve`-prefixed registry.
    pub fn new(capacity: usize) -> Self {
        Self::with_registry(capacity, &MetricsRegistry::with_prefix("serve"))
    }

    /// [`PlanCache::new`] registering its counters on an existing registry
    /// (the serving layer shares one `serve` registry across subsystems).
    pub fn with_registry(capacity: usize, registry: &MetricsRegistry) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                clock: 0,
            }),
            hits: registry.counter("plan_hits"),
            misses: registry.counter("plan_misses"),
            evictions: registry.counter("plan_evictions"),
            invalidations: registry.counter("plan_invalidations"),
            quarantine_rejections: registry.counter("plan_quarantine_rejections"),
            registry: registry.clone(),
        }
    }

    /// The registry carrying this cache's counters (prefix `serve`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Purges every entry whose epoch or quarantine fingerprint disagrees
    /// with the current `(stats_epoch, quarantine_fp)` — the explicit
    /// invalidation on statistics recollection and on quarantine /
    /// re-admission. Returns how many entries were dropped.
    pub fn sync(&self, stats_epoch: u64, quarantine_fp: u64) -> u64 {
        let mut state = self.state.lock();
        let before = state.map.len();
        state
            .map
            .retain(|k, _| k.stats_epoch == stats_epoch && k.quarantine_fp == quarantine_fp);
        let dropped = (before - state.map.len()) as u64;
        self.invalidations.add(dropped);
        dropped
    }

    /// Looks up a plan. Counted as a hit only when the key matches **and**
    /// the served (best) plan's constraint-dependency set is disjoint from
    /// `quarantined` — a cached plan licensed by a quarantined constraint
    /// is removed and reported as a miss (the correctness guard).
    pub fn lookup(&self, key: &PlanKey, quarantined: &[String]) -> Option<Arc<Explain>> {
        let mut state = self.state.lock();
        state.clock += 1;
        let clock = state.clock;
        let Some(entry) = state.map.get_mut(key) else {
            self.misses.inc();
            return None;
        };
        let tainted = entry
            .explain
            .best()
            .dependencies
            .iter()
            .any(|d| quarantined.iter().any(|q| *q == d.key()));
        if tainted {
            state.map.remove(key);
            self.quarantine_rejections.inc();
            self.misses.inc();
            return None;
        }
        entry.last_used = clock;
        let plan = Arc::clone(&entry.explain);
        self.hits.inc();
        Some(plan)
    }

    /// Inserts a plan, evicting the least-recently-used entry when full.
    pub fn insert(&self, key: PlanKey, explain: Arc<Explain>) {
        let mut state = self.state.lock();
        state.clock += 1;
        let clock = state.clock;
        if !state.map.contains_key(&key) && state.map.len() >= self.capacity {
            if let Some(victim) = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                state.map.remove(&victim);
                self.evictions.inc();
            }
        }
        state.map.insert(
            key,
            Entry {
                explain,
                last_used: clock,
            },
        );
    }

    /// Drops one entry (e.g. a plan whose audit just failed).
    pub fn remove(&self, key: &PlanKey) -> bool {
        let removed = self.state.lock().map.remove(key).is_some();
        if removed {
            self.invalidations.inc();
        }
        removed
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// True when the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            quarantine_rejections: self.quarantine_rejections.get(),
            entries: self.len(),
        }
    }
}

/// A point-in-time copy of the plan-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to optimize (absent, invalidated, or rejected).
    pub misses: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Entries purged by epoch/fingerprint sync or explicit removal.
    pub invalidations: u64,
    /// Hits refused because the plan depended on a quarantined constraint.
    pub quarantine_rejections: u64,
    /// Entries resident right now (a gauge).
    pub entries: usize,
}

impl PlanCacheStats {
    /// Hit rate over all lookups, in `[0, 1]`; 0 when nothing was looked
    /// up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wvcore::{CandidatePlan, ConstraintDependency};

    fn key(q: &str, epoch: u64, fp: u64) -> PlanKey {
        PlanKey {
            query: q.to_string(),
            stats_epoch: epoch,
            quarantine_fp: fp,
        }
    }

    // A minimal Explain whose best plan depends on the given constraints.
    fn explain_with(deps: Vec<ConstraintDependency>) -> Arc<Explain> {
        let expr = nalg::NalgExpr::entry("HomePage");
        let estimate = wvcore::cost::estimate(
            &expr,
            &websim::sitegen::university::university_scheme(),
            &wvcore::SiteStatistics::default(),
        )
        .expect("entry estimates");
        Arc::new(Explain {
            query: "q".to_string(),
            candidates: vec![CandidatePlan {
                expr,
                estimate,
                dependencies: deps,
            }],
            quarantined: Vec::new(),
        })
    }

    fn link_dep() -> ConstraintDependency {
        let ws = websim::sitegen::university::university_scheme();
        ConstraintDependency::Link(ws.link_constraints()[0].clone())
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(quarantine_fingerprint(&[]), 0);
        let a = vec!["c1".to_string(), "c2".to_string()];
        assert_eq!(quarantine_fingerprint(&a), quarantine_fingerprint(&a));
        assert_ne!(
            quarantine_fingerprint(&a),
            quarantine_fingerprint(&["c1".to_string()])
        );
        // Not concatenation-confusable: ["ab"] vs ["a","b"].
        assert_ne!(
            quarantine_fingerprint(&["ab".to_string()]),
            quarantine_fingerprint(&["a".to_string(), "b".to_string()])
        );
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let cache = PlanCache::new(2);
        assert!(cache.lookup(&key("q1", 0, 0), &[]).is_none());
        cache.insert(key("q1", 0, 0), explain_with(vec![]));
        cache.insert(key("q2", 0, 0), explain_with(vec![]));
        assert!(cache.lookup(&key("q1", 0, 0), &[]).is_some());
        // q2 is now least recently used; inserting q3 evicts it.
        cache.insert(key("q3", 0, 0), explain_with(vec![]));
        assert!(cache.lookup(&key("q2", 0, 0), &[]).is_none());
        assert!(cache.lookup(&key("q1", 0, 0), &[]).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn sync_purges_stale_epochs_and_fingerprints() {
        let cache = PlanCache::new(8);
        cache.insert(key("q1", 0, 0), explain_with(vec![]));
        cache.insert(key("q2", 0, 7), explain_with(vec![]));
        cache.insert(key("q3", 1, 0), explain_with(vec![]));
        assert_eq!(cache.sync(1, 0), 2, "old epoch and old fingerprint go");
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key("q3", 1, 0), &[]).is_some());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn quarantined_dependency_is_never_served() {
        let cache = PlanCache::new(8);
        let dep = link_dep();
        cache.insert(key("q", 0, 0), explain_with(vec![dep.clone()]));
        // Clean quarantine set: served.
        assert!(cache.lookup(&key("q", 0, 0), &[]).is_some());
        // The plan's own constraint is quarantined: refused AND removed,
        // even though the key (with its stale fingerprint) still matches.
        assert!(cache.lookup(&key("q", 0, 0), &[dep.key()]).is_none());
        assert!(cache.lookup(&key("q", 0, 0), &[]).is_none(), "entry gone");
        let s = cache.stats();
        assert_eq!(s.quarantine_rejections, 1);
    }

    #[test]
    fn registers_under_serve_prefix() {
        let cache = PlanCache::new(2);
        let _ = cache.lookup(&key("q", 0, 0), &[]);
        cache.insert(key("q", 0, 0), explain_with(vec![]));
        let _ = cache.lookup(&key("q", 0, 0), &[]);
        let prom = cache.metrics().render_prometheus();
        assert!(prom.contains("serve_plan_hits 1"));
        assert!(prom.contains("serve_plan_misses 1"));
        assert!(prom.contains("serve_plan_evictions 0"));
    }
}
