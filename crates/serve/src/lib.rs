//! # serve — the multi-tenant query-serving layer
//!
//! The paper optimizes one query at a time; production is a long-lived
//! server fielding many concurrent sessions over one site — interactive,
//! read-heavy, and heavily skewed toward a few popular queries. This
//! crate supplies the layer that exploits exactly that shape:
//!
//! * [`PlanCache`] — repeated queries skip rule 1–9 enumeration: plans
//!   are cached under `(normalized query AST, statistics epoch,
//!   quarantine fingerprint)` and explicitly invalidated when statistics
//!   are recollected or [`resilience::ConstraintHealth`]
//!   quarantines/readmits a constraint, with hit/miss/evict counters
//!   under the `serve` metrics prefix;
//! * [`QueryServer`] — admission control (bounded concurrent sessions,
//!   shed-with-partial beyond the limit, via
//!   [`resilience::AdmissionControl`]), a cheap borrowed
//!   [`wvcore::QuerySession`] per request, and audit-driven cache
//!   poisoning control;
//! * pairs with [`nalg::CoalescingSource`] so concurrent sessions
//!   chasing the same hot URL share one in-flight GET.
//!
//! Everything stays **paper-blind**: plan caching and coalescing change
//! server CPU and GET counts only — every session's answer rows and
//! `page_accesses` are byte-identical to an unserved sequential run
//! (pinned by `tests/serving.rs` at the workspace root).
//!
//! ```
//! use serve::QueryServer;
//! use websim::sitegen::{University, UniversityConfig};
//! use wvcore::views::university_catalog;
//! use wvcore::{ConjunctiveQuery, LiveSource, SiteStatistics};
//!
//! let site = University::generate(UniversityConfig::default()).unwrap();
//! let stats = SiteStatistics::from_site(&site.site);
//! let catalog = university_catalog();
//! let live = LiveSource::for_site(&site.site);
//! let coalesced = nalg::CoalescingSource::new(&live);
//! let server = QueryServer::new(&site.site.scheme, &catalog, &stats, &coalesced);
//!
//! let q = ConjunctiveQuery::new("full professors")
//!     .atom("Professor")
//!     .select((0, "Rank"), "Full")
//!     .project((0, "PName"));
//! let first = server.serve(&q).unwrap();
//! let second = server.serve(&q).unwrap();
//! assert!(!first.cached_plan && second.cached_plan);
//! assert_eq!(server.stats().plan_cache.hits, 1);
//! ```

pub mod cache;
pub mod server;

pub use cache::{quarantine_fingerprint, PlanCache, PlanCacheStats, PlanKey};
pub use server::{QueryServer, ServeOutcome, ServerStats};

#[cfg(test)]
mod tests {
    use super::*;
    use websim::sitegen::{University, UniversityConfig};
    use wvcore::views::university_catalog;
    use wvcore::{ConjunctiveQuery, LiveSource, SiteStatistics};

    fn query(name: &str) -> ConjunctiveQuery {
        match name {
            "profs" => ConjunctiveQuery::new("profs")
                .atom("Professor")
                .select((0, "Rank"), "Full")
                .project((0, "PName")),
            "depts" => ConjunctiveQuery::new("depts")
                .atom("Dept")
                .project((0, "DName"))
                .project((0, "Address")),
            other => panic!("unknown query {other}"),
        }
    }

    #[test]
    fn repeated_queries_hit_the_plan_cache_with_identical_answers() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &source);
        let q = query("profs");
        let cold = server.serve(&q).unwrap();
        let warm = server.serve(&q).unwrap();
        assert!(!cold.cached_plan);
        assert!(warm.cached_plan);
        let (cold, warm) = (cold.outcome.unwrap(), warm.outcome.unwrap());
        assert_eq!(cold.report.relation.sorted(), warm.report.relation.sorted());
        assert_eq!(cold.report.page_accesses, warm.report.page_accesses);
        // A differently *named* but identical query still hits.
        let renamed = query("profs");
        let mut renamed = renamed;
        renamed.name = "another label".to_string();
        assert!(server.serve(&renamed).unwrap().cached_plan);
        let s = server.stats();
        assert_eq!((s.plan_cache.hits, s.plan_cache.misses), (2, 1));
        assert_eq!(s.requests, 3);
    }

    #[test]
    fn recollecting_statistics_invalidates_cached_plans() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let stats2 = stats.clone();
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &source);
        let q = query("depts");
        server.serve(&q).unwrap();
        assert!(server.serve(&q).unwrap().cached_plan);
        assert_eq!(server.recollect_statistics(&stats2), 1);
        assert_eq!(server.stats_epoch(), 1);
        let refreshed = server.serve(&q).unwrap();
        assert!(!refreshed.cached_plan, "old-epoch plan must not serve");
        let s = server.stats();
        assert!(s.plan_cache.invalidations >= 1);
        // …and the re-optimized plan caches under the new epoch.
        assert!(server.serve(&q).unwrap().cached_plan);
    }

    #[test]
    fn admission_sheds_beyond_capacity_with_partial_outcome() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let server =
            QueryServer::new(&u.site.scheme, &catalog, &stats, &source).with_admission_capacity(1);
        // Hold the only slot, then serve: the request is shed, not run.
        let permit = server.admission().try_admit().expect("slot");
        let shed = server.serve(&query("profs")).unwrap();
        assert!(shed.shed && !shed.is_complete());
        assert!(shed.outcome.is_none(), "no rows: an empty partial answer");
        drop(permit);
        let ok = server.serve(&query("profs")).unwrap();
        assert!(ok.is_complete() && ok.outcome.is_some());
        let s = server.stats();
        assert_eq!(s.shed, 1);
        assert_eq!(s.requests, 2);
    }

    #[test]
    fn serve_metrics_register_under_serve_prefix() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &source);
        server.serve(&query("profs")).unwrap();
        server.serve(&query("profs")).unwrap();
        let prom = server.metrics().render_prometheus();
        assert!(prom.contains("serve_requests 2"));
        assert!(prom.contains("serve_plan_hits 1"));
        assert!(prom.contains("serve_plan_misses 1"));
        assert!(prom.contains("serve_shed 0"));
    }

    #[test]
    fn maintained_views_answer_without_navigation_and_degrade_to_live() {
        use dataflow::IncrementalView;
        use nalg::NalgExpr;
        use parking_lot::RwLock;
        use websim::{FaultPlan, FaultRule};

        let mut u = University::generate(UniversityConfig::default()).unwrap();
        let ws = u.site.scheme.clone();
        let q = query("depts");
        let expr = NalgExpr::entry("DeptListPage")
            .unnest("DeptList")
            .follow("ToDept", "DeptPage")
            .project(vec!["DeptPage.DName", "DeptPage.Address"]);

        let mut iv = IncrementalView::new(&ws);
        iv.materialize(&u.site.server).unwrap();
        iv.set_cursor(u.site.change_cursor());
        iv.register("depts", q.cache_key(), &expr, &u.site.server)
            .unwrap();

        // Degrade the view before the server exists: evict the state an
        // upquery would need, time the server out, and push a change.
        let (dept_url, dept_tuple) = u.site.instance("DeptPage")[0].clone();
        let entry_url = ws.entry_point("DeptListPage").unwrap().url.clone();
        assert!(iv.evict_slices(&dept_url));
        assert!(iv.evict_page(&entry_url));
        u.site
            .server
            .set_fault_plan(FaultPlan::new(1).with_rule(FaultRule::timeouts(1.0)));
        u.site
            .republish("DeptPage", dept_url, dept_tuple, "Dept")
            .unwrap();
        iv.sync(&u.site).unwrap();
        assert!(iv.is_degraded(&q.cache_key()));
        u.site.server.clear_fault_plan();
        let views = RwLock::new(iv);

        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &source).with_views(&views);

        // Degraded view → live evaluation, with real page accesses.
        let live = server.serve(&q).unwrap();
        assert!(!live.from_view());
        let oracle = live.relation().unwrap().sorted();
        assert!(live.outcome.as_ref().unwrap().report.page_accesses > 0);

        // One change-free sync rebuilds the view; the server now answers
        // from maintained state with zero page accesses.
        views.write().sync(&u.site).unwrap();
        u.site.server.reset_stats();
        let hit = server.serve(&q).unwrap();
        assert!(hit.from_view() && hit.outcome.is_none());
        assert_eq!(u.site.server.stats().gets, 0, "view answers fetch nothing");
        assert_eq!(hit.relation().unwrap().sorted(), oracle);

        let s = server.stats();
        assert_eq!((s.view_hits, s.view_fallbacks), (1, 1));
        assert_eq!(s.requests, 2);
        let prom = server.metrics().render_prometheus();
        assert!(prom.contains("serve_views_answered 1"));
        assert!(prom.contains("serve_views_fallback 1"));
    }

    #[test]
    fn traced_serving_is_paper_blind_and_causally_deterministic() {
        use obs::{EventKind, FlightRecorder};

        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);

        let plain = QueryServer::new(&u.site.scheme, &catalog, &stats, &source);
        let serve_all = |server: &QueryServer<'_, _>| {
            ["profs", "depts", "profs"]
                .iter()
                .map(|n| server.serve(&query(n)).unwrap())
                .collect::<Vec<_>>()
        };
        let oracle = serve_all(&plain);

        let runs: Vec<(Vec<ServeOutcome>, Vec<String>)> = (0..2)
            .map(|_| {
                let rec = FlightRecorder::new();
                let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &source)
                    .with_trace(42)
                    .with_flight_recorder(&rec);
                let outs = serve_all(&server);
                let causal: Vec<String> = rec.recent().iter().map(|t| t.causal_jsonl()).collect();
                (outs, causal)
            })
            .collect();

        for (outs, _) in &runs {
            for (o, base) in outs.iter().zip(&oracle) {
                // Tracing on/off is byte-identical in rows and accesses.
                assert_eq!(
                    o.relation().unwrap().sorted(),
                    base.relation().unwrap().sorted()
                );
                assert_eq!(
                    o.outcome.as_ref().unwrap().report.page_accesses,
                    base.outcome.as_ref().unwrap().report.page_accesses
                );
                assert!(o.request_id.is_some() && o.phases.is_some());
            }
            // Repeats of the same query get distinct request ids.
            assert_ne!(outs[0].request_id, outs[2].request_id);
        }
        // Same seed, same sequence → byte-identical causal exports.
        assert_eq!(runs[0].1, runs[1].1);

        // The trace is a tree under one serve.request root: admission,
        // plan-cache, planner, and operator activity all parent into it.
        let trace = &runs[0].1[0];
        assert!(trace.contains("serve.request"));
        assert!(trace.contains("serve.admission"));
        assert!(trace.contains("serve.plan_cache"));
        let rec = FlightRecorder::new();
        let traced = QueryServer::new(&u.site.scheme, &catalog, &stats, &source)
            .with_trace(42)
            .with_flight_recorder(&rec);
        traced.serve(&query("profs")).unwrap();
        let t = &rec.recent()[0];
        let root = t
            .events
            .iter()
            .find(|e| e.name == "serve.request")
            .expect("root span recorded");
        assert!(t
            .events
            .iter()
            .any(|e| e.kind == EventKind::Optimizer && e.parent == Some(root.id)));
        assert!(t.events.iter().any(|e| e.kind == EventKind::Serve
            && e.name == "serve.plan_cache"
            && e.parent == Some(root.id)));
    }

    #[test]
    fn slo_breaches_and_sheds_fire_the_flight_recorder() {
        use obs::{FlightRecorder, LatencyObjective, SloTracker, TriggerKind};

        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let rec = FlightRecorder::new();
        // threshold 0µs: every real request breaches the objective.
        let slo = SloTracker::new(LatencyObjective::new("serve", 0, 0.999));
        let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &source)
            .with_admission_capacity(1)
            .with_trace(7)
            .with_slo(&slo)
            .with_flight_recorder(&rec);

        let permit = server.admission().try_admit().expect("slot");
        let shed = server.serve(&query("profs")).unwrap();
        assert!(shed.shed);
        drop(permit);
        server.serve(&query("profs")).unwrap();

        let fired = server.stats().requests; // 2 requests in
        assert_eq!(fired, 2);
        let counts: std::collections::HashMap<_, _> = rec.fired().into_iter().collect();
        assert!(counts[&TriggerKind::Shed] >= 1);
        assert!(counts[&TriggerKind::SloBreach] >= 1, "0µs SLO must breach");
        assert!(rec.dump_count() >= 2);
        let snap = slo.snapshot();
        assert_eq!(snap.total, 2);
        assert!(snap.breaches >= 1 && snap.burning());
        // The shed request's trace is in the ring, flagged as such.
        assert!(rec.recent().iter().any(|t| t.shed));
    }

    #[test]
    fn expired_deadline_is_shed_as_partial_without_consuming_a_permit() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let server =
            QueryServer::new(&u.site.scheme, &catalog, &stats, &source).with_admission_capacity(1);
        let out = server
            .serve_with_deadline(&query("profs"), obs::Deadline::after_us(0))
            .unwrap();
        assert!(out.brown_out && out.shed && !out.is_complete());
        assert!(out.outcome.is_none(), "an empty partial answer");
        let s = server.stats();
        assert_eq!(s.brown_outs, 1);
        assert_eq!(s.shed, 0, "capacity shedding is a separate counter");
        // The gate never saw the request: no permit was consumed, so a
        // live request arriving at the same instant still gets the slot.
        assert_eq!(s.admission.admitted, 0);
        assert!(server.serve(&query("profs")).unwrap().is_complete());
        assert_eq!(server.stats().admission.admitted, 1);
    }

    #[test]
    fn generous_deadline_serves_identically_and_tight_deadline_browns_out() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let plain = QueryServer::new(&u.site.scheme, &catalog, &stats, &source);
        let oracle = plain.serve(&query("profs")).unwrap();

        // A generous budget changes nothing observable.
        let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &source)
            .with_deadline_budget(60_000_000);
        let out = server.serve(&query("profs")).unwrap();
        assert!(!out.brown_out && out.is_complete());
        let (a, b) = (out.outcome.unwrap(), oracle.outcome.unwrap());
        assert_eq!(a.report.relation.sorted(), b.report.relation.sorted());
        assert_eq!(a.report.page_accesses, b.report.page_accesses);

        // Slow every page: the same budget now expires mid-evaluation
        // and the brown-out reports the exact not-yet-fetched URL set.
        u.site
            .server
            .set_latency(std::time::Duration::from_millis(5));
        let slow = QueryServer::new(&u.site.scheme, &catalog, &stats, &source)
            .with_degradation(nalg::DegradationMode::Partial)
            .with_deadline_budget(8_000);
        let browned = slow.serve(&query("profs")).unwrap();
        assert!(browned.brown_out && !browned.is_complete());
        let report = &browned.outcome.as_ref().unwrap().report;
        assert!(report.deadline_exceeded);
        assert!(!report.unreachable.is_empty());
        u.site.server.set_latency(std::time::Duration::ZERO);
        // The browned answer is a sound partial: every row it did return
        // also appears in the full oracle answer.
        let full = b.report.relation.sorted();
        for row in report.relation.rows() {
            assert!(full.rows().contains(row));
        }
        assert_eq!(slow.stats().brown_outs, 1);
    }

    #[test]
    fn concurrent_serving_matches_sequential_answers() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let live = LiveSource::for_site(&u.site);
        let coalesced = nalg::CoalescingSource::new(&live);
        let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &coalesced)
            .with_admission_capacity(16);
        let oracle_profs = server.serve(&query("profs")).unwrap().outcome.unwrap();
        let oracle_depts = server.serve(&query("depts")).unwrap().outcome.unwrap();
        std::thread::scope(|scope| {
            for i in 0..8 {
                let (server, oracle_profs, oracle_depts) = (&server, &oracle_profs, &oracle_depts);
                scope.spawn(move || {
                    let (q, oracle) = if i % 2 == 0 {
                        (query("profs"), oracle_profs)
                    } else {
                        (query("depts"), oracle_depts)
                    };
                    let out = server.serve(&q).unwrap().outcome.unwrap();
                    assert_eq!(
                        out.report.relation.sorted(),
                        oracle.report.relation.sorted()
                    );
                    assert_eq!(out.report.page_accesses, oracle.report.page_accesses);
                });
            }
        });
        let s = server.stats();
        assert_eq!(s.requests, 10);
        assert_eq!(s.shed, 0);
        assert_eq!(s.plan_cache.hits, 8, "both plans cached after the oracles");
    }
}
