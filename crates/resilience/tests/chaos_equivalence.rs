//! The subsystem's headline invariants, pinned by property tests:
//!
//! 1. **Transient equivalence** — a fault plan made only of capped
//!    transient faults, evaluated through a retry policy with enough
//!    attempts, is observationally identical to a fault-free run: same
//!    relation, same `page_accesses`, same per-operator accounting, no
//!    unreachable pages. Retries land in separate counters.
//! 2. **Partial subset** — permanent link rot under
//!    [`DegradationMode::Partial`] yields exactly the fault-free answer
//!    minus the rows behind rotted URLs, and reports exactly the rotted
//!    URL set — computable up front from [`FaultPlan::is_rotted`].
//!
//! A fixed-seed smoke variant reads `CHAOS_SEED` / `CHAOS_RATE_PCT` from
//! the environment so CI can pin one reproducible chaos configuration.

use adm::{Field, PageScheme, Url, WebScheme};
use nalg::{DegradationMode, Evaluator, NalgExpr};
use proptest::prelude::*;
use resilience::{ResilientSource, RetryPolicy};
use websim::{FaultPlan, FaultRule, VirtualServer};
use wvcore::LiveSource;

fn scheme() -> WebScheme {
    let list = PageScheme::new(
        "ListPage",
        vec![Field::list(
            "Items",
            vec![Field::text("Name"), Field::link("ToItem", "ItemPage")],
        )],
    )
    .unwrap();
    let item = PageScheme::new("ItemPage", vec![Field::text("Name"), Field::text("Kind")]).unwrap();
    WebScheme::builder()
        .scheme(list)
        .scheme(item)
        .entry_point("ListPage", "/list.html")
        .build()
        .unwrap()
}

/// Publishes a list page linking `n` item pages on a live server.
fn publish_site(server: &VirtualServer, n: usize) {
    let mut rows = String::new();
    for i in 0..n {
        rows.push_str(&format!(
            r#"<li class="adm-row"><span class="adm-attr" data-attr="Name">n{i}</span><a class="adm-attr" data-attr="ToItem" href="/i/{i}">x</a></li>"#
        ));
    }
    server.put(
        Url::new("/list.html"),
        "ListPage",
        format!(
            r#"<div class="adm-page"><ul class="adm-list" data-attr="Items">{rows}</ul></div>"#
        ),
    );
    for i in 0..n {
        server.put(
            Url::new(format!("/i/{i}")),
            "ItemPage",
            format!(
                r#"<div class="adm-page"><span class="adm-attr" data-attr="Name">n{i}</span><span class="adm-attr" data-attr="Kind">k{}</span></div>"#,
                i % 3
            ),
        );
    }
}

fn navigation() -> NalgExpr {
    NalgExpr::entry("ListPage")
        .unnest("Items")
        .follow("ToItem", "ItemPage")
        .project(vec!["ListPage.Items.Name", "ItemPage.Kind"])
}

/// A transient-only plan: 5xx and timeouts, each capped per URL so a
/// 4-attempt retry policy is guaranteed to get through.
fn transient_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_rule(FaultRule::unavailable(rate).with_max_per_url(Some(2)))
        .with_rule(FaultRule::timeouts(rate).with_max_per_url(Some(1)))
}

fn check_transient_equivalence(n_items: usize, seed: u64, rate: f64, workers: usize) {
    let ws = scheme();
    let server = VirtualServer::new();
    publish_site(&server, n_items);
    let live = LiveSource::new(&ws, &server);
    let plan = navigation();

    // fault-free baseline
    let baseline = Evaluator::new(&ws, &live).eval(&plan).unwrap();
    let clean_stats = server.stats();
    server.reset_stats();

    // chaos run through the retry layer
    server.set_fault_plan(transient_plan(seed, rate));
    let resilient = ResilientSource::new(&live, RetryPolicy::new(4));
    let chaos = Evaluator::new(&ws, &resilient)
        .with_degradation(DegradationMode::Partial)
        .eval(&plan)
        .unwrap();

    prop_assert_eq!(chaos.relation.sorted(), baseline.relation.sorted());
    prop_assert_eq!(chaos.page_accesses, baseline.page_accesses);
    prop_assert_eq!(chaos.broken_links, baseline.broken_links);
    prop_assert_eq!(chaos.cost_model_accesses(), baseline.cost_model_accesses());
    prop_assert_eq!(&chaos.accesses_by_operator, &baseline.accesses_by_operator);
    prop_assert!(
        chaos.unreachable.is_empty(),
        "transient faults never lose pages"
    );

    // the paper's access accounting is untouched by the chaos…
    let chaos_stats = server.stats();
    prop_assert_eq!(chaos_stats.gets, clean_stats.gets);
    prop_assert_eq!(chaos_stats.heads, clean_stats.heads);
    // …every injected fault shows up as exactly one retry, in counters of
    // its own
    let injected = chaos_stats.faults.unavailable + chaos_stats.faults.timeout;
    prop_assert_eq!(resilient.stats().retries, injected);
    prop_assert_eq!(resilient.stats().giveups, 0);
    prop_assert_eq!(resilient.stats().breaker_trips, 0);

    // and the same holds through the concurrent fetch pool
    server.reset_stats();
    let pooled = Evaluator::new(&ws, &resilient)
        .with_concurrent_fetch(workers)
        .eval(&plan)
        .unwrap();
    prop_assert_eq!(pooled.relation.sorted(), baseline.relation.sorted());
    prop_assert_eq!(pooled.page_accesses, baseline.page_accesses);
    prop_assert_eq!(&pooled.accesses_by_operator, &baseline.accesses_by_operator);
    prop_assert_eq!(server.stats().gets, clean_stats.gets);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transient_only_chaos_is_equivalent_to_fault_free(
        n_items in 1usize..25,
        seed in 0u64..1_000_000,
        rate_pct in 0u8..=90,
        workers in 1usize..=8,
    ) {
        check_transient_equivalence(n_items, seed, f64::from(rate_pct) / 100.0, workers);
    }

    #[test]
    fn permanent_rot_in_partial_mode_reports_the_exact_missing_set(
        n_items in 1usize..25,
        seed in 0u64..1_000_000,
        rot_pct in 0u8..=100,
    ) {
        let ws = scheme();
        let server = VirtualServer::new();
        publish_site(&server, n_items);
        let live = LiveSource::new(&ws, &server);
        let plan = navigation();

        let baseline = Evaluator::new(&ws, &live).eval(&plan).unwrap();

        // rot item pages only (the entry stays up) and predict the damage
        // without touching the server
        let fault_plan = FaultPlan::new(seed).with_rule(
            FaultRule::link_rot(f64::from(rot_pct) / 100.0).for_url_prefix("/i/"),
        );
        let mut expected_missing: Vec<Url> = (0..n_items)
            .map(|i| Url::new(format!("/i/{i}")))
            .filter(|u| fault_plan.is_rotted(u, Some("ItemPage")))
            .collect();
        expected_missing.sort();
        server.set_fault_plan(fault_plan);

        let partial = Evaluator::new(&ws, &live)
            .with_degradation(DegradationMode::Partial)
            .eval(&plan)
            .unwrap();

        // exact missing-URL set, sorted, deduplicated
        prop_assert_eq!(&partial.unreachable, &expected_missing);
        prop_assert_eq!(partial.is_complete(), expected_missing.is_empty());
        // the answer is exactly the baseline minus rows behind rotted URLs
        let missing: std::collections::HashSet<&Url> = expected_missing.iter().collect();
        prop_assert_eq!(
            partial.relation.len() + missing.len(),
            baseline.relation.len()
        );
        let baseline_rows: Vec<_> = baseline.relation.sorted().rows().to_vec();
        for row in partial.relation.rows() {
            prop_assert!(baseline_rows.contains(row), "row not in the baseline answer");
        }
    }
}

/// CI smoke hook: one reproducible chaos configuration, overridable via
/// `CHAOS_SEED` and `CHAOS_RATE_PCT`.
#[test]
fn chaos_smoke_fixed_seed() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let rate_pct: u8 = std::env::var("CHAOS_RATE_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(35);
    check_transient_equivalence(12, seed, f64::from(rate_pct.min(95)) / 100.0, 4);
}
