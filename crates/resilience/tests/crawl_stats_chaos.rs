//! The crawler and statistics collection go through the resilience layer
//! too: under capped transient chaos, a retrying crawl discovers exactly
//! the instance a fault-free crawl does, and the statistics derived from
//! it are identical — while the server's GET accounting stays untouched
//! and the retries land in the resilience counters.

use websim::sitegen::{University, UniversityConfig};
use websim::{FaultPlan, FaultRule};
use wvcore::{crawl_instance, crawl_instance_parallel, LiveSource, SiteStatistics};

use resilience::{ResilientSource, RetryPolicy};

fn university() -> University {
    University::generate(UniversityConfig {
        departments: 2,
        professors: 5,
        courses: 9,
        seed: 77,
        ..UniversityConfig::default()
    })
    .unwrap()
}

fn chaos_plan() -> FaultPlan {
    FaultPlan::new(0xBAD5EED)
        .with_rule(FaultRule::unavailable(0.4).with_max_per_url(Some(2)))
        .with_rule(FaultRule::timeouts(0.4).with_max_per_url(Some(1)))
}

#[test]
fn retrying_crawl_discovers_the_same_instance_under_chaos() {
    let u = university();
    let live = LiveSource::for_site(&u.site);

    let clean = crawl_instance(&u.site.scheme, &live);
    let clean_gets = u.site.server.stats().gets;
    u.site.server.reset_stats();

    u.site.server.set_fault_plan(chaos_plan());
    let resilient = ResilientSource::new(&live, RetryPolicy::new(4));
    let chaotic = crawl_instance(&u.site.scheme, &resilient);

    assert_eq!(chaotic, clean, "same pages, same tuples");
    let stats = u.site.server.stats();
    assert_eq!(stats.gets, clean_gets, "failed GETs are not GETs");
    let injected = stats.faults.unavailable + stats.faults.timeout;
    assert!(injected > 0, "the chaos plan actually fired");
    assert_eq!(resilient.stats().retries, injected);
    assert_eq!(resilient.stats().giveups, 0);
}

#[test]
fn parallel_crawl_through_retries_matches_sequential() {
    let u = university();
    let live = LiveSource::for_site(&u.site);
    let clean = crawl_instance(&u.site.scheme, &live);

    u.site.server.set_fault_plan(chaos_plan());
    let resilient = ResilientSource::new(&live, RetryPolicy::new(4));
    let chaotic = crawl_instance_parallel(&u.site.scheme, &resilient, 4);
    assert_eq!(chaotic, clean);
}

#[test]
fn statistics_collected_under_chaos_are_identical() {
    let u = university();
    let live = LiveSource::for_site(&u.site);
    let clean = SiteStatistics::crawl(&u.site.scheme, &live);

    u.site.server.set_fault_plan(chaos_plan());
    let resilient = ResilientSource::new(&live, RetryPolicy::new(4));
    let chaotic = SiteStatistics::crawl(&u.site.scheme, &resilient);

    for ps in u.site.scheme.schemes() {
        assert_eq!(
            chaotic.card(&ps.name),
            clean.card(&ps.name),
            "cardinality of {}",
            ps.name
        );
    }
    assert!(resilient.stats().retries > 0, "the crawl rode over faults");
}
