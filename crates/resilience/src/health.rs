//! Constraint health: violation accounting, quarantine, and TTL
//! re-admission for the optimizer's constraint assumptions.
//!
//! The optimizer's rewrite rules are licensed by link and inclusion
//! constraints declared in the web-scheme; a drifted site silently breaks
//! them, and with them the *correctness* of every plan they licensed. A
//! [`ConstraintHealth`] registry is the shared memory between runtime
//! auditing (which reports sampled checks and violations per constraint)
//! and plan selection (which asks, per constraint, whether it is still
//! trustworthy):
//!
//! * a constraint whose violation count reaches the quarantine threshold
//!   is **quarantined** — the optimizer excludes it from rewrites until it
//!   is re-admitted;
//! * quarantine expires after a TTL measured in logical ticks (one tick
//!   per query session run), re-admitting the constraint on probation with
//!   its violation count cleared — if the site was fixed the constraint
//!   stays, if not the next audited violation re-quarantines it.
//!
//! Counters live in an [`obs::MetricsRegistry`] under the `constraint`
//! prefix, mirroring how [`crate::ResilienceSnapshot`] wraps the
//! `resilience` prefix; [`ConstraintHealthSnapshot`] is the point-in-time
//! view. Everything is deterministic: no wall clock, no randomness.

use obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Per-constraint bookkeeping.
#[derive(Debug, Default, Clone)]
struct ConstraintState {
    checks: u64,
    violations: u64,
    /// Logical tick at which the constraint was quarantined, if it is.
    quarantined_at: Option<u64>,
}

/// Shared registry of constraint trust: violation counts, quarantine with
/// TTL re-admission, and `constraint`-prefixed metrics. Constraints are
/// keyed by their canonical display form (e.g.
/// `"P1.A = P2.B  (via P1.L)"` or `"P1.L1 ⊆ P2.L2"`).
#[derive(Debug)]
pub struct ConstraintHealth {
    registry: MetricsRegistry,
    checks: Counter,
    violations: Counter,
    quarantines: Counter,
    readmissions: Counter,
    fallbacks: Counter,
    /// Violations before a constraint is quarantined.
    threshold: u64,
    /// Quarantine duration in logical ticks.
    ttl: u64,
    state: Mutex<(u64, BTreeMap<String, ConstraintState>)>,
}

impl Default for ConstraintHealth {
    fn default() -> Self {
        ConstraintHealth::new()
    }
}

impl ConstraintHealth {
    /// A registry with the default policy: one audited violation
    /// quarantines a constraint for 8 ticks.
    pub fn new() -> Self {
        let registry = MetricsRegistry::with_prefix("constraint");
        ConstraintHealth {
            checks: registry.counter("checks"),
            violations: registry.counter("violations"),
            quarantines: registry.counter("quarantines"),
            readmissions: registry.counter("readmissions"),
            fallbacks: registry.counter("fallbacks"),
            threshold: 1,
            ttl: 8,
            state: Mutex::new((0, BTreeMap::new())),
            registry,
        }
    }

    /// Sets the violation count at which a constraint is quarantined
    /// (minimum 1).
    pub fn with_threshold(mut self, threshold: u64) -> Self {
        self.threshold = threshold.max(1);
        self
    }

    /// Sets the quarantine TTL in logical ticks (minimum 1).
    pub fn with_ttl(mut self, ttl: u64) -> Self {
        self.ttl = ttl.max(1);
        self
    }

    /// The registry backing this health's counters (prefix `constraint`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Advances logical time by one tick (called once per query-session
    /// run), re-admitting constraints whose quarantine has expired.
    /// Returns the keys re-admitted on this tick, sorted.
    pub fn tick(&self) -> Vec<String> {
        let mut guard = self.state.lock();
        let (ref mut now, ref mut map) = *guard;
        *now += 1;
        let mut readmitted = Vec::new();
        for (key, st) in map.iter_mut() {
            if let Some(at) = st.quarantined_at {
                if now.saturating_sub(at) >= self.ttl {
                    st.quarantined_at = None;
                    // Probation: the slate is clean, but one fresh
                    // violation (at the default threshold) re-quarantines.
                    st.violations = 0;
                    self.readmissions.inc();
                    readmitted.push(key.clone());
                }
            }
        }
        readmitted
    }

    /// Records `checks` audited checks and `violations` violations for the
    /// constraint `key`, quarantining it when its violation count reaches
    /// the threshold. Returns true if this call quarantined it.
    pub fn record(&self, key: &str, checks: u64, violations: u64) -> bool {
        self.checks.add(checks);
        self.violations.add(violations);
        let mut guard = self.state.lock();
        let (now, ref mut map) = *guard;
        let st = map.entry(key.to_string()).or_default();
        st.checks += checks;
        st.violations += violations;
        if st.quarantined_at.is_none() && st.violations >= self.threshold {
            st.quarantined_at = Some(now);
            self.quarantines.inc();
            return true;
        }
        false
    }

    /// Records that a query fell back to its default-navigation plan
    /// because of a constraint violation.
    pub fn note_fallback(&self) {
        self.fallbacks.inc();
    }

    /// True if the constraint `key` is currently quarantined — the
    /// optimizer must not let it license a rewrite.
    pub fn is_quarantined(&self, key: &str) -> bool {
        let guard = self.state.lock();
        guard.1.get(key).is_some_and(|s| s.quarantined_at.is_some())
    }

    /// The currently quarantined constraint keys, sorted.
    pub fn quarantined(&self) -> Vec<String> {
        let guard = self.state.lock();
        guard
            .1
            .iter()
            .filter(|(_, s)| s.quarantined_at.is_some())
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Per-constraint `(key, checks, violations, quarantined)` rows,
    /// sorted by key (inspection/report helper).
    pub fn by_constraint(&self) -> Vec<(String, u64, u64, bool)> {
        let guard = self.state.lock();
        guard
            .1
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    s.checks,
                    s.violations,
                    s.quarantined_at.is_some(),
                )
            })
            .collect()
    }

    /// A point-in-time copy of the aggregate counters.
    pub fn snapshot(&self) -> ConstraintHealthSnapshot {
        let quarantined_now = {
            let guard = self.state.lock();
            guard
                .1
                .values()
                .filter(|s| s.quarantined_at.is_some())
                .count() as u64
        };
        ConstraintHealthSnapshot {
            checks: self.checks.get(),
            violations: self.violations.get(),
            quarantines: self.quarantines.get(),
            readmissions: self.readmissions.get(),
            fallbacks: self.fallbacks.get(),
            quarantined_now,
        }
    }
}

/// A point-in-time copy of the constraint-health counters, mirroring
/// [`crate::ResilienceSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstraintHealthSnapshot {
    /// Audited constraint checks performed.
    pub checks: u64,
    /// Violations detected by auditing.
    pub violations: u64,
    /// Quarantine activations.
    pub quarantines: u64,
    /// Constraints re-admitted after their quarantine TTL expired.
    pub readmissions: u64,
    /// Queries that fell back to their default-navigation plan.
    pub fallbacks: u64,
    /// Constraints quarantined at snapshot time (a gauge, not a counter).
    pub quarantined_now: u64,
}

impl ConstraintHealthSnapshot {
    /// Counter deltas since an earlier snapshot, saturating per field
    /// (`quarantined_now` is a gauge and is carried over, not subtracted).
    pub fn since(&self, earlier: &ConstraintHealthSnapshot) -> ConstraintHealthSnapshot {
        ConstraintHealthSnapshot {
            checks: self.checks.saturating_sub(earlier.checks),
            violations: self.violations.saturating_sub(earlier.violations),
            quarantines: self.quarantines.saturating_sub(earlier.quarantines),
            readmissions: self.readmissions.saturating_sub(earlier.readmissions),
            fallbacks: self.fallbacks.saturating_sub(earlier.fallbacks),
            quarantined_now: self.quarantined_now,
        }
    }

    /// True when auditing saw no violation and took no action — the
    /// drift-free fast path.
    pub fn is_quiet(&self) -> bool {
        self.violations == 0
            && self.quarantines == 0
            && self.readmissions == 0
            && self.fallbacks == 0
            && self.quarantined_now == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &str = "P1.A = P2.B  (via P1.L)";

    #[test]
    fn clean_checks_never_quarantine() {
        let h = ConstraintHealth::new();
        for _ in 0..10 {
            assert!(!h.record(KEY, 5, 0));
        }
        assert!(!h.is_quarantined(KEY));
        let s = h.snapshot();
        assert_eq!(s.checks, 50);
        assert!(s.is_quiet());
    }

    #[test]
    fn violations_quarantine_at_threshold() {
        let h = ConstraintHealth::new().with_threshold(3);
        assert!(!h.record(KEY, 1, 1));
        assert!(!h.record(KEY, 1, 1));
        assert!(h.record(KEY, 1, 1), "third violation quarantines");
        assert!(h.is_quarantined(KEY));
        assert!(!h.record(KEY, 1, 1), "already quarantined: no re-trigger");
        assert_eq!(h.quarantined(), vec![KEY.to_string()]);
        let s = h.snapshot();
        assert_eq!(s.quarantines, 1);
        assert_eq!(s.quarantined_now, 1);
        assert!(!s.is_quiet());
    }

    #[test]
    fn ttl_readmits_on_probation() {
        let h = ConstraintHealth::new().with_ttl(2);
        h.record(KEY, 1, 1);
        assert!(h.is_quarantined(KEY));
        assert!(h.tick().is_empty(), "tick 1: still quarantined");
        assert!(h.is_quarantined(KEY));
        assert_eq!(h.tick(), vec![KEY.to_string()], "tick 2: readmitted");
        assert!(!h.is_quarantined(KEY));
        assert_eq!(h.snapshot().readmissions, 1);
        // Probation: a fresh violation re-quarantines immediately.
        assert!(h.record(KEY, 1, 1));
        assert!(h.is_quarantined(KEY));
        assert_eq!(h.snapshot().quarantines, 2);
    }

    #[test]
    fn registers_under_constraint_prefix() {
        let h = ConstraintHealth::new();
        h.record(KEY, 4, 2);
        let names = h.metrics().names();
        assert!(names.contains(&"constraint_checks".to_string()));
        assert!(names.contains(&"constraint_violations".to_string()));
        let prom = h.metrics().render_prometheus();
        assert!(prom.contains("constraint_checks 4"));
        assert!(prom.contains("constraint_violations 2"));
        assert!(prom.contains("constraint_quarantines 1"));
    }

    #[test]
    fn snapshot_since_saturates() {
        let newer = ConstraintHealthSnapshot {
            checks: 5,
            violations: 1,
            quarantined_now: 1,
            ..Default::default()
        };
        let earlier = ConstraintHealthSnapshot {
            checks: 9, // went backwards
            violations: 0,
            ..Default::default()
        };
        let d = newer.since(&earlier);
        assert_eq!(d.checks, 0);
        assert_eq!(d.violations, 1);
        assert_eq!(d.quarantined_now, 1, "gauge is carried, not subtracted");
    }

    #[test]
    fn per_constraint_rows_are_sorted_and_accurate() {
        let h = ConstraintHealth::new();
        h.record("b ⊆ c", 2, 0);
        h.record("a = b  (via l)", 3, 1);
        let rows = h.by_constraint();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "a = b  (via l)");
        assert_eq!(rows[0], ("a = b  (via l)".to_string(), 3, 1, true));
        assert_eq!(rows[1], ("b ⊆ c".to_string(), 2, 0, false));
    }
}
