//! Resilience counters — strictly separate from the paper's statistics.
//!
//! Nothing in this module ever feeds `page_accesses`, `gets`, or any other
//! number the paper's experiments report. Retries, give-ups, breaker
//! activity, and backoff time live here and only here, so the cost-model
//! experiments stay byte-identical whether or not a resilient wrapper sits
//! in the fetch path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic cells backing [`ResilienceSnapshot`].
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    pub retries: AtomicU64,
    pub giveups: AtomicU64,
    pub breaker_trips: AtomicU64,
    pub breaker_rejections: AtomicU64,
    pub budget_exhausted: AtomicU64,
    pub backoff_us: AtomicU64,
    pub slow_responses: AtomicU64,
}

impl StatCells {
    pub(crate) fn snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            giveups: self.giveups.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            backoff_us: self.backoff_us.load(Ordering::Relaxed),
            slow_responses: self.slow_responses.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.retries.store(0, Ordering::Relaxed);
        self.giveups.store(0, Ordering::Relaxed);
        self.breaker_trips.store(0, Ordering::Relaxed);
        self.breaker_rejections.store(0, Ordering::Relaxed);
        self.budget_exhausted.store(0, Ordering::Relaxed);
        self.backoff_us.store(0, Ordering::Relaxed);
        self.slow_responses.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a wrapper's resilience counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceSnapshot {
    /// Transient failures that were retried.
    pub retries: u64,
    /// Calls that exhausted their attempts (or the budget) and failed.
    pub giveups: u64,
    /// Breaker transitions into Open (including failed half-open probes).
    pub breaker_trips: u64,
    /// Calls rejected by an Open breaker without touching the source.
    pub breaker_rejections: u64,
    /// Retries denied because the cross-call budget ran out.
    pub budget_exhausted: u64,
    /// Total computed backoff (µs), whether or not it was slept.
    pub backoff_us: u64,
    /// Calls slower than the policy's observational request timeout.
    pub slow_responses: u64,
}

impl ResilienceSnapshot {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &ResilienceSnapshot) -> ResilienceSnapshot {
        ResilienceSnapshot {
            retries: self.retries - earlier.retries,
            giveups: self.giveups - earlier.giveups,
            breaker_trips: self.breaker_trips - earlier.breaker_trips,
            breaker_rejections: self.breaker_rejections - earlier.breaker_rejections,
            budget_exhausted: self.budget_exhausted - earlier.budget_exhausted,
            backoff_us: self.backoff_us - earlier.backoff_us,
            slow_responses: self.slow_responses - earlier.slow_responses,
        }
    }

    /// True when the wrapper took no resilience action at all — the
    /// fault-free fast path.
    pub fn is_quiet(&self) -> bool {
        *self == ResilienceSnapshot::default()
    }
}
