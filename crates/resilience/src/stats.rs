//! Resilience counters — strictly separate from the paper's statistics.
//!
//! Nothing in this module ever feeds `page_accesses`, `gets`, or any other
//! number the paper's experiments report. Retries, give-ups, breaker
//! activity, and backoff time live here and only here, so the cost-model
//! experiments stay byte-identical whether or not a resilient wrapper sits
//! in the fetch path.
//!
//! The cells are registered in an [`obs::MetricsRegistry`] (prefix
//! `resilience`); [`ResilienceSnapshot`] is a point-in-time view over
//! those registry cells, so the numbers are identical to the
//! pre-registry ad-hoc atomics while also being exportable by name.

use obs::{Counter, MetricsRegistry};

/// Registry-backed counter cells behind [`ResilienceSnapshot`].
#[derive(Debug)]
pub(crate) struct StatCells {
    registry: MetricsRegistry,
    pub retries: Counter,
    pub giveups: Counter,
    pub breaker_trips: Counter,
    pub breaker_rejections: Counter,
    pub budget_exhausted: Counter,
    pub backoff_us: Counter,
    pub slow_responses: Counter,
    pub hedges: Counter,
    pub hedge_wins: Counter,
    pub hedge_cancelled: Counter,
}

impl Default for StatCells {
    fn default() -> Self {
        let registry = MetricsRegistry::with_prefix("resilience");
        StatCells {
            retries: registry.counter("retries"),
            giveups: registry.counter("giveups"),
            breaker_trips: registry.counter("breaker_trips"),
            breaker_rejections: registry.counter("breaker_rejections"),
            budget_exhausted: registry.counter("budget_exhausted"),
            backoff_us: registry.counter("backoff_us"),
            slow_responses: registry.counter("slow_responses"),
            hedges: registry.counter("hedges"),
            hedge_wins: registry.counter("hedge_wins"),
            hedge_cancelled: registry.counter("hedge_cancelled"),
            registry,
        }
    }
}

impl StatCells {
    pub(crate) fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub(crate) fn snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            retries: self.retries.get(),
            giveups: self.giveups.get(),
            breaker_trips: self.breaker_trips.get(),
            breaker_rejections: self.breaker_rejections.get(),
            budget_exhausted: self.budget_exhausted.get(),
            backoff_us: self.backoff_us.get(),
            slow_responses: self.slow_responses.get(),
            hedges: self.hedges.get(),
            hedge_wins: self.hedge_wins.get(),
            hedge_cancelled: self.hedge_cancelled.get(),
        }
    }

    pub(crate) fn reset(&self) {
        self.retries.reset();
        self.giveups.reset();
        self.breaker_trips.reset();
        self.breaker_rejections.reset();
        self.budget_exhausted.reset();
        self.backoff_us.reset();
        self.slow_responses.reset();
        self.hedges.reset();
        self.hedge_wins.reset();
        self.hedge_cancelled.reset();
    }
}

/// A point-in-time copy of a wrapper's resilience counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceSnapshot {
    /// Transient failures that were retried.
    pub retries: u64,
    /// Calls that exhausted their attempts (or the budget) and failed.
    pub giveups: u64,
    /// Breaker transitions into Open (including failed half-open probes).
    pub breaker_trips: u64,
    /// Calls rejected by an Open breaker without touching the source.
    pub breaker_rejections: u64,
    /// Retries denied because the cross-call budget ran out.
    pub budget_exhausted: u64,
    /// Total computed backoff (µs), whether or not it was slept.
    pub backoff_us: u64,
    /// Calls slower than the policy's observational request timeout.
    pub slow_responses: u64,
    /// Backup fetches launched by a hedge policy.
    pub hedges: u64,
    /// Hedged fetches where the backup's response arrived first.
    pub hedge_wins: u64,
    /// Losing hedge twins cancelled before a worker dispatched them
    /// (the server never saw their GET).
    pub hedge_cancelled: u64,
}

impl ResilienceSnapshot {
    /// Counter deltas since an earlier snapshot. Saturating per field: a
    /// counter that went backwards (e.g. the wrapper was reset between
    /// snapshots) yields 0, not a wrapped-around huge delta — so
    /// [`ResilienceSnapshot::is_quiet`] stays truthful on such deltas.
    pub fn since(&self, earlier: &ResilienceSnapshot) -> ResilienceSnapshot {
        ResilienceSnapshot {
            retries: self.retries.saturating_sub(earlier.retries),
            giveups: self.giveups.saturating_sub(earlier.giveups),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            breaker_rejections: self
                .breaker_rejections
                .saturating_sub(earlier.breaker_rejections),
            budget_exhausted: self
                .budget_exhausted
                .saturating_sub(earlier.budget_exhausted),
            backoff_us: self.backoff_us.saturating_sub(earlier.backoff_us),
            slow_responses: self.slow_responses.saturating_sub(earlier.slow_responses),
            hedges: self.hedges.saturating_sub(earlier.hedges),
            hedge_wins: self.hedge_wins.saturating_sub(earlier.hedge_wins),
            hedge_cancelled: self.hedge_cancelled.saturating_sub(earlier.hedge_cancelled),
        }
    }

    /// True when the wrapper took no resilience action at all — the
    /// fault-free fast path.
    pub fn is_quiet(&self) -> bool {
        *self == ResilienceSnapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_is_saturating_per_field() {
        let newer = ResilienceSnapshot {
            retries: 5,
            giveups: 0,
            backoff_us: 100,
            ..Default::default()
        };
        let earlier = ResilienceSnapshot {
            retries: 2,
            giveups: 3, // went backwards (reset between snapshots)
            backoff_us: 400,
            ..Default::default()
        };
        let d = newer.since(&earlier);
        assert_eq!(d.retries, 3);
        assert_eq!(d.giveups, 0, "backwards field saturates to 0");
        assert_eq!(d.backoff_us, 0);
    }

    #[test]
    fn is_quiet_after_wraparound_style_delta() {
        // Every field went backwards: without saturation each delta
        // would wrap to ~u64::MAX and is_quiet would be trivially false
        // for garbage reasons.
        let newer = ResilienceSnapshot::default();
        let earlier = ResilienceSnapshot {
            retries: 7,
            giveups: 1,
            breaker_trips: 2,
            breaker_rejections: 3,
            budget_exhausted: 1,
            backoff_us: 999,
            slow_responses: 4,
            hedges: 6,
            hedge_wins: 2,
            hedge_cancelled: 1,
        };
        assert!(newer.since(&earlier).is_quiet());
        // ... and a genuinely active delta is still not quiet.
        let active = ResilienceSnapshot {
            retries: 8,
            ..earlier
        };
        assert!(!active.since(&earlier).is_quiet());
    }

    #[test]
    fn cells_register_under_resilience_prefix() {
        let cells = StatCells::default();
        cells.retries.add(2);
        assert!(cells
            .registry()
            .names()
            .contains(&"resilience_retries".to_string()));
        assert!(cells
            .registry()
            .render_prometheus()
            .contains("resilience_retries 2"));
        assert_eq!(cells.snapshot().retries, 2);
        cells.reset();
        assert!(cells.snapshot().is_quiet());
    }
}
