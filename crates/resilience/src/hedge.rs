//! Hedged fetches: tail-latency insurance for pooled navigation.
//!
//! A hedge races a single backup GET against a laggard primary: once a
//! pooled fetch has been in flight longer than the policy's delay —
//! typically a high quantile of the site's observed latency — one backup
//! is launched and the first response wins. The loser is cancelled
//! cooperatively; when the cancel lands before a worker dispatches it,
//! the origin server never sees the duplicate GET.
//!
//! **Counter separation.** Hedge activity is recorded here, in the
//! `resilience`-prefixed registry ([`crate::ResilienceSnapshot::hedges`]
//! and friends), and *never* in the paper's `page_accesses`: the
//! evaluator charges one download per URL no matter how many twins raced
//! (see `nalg::eval`). The experiments' cost-model numbers are identical
//! with hedging on or off.

use crate::stats::StatCells;
use crate::ResilienceSnapshot;

/// When to launch a backup fetch for a laggard, and the counters that
/// record what hedging did.
///
/// The delay is jittered deterministically from
/// [`HedgePolicy::jitter_seed`] (a ±12.5% spread) so that a fleet of
/// evaluators sharing one configured delay does not launch its backups
/// in lockstep, while any single seeded run stays reproducible.
#[derive(Debug)]
pub struct HedgePolicy {
    /// Base in-flight time (µs) before one backup fetch is launched.
    pub delay_us: u64,
    /// Seed of the deterministic jitter applied to the delay.
    pub jitter_seed: u64,
    cells: StatCells,
}

impl HedgePolicy {
    /// A policy that hedges after `delay_us` microseconds in flight.
    pub fn new(delay_us: u64) -> Self {
        HedgePolicy {
            delay_us,
            jitter_seed: 0,
            cells: StatCells::default(),
        }
    }

    /// Seeds the delay jitter stream.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The jittered delay actually used: `delay_us` ± 12.5%, derived
    /// deterministically from the seed (seed 0 means no jitter).
    pub fn effective_delay_us(&self) -> u64 {
        if self.jitter_seed == 0 || self.delay_us == 0 {
            return self.delay_us;
        }
        // splitmix64 over the seed; spread in [-delay/8, +delay/8].
        let mut z = self.jitter_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let span = (self.delay_us / 8).max(1);
        let offset = z % (2 * span);
        (self.delay_us + offset).saturating_sub(span).max(1)
    }

    /// The evaluator-side configuration: the jittered delay plus clones
    /// of this policy's registry-backed counters, so hedge activity in
    /// `nalg` lands in [`ResilienceSnapshot`] directly (obs counters are
    /// shared cells, not copies).
    pub fn config(&self) -> nalg::HedgeConfig {
        nalg::HedgeConfig {
            delay_us: self.effective_delay_us(),
            hedges: self.cells.hedges.clone(),
            hedge_wins: self.cells.hedge_wins.clone(),
            hedge_cancelled: self.cells.hedge_cancelled.clone(),
        }
    }

    /// A point-in-time copy of the hedge counters (the non-hedge fields
    /// of the snapshot are always zero for a standalone policy).
    pub fn snapshot(&self) -> ResilienceSnapshot {
        self.cells.snapshot()
    }

    /// Renders the policy's counters in Prometheus text format under the
    /// `resilience` prefix.
    pub fn render_prometheus(&self) -> String {
        self.cells.registry().render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_delay_is_deterministic_and_bounded() {
        let p = HedgePolicy::new(8_000).with_jitter_seed(42);
        let d = p.effective_delay_us();
        assert_eq!(
            d,
            HedgePolicy::new(8_000)
                .with_jitter_seed(42)
                .effective_delay_us()
        );
        assert!((7_000..=9_000).contains(&d), "±12.5% spread, got {d}");
        // Seed 0 disables jitter entirely.
        assert_eq!(HedgePolicy::new(8_000).effective_delay_us(), 8_000);
    }

    #[test]
    fn config_shares_the_policy_counters() {
        let p = HedgePolicy::new(500);
        let cfg = p.config();
        cfg.hedges.inc();
        cfg.hedge_wins.inc();
        let snap = p.snapshot();
        assert_eq!(snap.hedges, 1);
        assert_eq!(snap.hedge_wins, 1);
        assert_eq!(snap.hedge_cancelled, 0);
        assert!(!snap.is_quiet());
        assert!(p.render_prometheus().contains("resilience_hedges 1"));
    }
}
