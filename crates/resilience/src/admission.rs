//! Admission control: a bounded-concurrency gate for serving layers.
//!
//! The retry/breaker governor protects the engine from a *faulty* web;
//! [`AdmissionControl`] protects it from its own *clients*. A long-lived
//! server fielding concurrent sessions admits at most `capacity` of them
//! at a time; a request arriving beyond the limit is **shed** immediately
//! — the serving layer answers it with an empty
//! [`nalg::DegradationMode::Partial`]-style result instead of queueing
//! (queueing under overload just converts load into latency).
//!
//! Same counter discipline as the rest of this crate: every admission
//! decision is visible in an [`obs::MetricsRegistry`] under the
//! `admission` prefix and in [`AdmissionStats`], and none of it ever
//! touches the paper's page-access accounting.

use obs::{Counter, MetricsRegistry};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded-concurrency admission gate. Cheap to share by reference
/// across serving threads; permits release on drop.
#[derive(Debug)]
pub struct AdmissionControl {
    registry: MetricsRegistry,
    admitted: Counter,
    shed: Counter,
    capacity: usize,
    active: AtomicUsize,
    peak: AtomicUsize,
}

impl AdmissionControl {
    /// A gate admitting at most `capacity` concurrent sessions
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let registry = MetricsRegistry::with_prefix("admission");
        AdmissionControl {
            admitted: registry.counter("admitted"),
            shed: registry.counter("shed"),
            capacity: capacity.max(1),
            active: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            registry,
        }
    }

    /// The configured concurrency limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sessions currently holding a permit.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// The registry backing this gate's counters (prefix `admission`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Tries to admit one session. `Some(permit)` reserves a slot until
    /// the permit is dropped; `None` means the gate is at capacity and the
    /// request must be shed.
    pub fn try_admit(&self) -> Option<AdmissionPermit<'_>> {
        let mut current = self.active.load(Ordering::SeqCst);
        loop {
            if current >= self.capacity {
                self.shed.inc();
                return None;
            }
            match self.active.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.admitted.inc();
                    self.peak.fetch_max(current + 1, Ordering::SeqCst);
                    return Some(AdmissionPermit { gate: self });
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// A point-in-time copy of the admission counters.
    pub fn snapshot(&self) -> AdmissionStats {
        AdmissionStats {
            capacity: self.capacity,
            admitted: self.admitted.get(),
            shed: self.shed.get(),
            active: self.active(),
            peak_active: self.peak.load(Ordering::SeqCst),
        }
    }
}

/// A reserved concurrency slot; dropping it releases the slot.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionControl,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A point-in-time copy of the admission counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// The concurrency limit.
    pub capacity: usize,
    /// Sessions admitted (granted a permit).
    pub admitted: u64,
    /// Sessions shed at the gate.
    pub shed: u64,
    /// Permits held right now (a gauge).
    pub active: usize,
    /// The highest concurrent permit count observed.
    pub peak_active: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let gate = AdmissionControl::new(2);
        let a = gate.try_admit().expect("slot 1");
        let _b = gate.try_admit().expect("slot 2");
        assert!(gate.try_admit().is_none(), "at capacity: shed");
        assert_eq!(gate.active(), 2);
        drop(a);
        assert!(gate.try_admit().is_some(), "released slot is reusable");
        let s = gate.snapshot();
        assert_eq!((s.admitted, s.shed), (3, 1));
        assert_eq!(s.peak_active, 2);
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let gate = AdmissionControl::new(0);
        assert_eq!(gate.capacity(), 1);
        let _p = gate.try_admit().expect("one slot");
        assert!(gate.try_admit().is_none());
    }

    #[test]
    fn registers_under_admission_prefix() {
        let gate = AdmissionControl::new(1);
        let _p = gate.try_admit();
        let _ = gate.try_admit();
        let prom = gate.metrics().render_prometheus();
        assert!(prom.contains("admission_admitted 1"));
        assert!(prom.contains("admission_shed 1"));
    }

    #[test]
    fn concurrent_admission_never_exceeds_capacity() {
        let gate = AdmissionControl::new(4);
        let peak_violations = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        if let Some(p) = gate.try_admit() {
                            if gate.active() > gate.capacity() {
                                peak_violations.fetch_add(1, Ordering::SeqCst);
                            }
                            drop(p);
                        }
                    }
                });
            }
        });
        assert_eq!(peak_violations.load(Ordering::SeqCst), 0);
        assert_eq!(gate.active(), 0, "every permit released");
        assert!(gate.snapshot().peak_active <= 4);
    }
}
