//! A fault-tolerant [`PageServer`] wrapper for materialized-view work.

use crate::breaker::{BreakerConfig, BreakerState};
use crate::govern::{Class, Governor};
use crate::policy::RetryPolicy;
use crate::stats::ResilienceSnapshot;
use adm::Url;
use websim::{HeadResponse, PageResponse, PageServer, WebError};

/// Key of the single breaker guarding a whole server. Unlike query
/// fetches, `HEAD`/`GET` requests at the server level do not know the
/// page scheme, so the breaker is server-scoped.
const SERVER_KEY: &str = "server";

/// Wraps any [`PageServer`] with retries and a circuit breaker, so
/// materialized-view URL-checks and refreshes ride the same resilience
/// machinery as query fetches. Also a [`PageServer`], so `matview`'s
/// generic sessions accept it unchanged.
pub struct ResilientServer<'a, P> {
    inner: &'a P,
    gov: Governor,
}

impl<'a, P: PageServer> ResilientServer<'a, P> {
    /// Wraps `inner` under `policy` with default breaker tuning.
    pub fn new(inner: &'a P, policy: RetryPolicy) -> Self {
        ResilientServer {
            inner,
            gov: Governor::new(policy, BreakerConfig::default()),
        }
    }

    /// Overrides the breaker tuning.
    pub fn with_breaker(inner: &'a P, policy: RetryPolicy, breaker: BreakerConfig) -> Self {
        ResilientServer {
            inner,
            gov: Governor::new(policy, breaker),
        }
    }

    /// Attaches a trace sink: retries, give-ups and breaker transitions
    /// are recorded as [`obs::trace::EventKind::Resilience`] events.
    /// No effect on accounting.
    pub fn with_trace(mut self, sink: &obs::trace::TraceSink) -> Self {
        self.gov.set_trace(sink);
        self
    }

    /// The registry backing this wrapper's counters (prefix `resilience`).
    pub fn metrics(&self) -> &obs::MetricsRegistry {
        self.gov.metrics()
    }

    /// Current resilience counters (never part of access statistics).
    pub fn stats(&self) -> ResilienceSnapshot {
        self.gov.snapshot()
    }

    /// Zeroes the counters, closes the breaker, restores the budget.
    pub fn reset(&self) {
        self.gov.reset()
    }

    /// The server breaker's state.
    pub fn breaker_state(&self) -> BreakerState {
        self.gov.breaker_state(SERVER_KEY)
    }
}

fn classify(e: &WebError) -> Class {
    match e {
        WebError::NotFound(_) => Class::Absence,
        _ if e.is_transient() => Class::Transient,
        _ => Class::Permanent,
    }
}

fn rejected(url: &Url) -> WebError {
    WebError::Unavailable {
        url: url.clone(),
        status: 503,
    }
}

impl<P: PageServer> PageServer for ResilientServer<'_, P> {
    fn get(&self, url: &Url) -> websim::Result<PageResponse> {
        self.gov.call(
            SERVER_KEY,
            || self.inner.get(url),
            classify,
            || rejected(url),
        )
    }

    fn head(&self, url: &Url) -> websim::Result<HeadResponse> {
        self.gov.call(
            SERVER_KEY,
            || self.inner.head(url),
            classify,
            || rejected(url),
        )
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::{FaultPlan, FaultRule, VirtualServer};

    fn server() -> VirtualServer {
        let s = VirtualServer::new();
        s.put(Url::new("/a.html"), "APage", "<html>A</html>");
        s
    }

    #[test]
    fn retries_ride_over_injected_transients() {
        let s = server();
        // Default per-URL cap of 2 injections < 4 attempts → every call
        // eventually succeeds.
        s.set_fault_plan(FaultPlan::new(9).with_rule(FaultRule::unavailable(1.0)));
        let rs = ResilientServer::new(&s, RetryPolicy::new(4));
        let url = Url::new("/a.html");
        let resp = rs.get(&url).unwrap();
        assert_eq!(&resp.body[..], b"<html>A</html>");
        let stats = rs.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.giveups, 0);
        // Counter separation: one successful GET, two counted faults,
        // retries never leak into the access statistics.
        let access = s.stats();
        assert_eq!(access.gets, 1);
        assert_eq!(access.faults.unavailable, 2);
    }

    #[test]
    fn head_is_retried_too() {
        let s = server();
        s.set_fault_plan(FaultPlan::new(9).with_rule(FaultRule::timeouts(1.0)));
        let rs = ResilientServer::new(&s, RetryPolicy::new(4));
        assert!(rs.head(&Url::new("/a.html")).is_ok());
        assert_eq!(rs.stats().retries, 2);
        assert_eq!(s.stats().heads, 1);
    }

    #[test]
    fn link_rot_is_final_and_breaker_neutral() {
        let s = server();
        s.set_fault_plan(FaultPlan::new(9).with_rule(FaultRule::link_rot(1.0)));
        let rs = ResilientServer::new(&s, RetryPolicy::new(4));
        for _ in 0..6 {
            assert!(matches!(
                rs.get(&Url::new("/a.html")),
                Err(WebError::NotFound(_))
            ));
        }
        assert_eq!(rs.stats().retries, 0);
        assert_eq!(rs.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn persistent_outage_trips_the_server_breaker() {
        let s = server();
        s.set_fault_plan(
            FaultPlan::new(9).with_rule(FaultRule::unavailable(1.0).with_max_per_url(None)),
        );
        let rs = ResilientServer::with_breaker(
            &s,
            RetryPolicy::no_retries(),
            BreakerConfig {
                failure_threshold: 3,
                cooldown_rejections: 100,
            },
        );
        let url = Url::new("/a.html");
        for _ in 0..3 {
            assert!(rs.get(&url).is_err());
        }
        assert_eq!(rs.breaker_state(), BreakerState::Open);
        let faults_before = s.stats().faults;
        assert!(rs.get(&url).is_err()); // rejected, not attempted
        assert_eq!(s.stats().faults, faults_before);
        assert_eq!(rs.stats().breaker_rejections, 1);
        assert_eq!(rs.stats().breaker_trips, 1);
    }

    #[test]
    fn now_delegates() {
        let s = server();
        let rs = ResilientServer::new(&s, RetryPolicy::default());
        assert_eq!(rs.now(), s.now());
    }
}
