//! The shared retry/breaker engine behind both resilient wrappers.

use crate::breaker::{Breaker, BreakerConfig, BreakerState};
use crate::policy::RetryPolicy;
use crate::stats::{ResilienceSnapshot, StatCells};
use obs::trace::{EventKind, FieldValue, TraceSink};
use obs::MetricsRegistry;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// How a call-level error should be treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Class {
    /// The page does not exist (404). Final, and *not* a server failure:
    /// no retry, no breaker effect.
    Absence,
    /// A retry may succeed (5xx, timeout).
    Transient,
    /// Retrying is pointless (malformed body, infrastructure error), but
    /// the failure does count toward the breaker.
    Permanent,
}

pub(crate) struct Governor {
    policy: RetryPolicy,
    stats: StatCells,
    breakers: Mutex<HashMap<String, Breaker>>,
    breaker_cfg: BreakerConfig,
    budget_left: Mutex<Option<u64>>,
    jitter: Mutex<StdRng>,
    /// Optional trace sink: retries, give-ups and breaker transitions
    /// become [`EventKind::Resilience`] events. `None` costs nothing.
    trace: Option<TraceSink>,
}

impl Governor {
    pub(crate) fn new(policy: RetryPolicy, breaker_cfg: BreakerConfig) -> Self {
        Governor {
            jitter: Mutex::new(StdRng::seed_from_u64(policy.jitter_seed)),
            budget_left: Mutex::new(policy.retry_budget),
            policy,
            stats: StatCells::default(),
            breakers: Mutex::new(HashMap::new()),
            breaker_cfg,
            trace: None,
        }
    }

    pub(crate) fn set_trace(&mut self, sink: &TraceSink) {
        self.trace = Some(sink.clone());
    }

    pub(crate) fn metrics(&self) -> &MetricsRegistry {
        self.stats.registry()
    }

    fn trace_event(&self, name: &str, key: &str, extra: Vec<(String, FieldValue)>) {
        if let Some(sink) = &self.trace {
            let mut fields = vec![("key".to_string(), FieldValue::Str(key.to_string()))];
            fields.extend(extra);
            sink.event(EventKind::Resilience, name, None, fields);
        }
    }

    pub(crate) fn snapshot(&self) -> ResilienceSnapshot {
        self.stats.snapshot()
    }

    pub(crate) fn reset(&self) {
        self.stats.reset();
        self.breakers.lock().clear();
        *self.budget_left.lock() = self.policy.retry_budget;
    }

    pub(crate) fn breaker_state(&self, key: &str) -> BreakerState {
        self.breakers
            .lock()
            .get(key)
            .map(Breaker::state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Spends one unit of retry budget; `false` means the budget ran out.
    fn take_budget(&self) -> bool {
        let mut left = self.budget_left.lock();
        match left.as_mut() {
            None => true,
            Some(0) => false,
            Some(n) => {
                *n -= 1;
                true
            }
        }
    }

    /// Runs `op` under the retry policy and the `key`-scoped breaker.
    /// `classify` maps errors onto the taxonomy; `rejected` builds the
    /// error for calls an Open breaker refuses to attempt.
    pub(crate) fn call<T, E>(
        &self,
        key: &str,
        mut op: impl FnMut() -> Result<T, E>,
        classify: impl Fn(&E) -> Class,
        rejected: impl FnOnce() -> E,
    ) -> Result<T, E> {
        {
            let mut breakers = self.breakers.lock();
            let b = breakers
                .entry(key.to_string())
                .or_insert_with(|| Breaker::new(self.breaker_cfg));
            if !b.admit() {
                drop(breakers);
                self.stats.breaker_rejections.inc();
                self.trace_event("breaker.reject", key, vec![]);
                return Err(rejected());
            }
        }
        let started = std::time::Instant::now();
        let mut attempt = 1u32;
        // (outcome, counts as call-level failure for the breaker?)
        let (result, failed) = loop {
            match op() {
                Ok(v) => break (Ok(v), false),
                Err(e) => match classify(&e) {
                    Class::Absence => break (Err(e), false),
                    Class::Permanent => break (Err(e), true),
                    Class::Transient => {
                        if attempt >= self.policy.max_attempts {
                            self.stats.giveups.inc();
                            self.trace_event(
                                "giveup",
                                key,
                                vec![("reason".to_string(), "max_attempts".into())],
                            );
                            break (Err(e), true);
                        }
                        if !self.take_budget() {
                            self.stats.budget_exhausted.inc();
                            self.stats.giveups.inc();
                            self.trace_event(
                                "giveup",
                                key,
                                vec![("reason".to_string(), "budget_exhausted".into())],
                            );
                            break (Err(e), true);
                        }
                        self.stats.retries.inc();
                        let jitter = if self.policy.base_backoff_us > 0 {
                            self.jitter.lock().gen_range(0..self.policy.base_backoff_us)
                        } else {
                            0
                        };
                        let delay = self.policy.backoff_step_us(attempt) + jitter;
                        self.stats.backoff_us.add(delay);
                        self.trace_event(
                            "retry",
                            key,
                            vec![
                                ("attempt".to_string(), u64::from(attempt).into()),
                                ("delay_us".to_string(), delay.into()),
                            ],
                        );
                        if self.policy.sleep_backoff {
                            std::thread::sleep(std::time::Duration::from_micros(delay));
                        }
                        attempt += 1;
                    }
                },
            }
        };
        if let Some(timeout_us) = self.policy.request_timeout_us {
            if started.elapsed().as_micros() as u64 > timeout_us {
                self.stats.slow_responses.inc();
            }
        }
        match (&result, failed) {
            // Absence is final but says nothing about server health.
            (Err(_), false) => {}
            (Ok(_), _) => {
                let mut breakers = self.breakers.lock();
                let b = breakers.get_mut(key).expect("breaker created on admission");
                let was = b.state();
                b.on_success();
                let closed = was != BreakerState::Closed && b.state() == BreakerState::Closed;
                drop(breakers);
                if closed {
                    self.trace_event("breaker.close", key, vec![]);
                }
            }
            (Err(_), true) => {
                let tripped = self
                    .breakers
                    .lock()
                    .get_mut(key)
                    .expect("breaker created on admission")
                    .on_failure();
                if tripped {
                    self.stats.breaker_trips.inc();
                    self.trace_event("breaker.trip", key, vec![]);
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn gov(policy: RetryPolicy) -> Governor {
        Governor::new(policy, BreakerConfig::default())
    }

    #[test]
    fn retries_until_success() {
        let g = gov(RetryPolicy::new(4));
        let failures = Cell::new(2u32);
        let out: Result<u32, &str> = g.call(
            "k",
            || {
                if failures.get() > 0 {
                    failures.set(failures.get() - 1);
                    Err("503")
                } else {
                    Ok(7)
                }
            },
            |_| Class::Transient,
            || "rejected",
        );
        assert_eq!(out, Ok(7));
        let s = g.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.giveups, 0);
        assert!(s.backoff_us > 0);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let g = gov(RetryPolicy::new(3));
        let calls = Cell::new(0u32);
        let out: Result<(), &str> = g.call(
            "k",
            || {
                calls.set(calls.get() + 1);
                Err("503")
            },
            |_| Class::Transient,
            || "rejected",
        );
        assert!(out.is_err());
        assert_eq!(calls.get(), 3);
        let s = g.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.giveups, 1);
    }

    #[test]
    fn absence_and_permanent_are_not_retried() {
        for class in [Class::Absence, Class::Permanent] {
            let g = gov(RetryPolicy::new(5));
            let calls = Cell::new(0u32);
            let out: Result<(), &str> = g.call(
                "k",
                || {
                    calls.set(calls.get() + 1);
                    Err("nope")
                },
                |_| class,
                || "rejected",
            );
            assert!(out.is_err());
            assert_eq!(calls.get(), 1, "{class:?} must not retry");
            assert_eq!(g.snapshot().retries, 0);
        }
    }

    #[test]
    fn budget_exhaustion_stops_retrying() {
        let g = gov(RetryPolicy::new(10).with_retry_budget(3));
        for _ in 0..3 {
            let _: Result<(), &str> =
                g.call("k", || Err("503"), |_| Class::Transient, || "rejected");
        }
        let s = g.snapshot();
        // The first call spends the whole budget (3 retries) then gives
        // up; the next two calls are denied a first retry outright.
        assert_eq!(s.retries, 3);
        assert_eq!(s.budget_exhausted, 3);
        assert_eq!(s.giveups, 3);
    }

    #[test]
    fn breaker_trips_and_rejects_then_recovers() {
        let g = Governor::new(
            RetryPolicy::no_retries(),
            BreakerConfig {
                failure_threshold: 2,
                cooldown_rejections: 2,
            },
        );
        let healthy = Cell::new(false);
        let run = |g: &Governor| -> Result<(), &'static str> {
            g.call(
                "k",
                || if healthy.get() { Ok(()) } else { Err("503") },
                |_| Class::Transient,
                || "breaker open",
            )
        };
        assert!(run(&g).is_err());
        assert!(run(&g).is_err()); // trips
        assert_eq!(g.breaker_state("k"), BreakerState::Open);
        assert_eq!(run(&g), Err("breaker open"));
        assert_eq!(run(&g), Err("breaker open"));
        assert_eq!(g.breaker_state("k"), BreakerState::HalfOpen);
        healthy.set(true);
        assert!(run(&g).is_ok()); // probe succeeds
        assert_eq!(g.breaker_state("k"), BreakerState::Closed);
        let s = g.snapshot();
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.breaker_rejections, 2);
    }

    #[test]
    fn absence_does_not_feed_the_breaker() {
        let g = Governor::new(
            RetryPolicy::no_retries(),
            BreakerConfig {
                failure_threshold: 2,
                cooldown_rejections: 1,
            },
        );
        for _ in 0..10 {
            let _: Result<(), &str> = g.call("k", || Err("404"), |_| Class::Absence, || "open");
        }
        assert_eq!(g.breaker_state("k"), BreakerState::Closed);
        assert_eq!(g.snapshot().breaker_trips, 0);
    }

    #[test]
    fn keys_have_independent_breakers() {
        let g = Governor::new(
            RetryPolicy::no_retries(),
            BreakerConfig {
                failure_threshold: 1,
                cooldown_rejections: 100,
            },
        );
        let _: Result<(), &str> = g.call("sick", || Err("503"), |_| Class::Transient, || "open");
        assert_eq!(g.breaker_state("sick"), BreakerState::Open);
        assert_eq!(g.breaker_state("fine"), BreakerState::Closed);
        let ok: Result<u32, &str> = g.call("fine", || Ok(1), |_| Class::Transient, || "open");
        assert_eq!(ok, Ok(1));
    }

    #[test]
    fn jitter_stream_is_deterministic_per_seed() {
        let run = || {
            let g = gov(RetryPolicy::new(4).with_jitter_seed(42));
            let _: Result<(), &str> =
                g.call("k", || Err("503"), |_| Class::Transient, || "rejected");
            g.snapshot().backoff_us
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_restores_budget_and_breakers() {
        let g = Governor::new(
            RetryPolicy::no_retries().with_retry_budget(1),
            BreakerConfig {
                failure_threshold: 1,
                cooldown_rejections: 100,
            },
        );
        let _: Result<(), &str> = g.call("k", || Err("503"), |_| Class::Transient, || "open");
        assert_eq!(g.breaker_state("k"), BreakerState::Open);
        g.reset();
        assert_eq!(g.breaker_state("k"), BreakerState::Closed);
        assert!(g.snapshot().is_quiet());
    }
}
