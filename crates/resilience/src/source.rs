//! A fault-tolerant [`PageSource`] wrapper.

use crate::breaker::{BreakerConfig, BreakerState};
use crate::govern::{Class, Governor};
use crate::policy::RetryPolicy;
use crate::stats::ResilienceSnapshot;
use adm::{Tuple, Url};
use nalg::{PageSource, SourceError};

/// Wraps any [`PageSource`] with retries and per-scheme circuit breakers.
///
/// Transient errors ([`SourceError::Unavailable`], [`SourceError::Timeout`])
/// are retried under the [`RetryPolicy`]; permanent ones are returned
/// immediately. The breaker is keyed by page scheme — a sick department
/// server (all `ProfPage` fetches failing) stops being hammered while
/// `CoursePage` fetches flow on. Calls an Open breaker rejects fail with
/// [`SourceError::Unavailable`] without touching the inner source.
///
/// The wrapper is itself a [`PageSource`], so it drops into every consumer
/// unchanged: sequential evaluation, the concurrent fetch pool (it is
/// `Sync` when the inner source is), the crawler, and statistics
/// collection.
pub struct ResilientSource<'a, S> {
    inner: &'a S,
    gov: Governor,
}

impl<'a, S: PageSource> ResilientSource<'a, S> {
    /// Wraps `inner` under `policy` with default breaker tuning.
    pub fn new(inner: &'a S, policy: RetryPolicy) -> Self {
        ResilientSource {
            inner,
            gov: Governor::new(policy, BreakerConfig::default()),
        }
    }

    /// Overrides the breaker tuning.
    pub fn with_breaker(inner: &'a S, policy: RetryPolicy, breaker: BreakerConfig) -> Self {
        ResilientSource {
            inner,
            gov: Governor::new(policy, breaker),
        }
    }

    /// Attaches a trace sink: retries, give-ups and breaker transitions
    /// are recorded as [`obs::trace::EventKind::Resilience`] events.
    /// No effect on accounting.
    pub fn with_trace(mut self, sink: &obs::trace::TraceSink) -> Self {
        self.gov.set_trace(sink);
        self
    }

    /// The registry backing this wrapper's counters (prefix `resilience`).
    pub fn metrics(&self) -> &obs::MetricsRegistry {
        self.gov.metrics()
    }

    /// Current resilience counters (never part of page-access statistics).
    pub fn stats(&self) -> ResilienceSnapshot {
        self.gov.snapshot()
    }

    /// Zeroes the counters, closes every breaker, and restores the retry
    /// budget.
    pub fn reset(&self) {
        self.gov.reset()
    }

    /// The breaker state for a page scheme.
    pub fn breaker_state(&self, scheme: &str) -> BreakerState {
        self.gov.breaker_state(scheme)
    }
}

fn classify(e: &SourceError) -> Class {
    match e {
        SourceError::NotFound(_) => Class::Absence,
        _ if e.is_transient() => Class::Transient,
        _ => Class::Permanent,
    }
}

impl<S: PageSource> PageSource for ResilientSource<'_, S> {
    fn fetch(&self, url: &Url, scheme: &str) -> Result<Tuple, SourceError> {
        self.fetch_stamped(url, scheme).map(|(t, _)| t)
    }

    fn fetch_stamped(&self, url: &Url, scheme: &str) -> Result<(Tuple, Option<u64>), SourceError> {
        self.gov.call(
            scheme,
            || self.inner.fetch_stamped(url, scheme),
            classify,
            || SourceError::Unavailable {
                url: url.clone(),
                reason: format!("circuit breaker open for scheme {scheme}"),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Fails each URL `fail_first` times with the given error, then serves.
    struct FlakySource {
        pages: HashMap<Url, Tuple>,
        fail_first: u32,
        error: fn(&Url) -> SourceError,
        attempts: parking_lot::Mutex<HashMap<Url, u32>>,
        calls: AtomicU32,
    }

    impl FlakySource {
        fn new(fail_first: u32, error: fn(&Url) -> SourceError) -> Self {
            let mut pages = HashMap::new();
            pages.insert(Url::new("/p"), Tuple::new().with("Name", "p"));
            FlakySource {
                pages,
                fail_first,
                error,
                attempts: parking_lot::Mutex::new(HashMap::new()),
                calls: AtomicU32::new(0),
            }
        }
    }

    impl PageSource for FlakySource {
        fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let mut attempts = self.attempts.lock();
            let n = attempts.entry(url.clone()).or_insert(0);
            *n += 1;
            if *n <= self.fail_first {
                return Err((self.error)(url));
            }
            self.pages
                .get(url)
                .cloned()
                .ok_or_else(|| SourceError::NotFound(url.clone()))
        }
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let src = FlakySource::new(2, |u| SourceError::Timeout(u.clone()));
        let rs = ResilientSource::new(&src, RetryPolicy::new(4));
        let t = rs.fetch(&Url::new("/p"), "P").unwrap();
        assert_eq!(t.get("Name").unwrap().as_text(), Some("p"));
        assert_eq!(src.calls.load(Ordering::SeqCst), 3);
        let s = rs.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.giveups, 0);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let src = FlakySource::new(99, |u| SourceError::Malformed {
            url: u.clone(),
            reason: "truncated".into(),
        });
        let rs = ResilientSource::new(&src, RetryPolicy::new(4));
        assert!(matches!(
            rs.fetch(&Url::new("/p"), "P"),
            Err(SourceError::Malformed { .. })
        ));
        assert_eq!(src.calls.load(Ordering::SeqCst), 1);
        assert_eq!(rs.stats().retries, 0);
    }

    #[test]
    fn not_found_passes_through_untouched() {
        let src = FlakySource::new(0, |u| SourceError::NotFound(u.clone()));
        let rs = ResilientSource::new(&src, RetryPolicy::new(4));
        assert!(matches!(
            rs.fetch(&Url::new("/missing"), "P"),
            Err(SourceError::NotFound(_))
        ));
        assert_eq!(src.calls.load(Ordering::SeqCst), 1);
        assert!(rs.stats().is_quiet());
        assert_eq!(rs.breaker_state("P"), BreakerState::Closed);
    }

    #[test]
    fn exhausted_retries_give_up_with_the_last_error() {
        let src = FlakySource::new(99, |u| SourceError::Unavailable {
            url: u.clone(),
            reason: "http 503".into(),
        });
        let rs = ResilientSource::new(&src, RetryPolicy::new(3));
        assert!(matches!(
            rs.fetch(&Url::new("/p"), "P"),
            Err(SourceError::Unavailable { .. })
        ));
        assert_eq!(src.calls.load(Ordering::SeqCst), 3);
        let s = rs.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.giveups, 1);
    }

    #[test]
    fn breaker_is_per_scheme() {
        let src = FlakySource::new(99, |u| SourceError::Timeout(u.clone()));
        let rs = ResilientSource::with_breaker(
            &src,
            RetryPolicy::no_retries(),
            BreakerConfig {
                failure_threshold: 2,
                cooldown_rejections: 100,
            },
        );
        for _ in 0..2 {
            let _ = rs.fetch(&Url::new("/p"), "Sick");
        }
        assert_eq!(rs.breaker_state("Sick"), BreakerState::Open);
        assert_eq!(rs.breaker_state("Fine"), BreakerState::Closed);
        // Rejected without touching the inner source.
        let calls_before = src.calls.load(Ordering::SeqCst);
        let err = rs.fetch(&Url::new("/p"), "Sick").unwrap_err();
        assert!(matches!(err, SourceError::Unavailable { .. }));
        assert!(err.to_string().contains("circuit breaker open"));
        assert_eq!(src.calls.load(Ordering::SeqCst), calls_before);
        assert_eq!(rs.stats().breaker_rejections, 1);
    }

    #[test]
    fn fault_free_wrapper_is_invisible() {
        let src = FlakySource::new(0, |u| SourceError::NotFound(u.clone()));
        let rs = ResilientSource::new(&src, RetryPolicy::default());
        for _ in 0..5 {
            rs.fetch(&Url::new("/p"), "P").unwrap();
        }
        assert_eq!(src.calls.load(Ordering::SeqCst), 5);
        assert!(rs.stats().is_quiet());
    }
}
