//! Retry policies: how often, how long, and at what total cost.

/// When and how to retry a transient fetch failure.
///
/// Backoff is capped exponential: attempt *n* (1-based) waits
/// `min(base_backoff_us · 2^(n−1), max_backoff_us)` plus a seeded-jitter
/// term in `[0, base_backoff_us)`. The jitter stream is deterministic per
/// [`RetryPolicy::jitter_seed`], so a chaos run is reproducible end to
/// end. By default the computed backoff is only *recorded* (in
/// [`crate::ResilienceSnapshot::backoff_us`]), not slept — the virtual web
/// has no real network to decongest — but [`RetryPolicy::with_sleep`]
/// opts into real sleeping for wall-clock experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (≥ 1).
    pub max_attempts: u32,
    /// First backoff step in microseconds; also the jitter span.
    pub base_backoff_us: u64,
    /// Upper bound on any single backoff step (before jitter).
    pub max_backoff_us: u64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Optional cross-call budget: total retries this wrapper may spend
    /// over its lifetime. Exhausted budget turns transient failures into
    /// immediate give-ups.
    pub retry_budget: Option<u64>,
    /// Observational per-request timeout: calls that take longer are
    /// counted as `slow_responses` (they still return their result — the
    /// simulated web cannot abandon an in-flight request).
    pub request_timeout_us: Option<u64>,
    /// Whether to actually sleep the computed backoff.
    pub sleep_backoff: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_us: 100,
            max_backoff_us: 10_000,
            jitter_seed: 0,
            retry_budget: None,
            request_timeout_us: None,
            sleep_backoff: false,
        }
    }
}

impl RetryPolicy {
    /// A policy with the given attempt count and default backoff.
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// A policy that never retries (every failure is final).
    pub fn no_retries() -> Self {
        RetryPolicy::new(1)
    }

    /// Sets the backoff curve (base step and cap, microseconds).
    pub fn with_backoff(mut self, base_us: u64, max_us: u64) -> Self {
        self.base_backoff_us = base_us;
        self.max_backoff_us = max_us.max(base_us);
        self
    }

    /// Seeds the jitter stream.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Caps the total retries spent across all calls.
    pub fn with_retry_budget(mut self, budget: u64) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Flags calls slower than `timeout_us` as slow responses.
    pub fn with_request_timeout_us(mut self, timeout_us: u64) -> Self {
        self.request_timeout_us = Some(timeout_us);
        self
    }

    /// Actually sleeps the computed backoff between attempts.
    pub fn with_sleep(mut self) -> Self {
        self.sleep_backoff = true;
        self
    }

    /// The capped exponential step before jitter for the given (1-based)
    /// failed attempt.
    pub(crate) fn backoff_step_us(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(20);
        self.base_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy::default().with_backoff(100, 450);
        assert_eq!(p.backoff_step_us(1), 100);
        assert_eq!(p.backoff_step_us(2), 200);
        assert_eq!(p.backoff_step_us(3), 400);
        assert_eq!(p.backoff_step_us(4), 450); // capped
        assert_eq!(p.backoff_step_us(60), 450); // shift saturates, still capped
    }

    #[test]
    fn at_least_one_attempt() {
        assert_eq!(RetryPolicy::new(0).max_attempts, 1);
        assert_eq!(RetryPolicy::no_retries().max_attempts, 1);
    }
}
