//! Per-key circuit breakers.
//!
//! A breaker watches *call-level* outcomes (after the retry loop has done
//! its work): consecutive failures trip it **Open**, in which state calls
//! are rejected without touching the network. Because the simulated web
//! has no independent clock to wait on, cooldown is counted in *rejected
//! calls* rather than wall time — after `cooldown_rejections` fast-fails
//! the breaker moves to **HalfOpen** and lets a single probe through;
//! the probe's outcome either closes the breaker or re-opens it. Page
//! absence (404) never counts toward tripping: a missing page is a fact
//! about the site, not the server's health.

/// Tuning of a circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive call-level failures that trip the breaker Open.
    pub failure_threshold: u32,
    /// Rejected calls the Open state absorbs before allowing a probe.
    pub cooldown_rejections: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_rejections: 3,
        }
    }
}

/// The externally visible state of a breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; failures are being counted.
    Closed,
    /// Calls are rejected without being attempted.
    Open,
    /// One probe call is allowed through to test recovery.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { consecutive: u32 },
    Open { rejected: u32 },
    HalfOpen,
}

/// One circuit breaker (the resilient wrappers keep one per key).
#[derive(Debug)]
pub(crate) struct Breaker {
    cfg: BreakerConfig,
    state: State,
}

impl Breaker {
    pub(crate) fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg,
            state: State::Closed { consecutive: 0 },
        }
    }

    /// May the next call proceed? A `false` is a rejection and counts
    /// toward the Open state's cooldown.
    pub(crate) fn admit(&mut self) -> bool {
        match self.state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { rejected } => {
                let rejected = rejected + 1;
                self.state = if rejected >= self.cfg.cooldown_rejections {
                    State::HalfOpen
                } else {
                    State::Open { rejected }
                };
                false
            }
        }
    }

    /// Records a successful call.
    pub(crate) fn on_success(&mut self) {
        self.state = State::Closed { consecutive: 0 };
    }

    /// Records a failed call; returns `true` when this failure tripped the
    /// breaker (Closed→Open or HalfOpen→Open).
    pub(crate) fn on_failure(&mut self) -> bool {
        match self.state {
            State::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.cfg.failure_threshold {
                    self.state = State::Open { rejected: 0 };
                    true
                } else {
                    self.state = State::Closed { consecutive };
                    false
                }
            }
            State::HalfOpen => {
                self.state = State::Open { rejected: 0 };
                true
            }
            State::Open { .. } => false,
        }
    }

    pub(crate) fn state(&self) -> BreakerState {
        match self.state {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen => BreakerState::HalfOpen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_rejections: 2,
        }
    }

    #[test]
    fn trips_after_consecutive_failures() {
        let mut b = Breaker::new(cfg());
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert!(b.on_failure()); // third trips
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit());
    }

    #[test]
    fn success_resets_the_count() {
        let mut b = Breaker::new(cfg());
        b.on_failure();
        b.on_failure();
        b.on_success();
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_then_half_open_probe() {
        let mut b = Breaker::new(cfg());
        for _ in 0..3 {
            b.on_failure();
        }
        // Two rejections of cooldown…
        assert!(!b.admit());
        assert!(!b.admit());
        // …then a probe is admitted.
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit());
        // A successful probe closes the breaker for good.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = Breaker::new(cfg());
        for _ in 0..3 {
            b.on_failure();
        }
        while !b.admit() {}
        assert!(b.on_failure()); // failed probe counts as a trip
        assert_eq!(b.state(), BreakerState::Open);
    }
}
