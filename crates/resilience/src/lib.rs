//! # resilience — fault tolerance for the web-view engine
//!
//! The paper's execution model assumes every navigation succeeds; its
//! motivating setting — live web sites — is exactly where fetches time
//! out, links rot, and pages come back truncated. This crate supplies the
//! machinery that lets the rest of the engine keep the paper's model while
//! surviving a faulty web:
//!
//! * [`RetryPolicy`] — capped exponential backoff with seeded jitter, an
//!   optional cross-call retry budget, and an (observational) per-request
//!   timeout;
//! * [`BreakerConfig`] / [`BreakerState`] — a per-key circuit breaker
//!   (keyed by page scheme for query sources, a single key for servers)
//!   that fast-fails calls after consecutive failures and recovers through
//!   a half-open probe;
//! * [`ResilientSource`] — wraps any [`nalg::PageSource`] (the live
//!   source, a cached source, …) so query evaluation, the fetch worker
//!   pool, the crawler, and statistics collection all retry transient
//!   errors transparently;
//! * [`ResilientServer`] — wraps any [`websim::PageServer`] so
//!   materialized-view URL-checks and refreshes get the same treatment;
//! * [`HedgePolicy`] — tail-latency hedging for pooled fetches: after a
//!   (seeded, jittered) delay — typically a high latency quantile — one
//!   backup GET races the laggard, first response wins, and the loser is
//!   cancelled cooperatively through an [`obs::CancelToken`];
//! * [`AdmissionControl`] — a bounded-concurrency gate for serving
//!   layers: at most `capacity` sessions hold permits at a time, and
//!   requests beyond the limit are shed (answered as empty partial
//!   results upstream) instead of queueing;
//! * [`ConstraintHealth`] — the constraint-drift defense: per-constraint
//!   violation accounting fed by runtime auditing, quarantine with TTL
//!   re-admission, and the registry the optimizer consults so quarantined
//!   constraints stop licensing rewrites.
//!
//! **Counter separation.** Every action this crate takes is counted in
//! [`ResilienceSnapshot`] — retries, give-ups, breaker trips and
//! rejections, budget exhaustion — and *never* in the paper's page-access
//! statistics. A retried GET that eventually succeeds is one download; a
//! failed attempt is zero downloads plus one retry. With a zero-fault
//! plan the wrappers are pure pass-throughs and every paper number is
//! byte-identical to running without them (pinned by the equivalence
//! proptests in `tests/chaos_equivalence.rs`).

pub mod admission;
pub mod breaker;
mod govern;
pub mod health;
pub mod hedge;
pub mod policy;
pub mod server;
pub mod source;
pub mod stats;

pub use admission::{AdmissionControl, AdmissionPermit, AdmissionStats};
pub use breaker::{BreakerConfig, BreakerState};
pub use health::{ConstraintHealth, ConstraintHealthSnapshot};
pub use hedge::HedgePolicy;
pub use policy::RetryPolicy;
pub use server::ResilientServer;
pub use source::ResilientSource;
pub use stats::ResilienceSnapshot;
// Deadline budgets and cooperative cancellation live in `obs` (they are
// ambient request state), but they are resilience mechanisms — re-export
// them so serving code can configure everything from one place.
pub use obs::{CancelToken, Deadline};
