//! Recursive-descent parser: SQL subset → [`wvcore::ConjunctiveQuery`].

use crate::lexer::{tokenize, Spanned, Token};
use crate::Result;
use std::fmt;
use wvcore::views::ViewCatalog;
use wvcore::ConjunctiveQuery;

/// A parse or name-resolution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the query text (when known).
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates an error.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Term {
    Attr {
        qualifier: Option<String>,
        attr: String,
    },
    Literal(String),
}

#[derive(Debug)]
struct RawQuery {
    /// `None` means `SELECT *` (all attributes of all atoms).
    projection: Option<Vec<(Option<String>, String)>>,
    atoms: Vec<(String, Option<String>)>, // (relation, alias)
    conditions: Vec<(Term, Term)>,
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(usize::MAX)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(ParseError::new(
                self.offset(),
                format!("expected {kw}, found {other:?}"),
            )),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(
                self.offset(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    /// `[qualifier.]attr`
    fn attr_ref(&mut self) -> Result<(Option<String>, String)> {
        let first = self.ident()?;
        if matches!(self.peek(), Some(Token::Dot)) {
            self.pos += 1;
            let attr = self.ident()?;
            Ok((Some(first), attr))
        } else {
            Ok((None, first))
        }
    }

    fn term(&mut self) -> Result<Term> {
        match self.peek() {
            Some(Token::StringLit(_)) => {
                let Some(Token::StringLit(s)) = self.next() else {
                    unreachable!()
                };
                Ok(Term::Literal(s))
            }
            Some(Token::Number(_)) => {
                let Some(Token::Number(n)) = self.next() else {
                    unreachable!()
                };
                Ok(Term::Literal(n))
            }
            _ => {
                let (q, a) = self.attr_ref()?;
                Ok(Term::Attr {
                    qualifier: q,
                    attr: a,
                })
            }
        }
    }

    fn parse(&mut self) -> Result<RawQuery> {
        self.expect_keyword("SELECT")?;
        self.eat_keyword("DISTINCT"); // projection is set-semantic anyway
        let projection = if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            None
        } else {
            let mut items = Vec::new();
            loop {
                items.push(self.attr_ref()?);
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.pos += 1;
            }
            Some(items)
        };
        self.expect_keyword("FROM")?;
        let mut atoms = Vec::new();
        loop {
            let rel = self.ident()?;
            let has_alias = self.eat_keyword("AS") || matches!(self.peek(), Some(Token::Ident(_)));
            let alias = if has_alias { Some(self.ident()?) } else { None };
            atoms.push((rel, alias));
            if !matches!(self.peek(), Some(Token::Comma)) {
                break;
            }
            self.pos += 1;
        }
        let mut conditions = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                let l = self.term()?;
                match self.next() {
                    Some(Token::Equals) => {}
                    other => {
                        return Err(ParseError::new(
                            self.offset(),
                            format!("expected `=`, found {other:?}"),
                        ))
                    }
                }
                let r = self.term()?;
                conditions.push((l, r));
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        if self.pos < self.tokens.len() {
            return Err(ParseError::new(self.offset(), "unexpected trailing tokens"));
        }
        Ok(RawQuery {
            projection,
            atoms,
            conditions,
        })
    }
}

/// Resolves a `[qualifier.]attr` reference to an atom index.
fn resolve(
    raw: &RawQuery,
    catalog: &ViewCatalog,
    qualifier: &Option<String>,
    attr: &str,
    offset_hint: &str,
) -> Result<usize> {
    if let Some(q) = qualifier {
        // alias first, then relation name (if used exactly once)
        if let Some(i) = raw
            .atoms
            .iter()
            .position(|(_, a)| a.as_deref() == Some(q.as_str()))
        {
            return Ok(i);
        }
        let matches: Vec<usize> = raw
            .atoms
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| r == q)
            .map(|(i, _)| i)
            .collect();
        return match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(ParseError::new(
                0,
                format!("unknown qualifier `{q}` in {offset_hint}"),
            )),
            _ => Err(ParseError::new(
                0,
                format!("qualifier `{q}` is ambiguous (use aliases) in {offset_hint}"),
            )),
        };
    }
    // unqualified: the unique atom whose relation has this attribute
    let mut hits = Vec::new();
    for (i, (rel, _)) in raw.atoms.iter().enumerate() {
        if let Ok(r) = catalog.relation(rel) {
            if r.attrs.iter().any(|a| a == attr) {
                hits.push(i);
            }
        }
    }
    match hits.len() {
        1 => Ok(hits[0]),
        0 => Err(ParseError::new(
            0,
            format!("attribute `{attr}` not found in any FROM relation ({offset_hint})"),
        )),
        _ => Err(ParseError::new(
            0,
            format!("attribute `{attr}` is ambiguous; qualify it ({offset_hint})"),
        )),
    }
}

/// Parses a SQL-subset query against a view catalog, producing a validated
/// conjunctive query.
pub fn parse_query(sql: &str, catalog: &ViewCatalog) -> Result<ConjunctiveQuery> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let raw = p.parse()?;
    let mut q = ConjunctiveQuery::new(sql.trim());
    for (rel, _) in &raw.atoms {
        q = q.atom(rel.clone());
    }
    match &raw.projection {
        Some(items) => {
            for (qual, attr) in items {
                let i = resolve(&raw, catalog, qual, attr, "SELECT list")?;
                q = q.project((i, attr.clone()));
            }
        }
        None => {
            // SELECT *: every attribute of every atom, in order
            for (i, (rel, _)) in raw.atoms.iter().enumerate() {
                let r = catalog
                    .relation(rel)
                    .map_err(|e| ParseError::new(0, e.to_string()))?;
                for attr in &r.attrs {
                    q = q.project((i, attr.clone()));
                }
            }
        }
    }
    for (l, r) in &raw.conditions {
        match (l, r) {
            (
                Term::Attr {
                    qualifier: ql,
                    attr: al,
                },
                Term::Attr {
                    qualifier: qr,
                    attr: ar,
                },
            ) => {
                let i = resolve(&raw, catalog, ql, al, "WHERE clause")?;
                let j = resolve(&raw, catalog, qr, ar, "WHERE clause")?;
                q = q.join((i, al.clone()), (j, ar.clone()));
            }
            (Term::Attr { qualifier, attr }, Term::Literal(v))
            | (Term::Literal(v), Term::Attr { qualifier, attr }) => {
                let i = resolve(&raw, catalog, qualifier, attr, "WHERE clause")?;
                q = q.select((i, attr.clone()), v.clone());
            }
            (Term::Literal(_), Term::Literal(_)) => {
                return Err(ParseError::new(
                    0,
                    "conditions between two literals are not supported",
                ))
            }
        }
    }
    q.validate(catalog)
        .map_err(|e| ParseError::new(0, e.to_string()))?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wvcore::views::university_catalog;

    fn cat() -> ViewCatalog {
        university_catalog()
    }

    #[test]
    fn parses_simple_selection() {
        let q = parse_query("SELECT PName FROM Professor WHERE Rank = 'Full'", &cat()).unwrap();
        assert_eq!(q.atoms, vec!["Professor"]);
        assert_eq!(q.projection, vec![(0, "PName".to_string())]);
        assert_eq!(q.selections.len(), 1);
        assert_eq!(q.selections[0].1, adm::Value::text("Full"));
    }

    #[test]
    fn parses_paper_example_71() {
        let q = parse_query(
            "SELECT c.CName, Description \
             FROM Professor p, CourseInstructor ci, Course c \
             WHERE p.PName = ci.PName AND ci.CName = c.CName \
               AND p.Rank = 'Full' AND c.Session = 'Fall'",
            &cat(),
        )
        .unwrap();
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.selections.len(), 2);
        // Description is unambiguous (only Course has it); c.CName needed
        // the alias because CourseInstructor also has CName.
        assert_eq!(
            q.projection,
            vec![(2, "CName".to_string()), (2, "Description".to_string())]
        );
    }

    #[test]
    fn unqualified_ambiguous_attr_rejected() {
        let err = parse_query("SELECT PName FROM Professor, CourseInstructor", &cat()).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn qualified_by_relation_name() {
        let q = parse_query(
            "SELECT Professor.PName FROM Professor, CourseInstructor \
             WHERE Professor.PName = CourseInstructor.PName",
            &cat(),
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.projection, vec![(0, "PName".to_string())]);
    }

    #[test]
    fn aliases_resolve() {
        let q = parse_query(
            "SELECT a.PName FROM Professor a, Professor b WHERE a.PName = b.PName",
            &cat(),
        )
        .unwrap();
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.joins, vec![((0, "PName".into()), (1, "PName".into()))]);
    }

    #[test]
    fn literal_on_left_side() {
        let q = parse_query("SELECT PName FROM Professor WHERE 'Full' = Rank", &cat()).unwrap();
        assert_eq!(q.selections.len(), 1);
    }

    #[test]
    fn numbers_as_literals() {
        let bibcat = wvcore::views::bibliography_catalog();
        let q = parse_query(
            "SELECT Editors FROM ConfEdition WHERE ConfName = 'VLDB' AND Year = 1996",
            &bibcat,
        )
        .unwrap();
        assert_eq!(q.selections.len(), 2);
        assert_eq!(q.selections[1].1, adm::Value::text("1996"));
    }

    #[test]
    fn unknown_relation_rejected() {
        assert!(parse_query("SELECT X FROM Nope", &cat()).is_err());
    }

    #[test]
    fn unknown_attribute_rejected() {
        assert!(parse_query("SELECT Salary FROM Professor", &cat()).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT PName FROM Professor GARBAGE more", &cat()).is_err());
    }

    #[test]
    fn missing_from_rejected() {
        assert!(parse_query("SELECT PName", &cat()).is_err());
    }

    #[test]
    fn select_star_expands_all_attributes() {
        let q = parse_query("SELECT * FROM Professor WHERE Rank = 'Full'", &cat()).unwrap();
        assert_eq!(
            q.projection,
            vec![
                (0, "PName".to_string()),
                (0, "Rank".to_string()),
                (0, "Email".to_string()),
            ]
        );
    }

    #[test]
    fn select_star_multiple_atoms() {
        let q = parse_query(
            "SELECT * FROM Dept, ProfDept WHERE Dept.DName = ProfDept.DName",
            &cat(),
        )
        .unwrap();
        assert_eq!(q.projection.len(), 4); // DName, Address, PName, DName
    }

    #[test]
    fn distinct_is_accepted() {
        let q = parse_query("SELECT DISTINCT Rank FROM Professor", &cat()).unwrap();
        assert_eq!(q.projection, vec![(0, "Rank".to_string())]);
    }
}
