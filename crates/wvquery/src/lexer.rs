//! Tokenizer for the SQL subset.

use crate::parser::ParseError;
use crate::Result;

/// A token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the input.
    pub offset: usize,
}

/// SQL-subset tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A keyword (upper-cased): SELECT, DISTINCT, FROM, WHERE, AND, AS.
    Keyword(String),
    /// An identifier (case-preserved).
    Ident(String),
    /// A quoted string literal (quotes stripped, escapes resolved).
    StringLit(String),
    /// A numeric literal (kept as text; the data model stores text).
    Number(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Equals,
    /// `*`
    Star,
}

const KEYWORDS: &[&str] = &["SELECT", "DISTINCT", "FROM", "WHERE", "AND", "AS"];

/// Tokenizes a query string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let offset = i;
        let token = match c {
            b',' => {
                i += 1;
                Token::Comma
            }
            b'.' => {
                i += 1;
                Token::Dot
            }
            b'=' => {
                i += 1;
                Token::Equals
            }
            b'*' => {
                i += 1;
                Token::Star
            }
            b'\'' | b'"' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new(offset, "unterminated string literal"));
                    }
                    if bytes[i] == quote {
                        // doubled quote = escaped quote (SQL style)
                        if i + 1 < bytes.len() && bytes[i + 1] == quote {
                            s.push(quote as char);
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    let ch = input[i..].chars().next().expect("in-bounds");
                    s.push(ch);
                    i += ch.len_utf8();
                }
                Token::StringLit(s)
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    // don't swallow a trailing qualifier dot (rare: 1.x)
                    if bytes[i] == b'.' && !(i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                Token::Number(input[start..i].to_string())
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    Token::Keyword(upper)
                } else {
                    Token::Ident(word.to_string())
                }
            }
            _ => {
                return Err(ParseError::new(
                    offset,
                    format!(
                        "unexpected character `{}`",
                        input[i..].chars().next().unwrap()
                    ),
                ))
            }
        };
        out.push(Spanned { token, offset });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query_tokens() {
        let toks = tokenize("SELECT PName FROM Professor WHERE Rank = 'Full'").unwrap();
        let kinds: Vec<&Token> = toks.iter().map(|s| &s.token).collect();
        assert_eq!(kinds[0], &Token::Keyword("SELECT".into()));
        assert_eq!(kinds[1], &Token::Ident("PName".into()));
        assert_eq!(kinds[2], &Token::Keyword("FROM".into()));
        assert_eq!(kinds[5], &Token::Ident("Rank".into()));
        assert_eq!(kinds[6], &Token::Equals);
        assert_eq!(kinds[7], &Token::StringLit("Full".into()));
    }

    #[test]
    fn keywords_case_insensitive_identifiers_preserved() {
        let toks = tokenize("select PName from Professor").unwrap();
        assert_eq!(toks[0].token, Token::Keyword("SELECT".into()));
        assert_eq!(toks[1].token, Token::Ident("PName".into()));
    }

    #[test]
    fn doubled_quote_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks[0].token, Token::StringLit("it's".into()));
    }

    #[test]
    fn double_quoted_strings() {
        let toks = tokenize("\"Computer Science\"").unwrap();
        assert_eq!(toks[0].token, Token::StringLit("Computer Science".into()));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("1996").unwrap();
        assert_eq!(toks[0].token, Token::Number("1996".into()));
    }

    #[test]
    fn dots_and_commas() {
        let toks = tokenize("p.PName, c.CName").unwrap();
        assert_eq!(toks[1].token, Token::Dot);
        assert_eq!(toks[3].token, Token::Comma);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let e = tokenize("SELECT ; FROM").unwrap_err();
        assert!(e.to_string().contains('`'));
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("SELECT x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }
}
