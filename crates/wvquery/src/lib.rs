//! # wvquery — the relational front end
//!
//! The paper's users "pose queries against the relational view … using
//! SQL"; the use of ADM and the navigational algebra is completely
//! transparent to them. This crate provides that interface: a hand-written
//! parser for the conjunctive (select–project–join) SQL subset, producing
//! [`wvcore::ConjunctiveQuery`] values the optimizer consumes.
//!
//! Supported grammar:
//!
//! ```text
//! query  := SELECT [DISTINCT] item (, item)*
//!           FROM rel [alias] (, rel [alias])*
//!           [WHERE cond (AND cond)*]
//! item   := [qualifier.]attr
//! cond   := term = term
//! term   := [qualifier.]attr | 'literal' | "literal" | number
//! ```
//!
//! Qualifiers are atom aliases (or relation names when used once);
//! unqualified attributes resolve against the catalog when unambiguous.

pub mod lexer;
pub mod parser;

pub use parser::{parse_query, ParseError};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ParseError>;
