//! The partially-stateful page store: a [`MatStore`] whose payloads are
//! evictable under a byte budget.
//!
//! Eviction is LRU over a single logical clock (the single-threaded
//! sibling of the `nalg::cache` sharded shape): each resident page keeps a
//! last-touch stamp, and when the budget is exceeded the coldest payloads
//! are dropped down to a **skeleton** — scheme, outlinks, stale flag — so
//! reachability sweeps stay free while the bytes go away. A read that
//! lands on a skeleton issues a targeted **upquery**: one ordinary `GET`
//! against the [`websim::PageServer`] (counted in the server's
//! page-access statistics like any other fetch) re-materializes exactly
//! that page. A budget-less store never evicts and behaves like a plain
//! `MatStore` with bookkeeping.

use crate::{DataflowError, Result};
use adm::{Tuple, Url, WebScheme};
use matview::{MatStore, StoredPage, UrlStatus};
use obs::{Counter, Gauge, MetricsRegistry};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use websim::PageServer;

/// What a page leaves behind when its payload is evicted.
#[derive(Debug, Clone)]
struct Skeleton {
    scheme: String,
    outlinks: Vec<(String, Url)>,
    stale: bool,
}

/// Point-in-time counters of a [`PartialStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Pages with their payload resident.
    pub resident_pages: u64,
    /// Pages evicted down to a skeleton.
    pub skeleton_pages: u64,
    /// Bytes held by resident payloads (URL + tuple estimate).
    pub resident_bytes: u64,
    /// Payload evictions performed.
    pub evictions: u64,
    /// Targeted upqueries issued (each one server `GET`).
    pub upqueries: u64,
}

/// A byte-budgeted page store with skeleton eviction and upqueries.
#[derive(Debug)]
pub struct PartialStore {
    mat: MatStore,
    skeletons: HashMap<Url, Skeleton>,
    budget: Option<usize>,
    bytes: usize,
    clock: u64,
    stamps: HashMap<Url, u64>,
    by_stamp: BTreeMap<u64, Url>,
    evictions: Counter,
    upqueries: Counter,
    resident_bytes_g: Gauge,
    resident_pages_g: Gauge,
    skeleton_pages_g: Gauge,
}

fn page_bytes(url: &Url, tuple: &Tuple) -> usize {
    url.as_str().len() + tuple.approx_bytes()
}

impl PartialStore {
    /// An unbudgeted store, registering its gauges/counters under
    /// `registry` (callers pass the `dataflow`-prefixed one).
    pub fn new(registry: &MetricsRegistry) -> Self {
        PartialStore {
            mat: MatStore::new(),
            skeletons: HashMap::new(),
            budget: None,
            bytes: 0,
            clock: 0,
            stamps: HashMap::new(),
            by_stamp: BTreeMap::new(),
            evictions: registry.counter("store_evictions"),
            upqueries: registry.counter("store_upqueries"),
            resident_bytes_g: registry.gauge("store.resident_bytes"),
            resident_pages_g: registry.gauge("store.resident_pages"),
            skeleton_pages_g: registry.gauge("store.skeleton_pages"),
        }
    }

    /// Sets the payload byte budget and immediately evicts down to it.
    pub fn set_budget(&mut self, ws: &WebScheme, budget: Option<usize>) {
        self.budget = budget;
        self.evict_to_budget(ws);
    }

    /// The configured byte budget.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// The wrapped [`MatStore`] (resident payloads only) — what the
    /// equivalence proptests compare against `full_refresh`.
    pub fn mat(&self) -> &MatStore {
        &self.mat
    }

    /// Direct mutable access for maintenance bookkeeping that bypasses
    /// LRU accounting (status flags, the `CheckMissing` queue).
    pub fn mat_mut(&mut self) -> &mut MatStore {
        &mut self.mat
    }

    fn touch(&mut self, url: &Url) {
        if let Some(old) = self.stamps.get(url).copied() {
            self.by_stamp.remove(&old);
            self.clock += 1;
            self.stamps.insert(url.clone(), self.clock);
            self.by_stamp.insert(self.clock, url.clone());
        }
    }

    fn refresh_gauges(&self) {
        self.resident_bytes_g.set(self.bytes as i64);
        self.resident_pages_g.set(self.mat.len() as i64);
        self.skeleton_pages_g.set(self.skeletons.len() as i64);
    }

    /// Stores a page payload (clearing any skeleton), stamps it
    /// most-recently-used, and evicts colder payloads if over budget.
    pub fn put(&mut self, ws: &WebScheme, url: Url, scheme: &str, tuple: Tuple, access_date: u64) {
        self.skeletons.remove(&url);
        if let Some(p) = self.mat.get(&url) {
            self.bytes = self.bytes.saturating_sub(page_bytes(&url, &p.tuple));
        }
        self.bytes += page_bytes(&url, &tuple);
        self.mat.put(url.clone(), scheme, tuple, access_date);
        if let Some(old) = self.stamps.get(&url).copied() {
            self.by_stamp.remove(&old);
        }
        self.clock += 1;
        self.stamps.insert(url.clone(), self.clock);
        self.by_stamp.insert(self.clock, url);
        self.evict_to_budget(ws);
        self.refresh_gauges();
    }

    /// True when the store knows the URL, resident or skeleton.
    pub fn knows(&self, url: &Url) -> bool {
        self.mat.get(url).is_some() || self.skeletons.contains_key(url)
    }

    /// The resident payload, if any (does not touch the LRU).
    pub fn resident(&self, url: &Url) -> Option<&StoredPage> {
        self.mat.get(url)
    }

    /// The page-scheme of a known page.
    pub fn scheme_of(&self, url: &Url) -> Option<String> {
        self.mat
            .get(url)
            .map(|p| p.scheme.clone())
            .or_else(|| self.skeletons.get(url).map(|s| s.scheme.clone()))
    }

    /// The stale flag of a known page.
    pub fn is_stale(&self, url: &Url) -> bool {
        self.mat.is_stale(url) || self.skeletons.get(url).is_some_and(|s| s.stale)
    }

    /// Flags a known page stale-but-retained.
    pub fn mark_stale(&mut self, url: &Url) -> bool {
        if self.mat.mark_stale(url) {
            return true;
        }
        match self.skeletons.get_mut(url) {
            Some(s) => {
                s.stale = true;
                true
            }
            None => false,
        }
    }

    /// The outlinks of a known page: computed from the resident payload,
    /// or remembered on the skeleton.
    pub fn outlinks_of(&self, ws: &WebScheme, url: &Url) -> Vec<(String, Url)> {
        if let Some(p) = self.mat.get(url) {
            if let Ok(ps) = ws.scheme(&p.scheme) {
                return matview::store::outlinks(&ps.fields, &p.tuple);
            }
        }
        self.skeletons
            .get(url)
            .map(|s| s.outlinks.clone())
            .unwrap_or_default()
    }

    /// Every known URL, sorted (resident and skeleton).
    pub fn urls(&self) -> Vec<Url> {
        let mut out: Vec<Url> = self
            .mat
            .pages_sorted()
            .into_iter()
            .map(|(u, _)| u.clone())
            .collect();
        out.extend(self.skeletons.keys().cloned());
        out.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        out.dedup();
        out
    }

    /// Reads a page, upquerying if its payload was evicted. Returns the
    /// tuple and scheme, or `None` if the page is gone (unknown, or the
    /// upquery got a definite 404 — in which case the skeleton is dropped
    /// and the URL queued on `CheckMissing`). A transient upquery failure
    /// is an error: the caller cannot know the page's content.
    pub fn read(
        &mut self,
        ws: &WebScheme,
        server: &impl PageServer,
        url: &Url,
    ) -> Result<Option<(Tuple, String)>> {
        if let Some(p) = self.mat.get(url) {
            let out = (p.tuple.clone(), p.scheme.clone());
            self.touch(url);
            return Ok(Some(out));
        }
        let Some(skel) = self.skeletons.get(url).cloned() else {
            return Ok(None);
        };
        // Upquery: one ordinary GET, counted by the server like any fetch.
        self.upqueries.inc();
        if let Some(ctx) = obs::reqctx::current() {
            ctx.sink.event(
                obs::EventKind::Dataflow,
                "dataflow.upquery",
                Some(ctx.parent),
                vec![
                    ("url".to_string(), url.as_str().into()),
                    ("request".to_string(), ctx.request_id.into()),
                ],
            );
        }
        match server.get(url) {
            Ok(resp) => {
                let ps = ws.scheme(&skel.scheme)?;
                let html = std::str::from_utf8(&resp.body)
                    .map_err(|e| DataflowError::Wrap(format!("non-utf8 at {url}: {e}")))?;
                let tuple = wrapper::wrap_page(ps, html)
                    .map_err(|e| DataflowError::Wrap(format!("{url}: {e}")))?;
                let date = resp.last_modified.max(server.now());
                self.put(ws, url.clone(), &skel.scheme, tuple.clone(), date);
                Ok(Some((tuple, skel.scheme)))
            }
            Err(e) if e.is_transient() => Err(DataflowError::Upquery {
                url: url.clone(),
                reason: e.to_string(),
            }),
            Err(_) => {
                // definitively gone: forget the skeleton, queue the sweep
                self.skeletons.remove(url);
                self.mat.set_status(url.clone(), UrlStatus::Missing);
                self.mat.check_missing.push_back(url.clone());
                self.refresh_gauges();
                Ok(None)
            }
        }
    }

    /// Evicts one page's payload down to a skeleton (no-op when not
    /// resident). Public so tests and experiments can force a miss.
    pub fn evict(&mut self, ws: &WebScheme, url: &Url) -> bool {
        let Some(p) = self.mat.get(url) else {
            return false;
        };
        let outlinks = match ws.scheme(&p.scheme) {
            Ok(ps) => matview::store::outlinks(&ps.fields, &p.tuple),
            Err(_) => Vec::new(),
        };
        let skel = Skeleton {
            scheme: p.scheme.clone(),
            outlinks,
            stale: p.stale,
        };
        self.bytes = self.bytes.saturating_sub(page_bytes(url, &p.tuple));
        self.mat.remove(url);
        self.skeletons.insert(url.clone(), skel);
        if let Some(stamp) = self.stamps.remove(url) {
            self.by_stamp.remove(&stamp);
        }
        self.evictions.inc();
        self.refresh_gauges();
        true
    }

    fn evict_to_budget(&mut self, ws: &WebScheme) {
        let Some(budget) = self.budget else {
            return;
        };
        while self.bytes > budget {
            let Some(url) = self.by_stamp.values().next().cloned() else {
                break;
            };
            if !self.evict(ws, &url) {
                break;
            }
        }
        self.refresh_gauges();
    }

    /// Drops a page entirely — payload, skeleton, stamps (a deletion, not
    /// an eviction).
    pub fn drop_page(&mut self, url: &Url) -> bool {
        if let Some(p) = self.mat.get(url) {
            self.bytes = self.bytes.saturating_sub(page_bytes(url, &p.tuple));
        }
        let mut dropped = self.mat.remove(url);
        dropped |= self.skeletons.remove(url).is_some();
        if let Some(stamp) = self.stamps.remove(url) {
            self.by_stamp.remove(&stamp);
        }
        self.refresh_gauges();
        dropped
    }

    fn recount_bytes(&mut self) {
        self.bytes = self
            .mat
            .pages_sorted()
            .iter()
            .map(|(u, p)| page_bytes(u, &p.tuple))
            .sum();
    }

    /// Crawls the site from its entry points into the store (the same BFS
    /// as [`MatStore::materialize_report`]), then rebuilds the LRU
    /// bookkeeping and applies the budget.
    pub fn materialize(&mut self, ws: &WebScheme, server: &impl PageServer) -> Result<usize> {
        let report = self
            .mat
            .materialize_report(ws, server)
            .map_err(|e| DataflowError::Wrap(e.to_string()))?;
        self.skeletons.clear();
        self.stamps.clear();
        self.by_stamp.clear();
        self.clock = 0;
        for (url, _) in self.mat.pages_sorted() {
            self.clock += 1;
            self.stamps.insert(url.clone(), self.clock);
            self.by_stamp.insert(self.clock, url.clone());
        }
        self.recount_bytes();
        self.evict_to_budget(ws);
        self.refresh_gauges();
        Ok(report.downloaded)
    }

    /// The set of URLs reachable from the scheme's entry points over
    /// known pages (resident payload outlinks or skeleton outlinks) —
    /// zero fetches.
    pub fn reachable(&self, ws: &WebScheme) -> HashSet<Url> {
        let mut reached = HashSet::new();
        let mut queue: VecDeque<Url> = ws.entry_points().iter().map(|e| e.url.clone()).collect();
        while let Some(url) = queue.pop_front() {
            if !self.knows(&url) || !reached.insert(url.clone()) {
                continue;
            }
            for (_, next) in self.outlinks_of(ws, &url) {
                if !reached.contains(&next) {
                    queue.push_back(next);
                }
            }
        }
        reached
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            resident_pages: self.mat.len() as u64,
            skeleton_pages: self.skeletons.len() as u64,
            resident_bytes: self.bytes as u64,
            evictions: self.evictions.get(),
            upqueries: self.upqueries.get(),
        }
    }
}
