//! The maintenance loop: registered views, change-feed syncs, rebuilds.
//!
//! An [`IncrementalView`] owns a [`PartialStore`] and a set of compiled
//! views. [`IncrementalView::sync`] drains the site's change feed and
//! applies it in three phases:
//!
//! 1. **adds/edits** — each surviving (last-kind-wins) change becomes one
//!    `GET`; newly linked pages fan out into further fetches exactly like
//!    the crawl would discover them; every fetched page turns into a
//!    [`PageDelta`] pushed through each view's operator
//!    tree. A transiently failing fetch marks the stored copy
//!    stale-but-retained and produces *no* delta — the view keeps serving
//!    the old rows, the same contract as the lazy protocol's
//!    serve-stale-under-faults path.
//! 2. **removals** — the retraction `old → None` flows through the trees
//!    (a follow over a vanished page skips it, matching live evaluation's
//!    broken-link semantics); the store keeps the old copy
//!    stale-but-retained and queues the URL on `CheckMissing`, matching
//!    a full refresh.
//! 3. **reachability** — pages no longer reachable from any entry point
//!    are dropped from the store, matching the full refresh's
//!    retain-reached sweep. Their view rows were already retracted by the
//!    deltas that removed the links, so no further propagation is needed.
//!
//! When needed state is gone — an evicted payload of a page that changed,
//! an evicted follow slice that could not be prewarmed — the affected view
//! **rebuilds** from the post-sync store at the end of the batch. A
//! transient upquery failure instead **degrades** the view: `answer`
//! returns `None` (the serving layer falls back to live evaluation) until
//! a later sync rebuilds it successfully.

use crate::delta::{add_row, sorted_rows, PageDelta, RowSet};
use crate::ops::{compile, OpTree};
use crate::store::PartialStore;
use crate::{DataflowError, Result};
use adm::{Relation, Url, WebScheme};
use nalg::NalgExpr;
use obs::{Counter, EventKind, MetricsRegistry, TraceSink};
use std::collections::{BTreeMap, HashSet, VecDeque};
use websim::{ChangeKind, PageServer, Site, SiteChange};

/// What one [`IncrementalView::apply_changes`] batch did.
#[derive(Debug, Clone, Default)]
pub struct DeltaReport {
    /// Feed entries consumed.
    pub changes_seen: u64,
    /// Pages fetched (`GET`s issued by the delta path itself, excluding
    /// upqueries).
    pub pages_fetched: u64,
    /// Pages dropped as unreachable.
    pub pages_dropped: u64,
    /// Stored copies marked stale-but-retained (removals and transient
    /// fetch failures).
    pub marked_stale: u64,
    /// Targeted store upqueries issued during the batch.
    pub upqueries: u64,
    /// Views rebuilt from the store this batch.
    pub view_rebuilds: u64,
    /// Row insertions applied across all view answers.
    pub rows_added: u64,
    /// Row retractions applied across all view answers.
    pub rows_removed: u64,
    /// URLs whose fetch or upquery failed transiently (sorted, deduped).
    pub failed: Vec<Url>,
}

/// One registered query under maintenance.
#[derive(Debug)]
struct RegisteredView {
    name: String,
    key: String,
    expr: NalgExpr,
    tree: OpTree,
    answer: RowSet,
    /// Serving is suspended (transient failure); `answer` returns `None`.
    degraded: bool,
    /// State was lost mid-batch; rebuild from the store at batch end.
    needs_rebuild: bool,
    rebuilds: u64,
}

/// A set of incrementally maintained views over one web scheme.
#[derive(Debug)]
pub struct IncrementalView<'a> {
    ws: &'a WebScheme,
    store: PartialStore,
    cursor: u64,
    views: Vec<RegisteredView>,
    registry: MetricsRegistry,
    trace: Option<TraceSink>,
    slice_budget: Option<usize>,
    syncs_c: Counter,
    changes_c: Counter,
    fetched_c: Counter,
    dropped_c: Counter,
    stale_c: Counter,
    rebuilds_c: Counter,
    rows_added_c: Counter,
    rows_removed_c: Counter,
}

impl<'a> IncrementalView<'a> {
    /// An unbudgeted maintainer over `ws`. All metrics register under the
    /// `dataflow` prefix.
    pub fn new(ws: &'a WebScheme) -> Self {
        let registry = MetricsRegistry::with_prefix("dataflow");
        let store = PartialStore::new(&registry);
        IncrementalView {
            ws,
            store,
            cursor: 0,
            views: Vec::new(),
            syncs_c: registry.counter("sync_runs"),
            changes_c: registry.counter("sync_changes"),
            fetched_c: registry.counter("sync_pages_fetched"),
            dropped_c: registry.counter("sync_pages_dropped"),
            stale_c: registry.counter("sync_marked_stale"),
            rebuilds_c: registry.counter("sync_view_rebuilds"),
            rows_added_c: registry.counter("sync_rows_added"),
            rows_removed_c: registry.counter("sync_rows_removed"),
            registry,
            trace: None,
            slice_budget: None,
        }
    }

    /// Bounds the page store's resident payload bytes.
    pub fn with_byte_budget(mut self, budget: usize) -> Self {
        self.store.set_budget(self.ws, Some(budget));
        self
    }

    /// Bounds each follow operator's slice bytes (applies to views
    /// registered afterwards).
    pub fn with_state_budget(mut self, budget: usize) -> Self {
        self.slice_budget = Some(budget);
        self
    }

    /// Attaches a trace sink: each sync opens a `dataflow.sync` span with
    /// one `dataflow.δ` event per operator that saw deltas.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// The `dataflow`-prefixed metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The underlying partial page store.
    pub fn store(&self) -> &PartialStore {
        &self.store
    }

    /// Mutable access to the store (tests and experiments).
    pub fn store_mut(&mut self) -> &mut PartialStore {
        &mut self.store
    }

    /// The scheme under maintenance.
    pub fn scheme(&self) -> &WebScheme {
        self.ws
    }

    /// Crawls the site into the store; call once before registering views.
    /// Returns the number of pages downloaded.
    pub fn materialize(&mut self, server: &impl PageServer) -> Result<usize> {
        self.store.materialize(self.ws, server)
    }

    /// The feed cursor the next [`IncrementalView::sync`] resumes from.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Positions the feed cursor (typically `site.change_cursor()` taken
    /// right after [`IncrementalView::materialize`], so the crawl itself
    /// is not replayed as changes).
    pub fn set_cursor(&mut self, cursor: u64) {
        self.cursor = cursor;
    }

    /// Registers a query for maintenance under a lookup key, evaluating it
    /// once against the store to seed the answer. The expression must be
    /// computable (run the optimizer first — external leaves are not
    /// maintainable).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        key: impl Into<String>,
        expr: &NalgExpr,
        server: &impl PageServer,
    ) -> Result<()> {
        let mut tree = compile(expr, self.ws, self.slice_budget)?;
        let rows = tree.root.init(&mut self.store, self.ws, server)?;
        let mut answer = RowSet::new();
        for (row, w) in rows {
            add_row(&mut answer, row, w);
        }
        self.views.push(RegisteredView {
            name: name.into(),
            key: key.into(),
            expr: expr.clone(),
            tree,
            answer,
            degraded: false,
            needs_rebuild: false,
            rebuilds: 0,
        });
        Ok(())
    }

    /// True when a view is registered under `key`.
    pub fn is_registered(&self, key: &str) -> bool {
        self.views.iter().any(|v| v.key == key)
    }

    /// True when the view under `key` is degraded (serving suspended).
    pub fn is_degraded(&self, key: &str) -> bool {
        self.views.iter().any(|v| v.key == key && v.degraded)
    }

    /// How many times the view under `key` rebuilt from the store.
    pub fn rebuild_count(&self, key: &str) -> u64 {
        self.views
            .iter()
            .find(|v| v.key == key)
            .map(|v| v.rebuilds)
            .unwrap_or(0)
    }

    /// The registered view names, in registration order.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.iter().map(|v| v.name.as_str()).collect()
    }

    /// The maintained answer for `key`: rows in deterministic sorted
    /// order. `None` when no such view is registered or the view is
    /// degraded — the caller should fall back to live evaluation.
    pub fn answer(&self, key: &str) -> Option<Relation> {
        let v = self.views.iter().find(|v| v.key == key)?;
        if v.degraded {
            return None;
        }
        Relation::from_rows(v.tree.columns.clone(), sorted_rows(&v.answer)).ok()
    }

    /// Total (slice evictions, slice upqueries) across every follow
    /// operator of every registered view.
    pub fn slice_stats(&self) -> (u64, u64) {
        let mut evictions = 0;
        let mut upqueries = 0;
        for v in &self.views {
            let (e, u) = v.tree.root.slice_stats();
            evictions += e;
            upqueries += u;
        }
        (evictions, upqueries)
    }

    /// Force-evicts a page payload (tests and experiments).
    pub fn evict_page(&mut self, url: &Url) -> bool {
        self.store.evict(self.ws, url)
    }

    /// Force-evicts every follow slice keyed on `url` across all views.
    pub fn evict_slices(&mut self, url: &Url) -> bool {
        let mut hit = false;
        for v in &mut self.views {
            hit |= v.tree.root.evict_slice(url);
        }
        hit
    }

    /// Drains the site's change feed through the views, advancing the
    /// cursor. Fetches go to the site's own server.
    pub fn sync(&mut self, site: &Site) -> Result<DeltaReport> {
        self.sync_with(site, &site.server)
    }

    /// Like [`IncrementalView::sync`], fetching through `server` — pass a
    /// `resilience`-wrapped server to get retries on the delta path's
    /// fetches and upqueries.
    pub fn sync_with(&mut self, site: &Site, server: &impl PageServer) -> Result<DeltaReport> {
        let changes: Vec<SiteChange> = site.changes_since(self.cursor).to_vec();
        let rep = self.apply_changes(server, &changes)?;
        self.cursor = site.change_cursor();
        Ok(rep)
    }

    /// Applies a batch of feed entries (the three-phase protocol in the
    /// module docs) and rebuilds or retries any view whose state was lost.
    ///
    /// With a trace sink attached the whole batch runs under a
    /// `dataflow.sync` span, and an [`obs::reqctx`] context is installed
    /// for its duration so store upqueries issued on the views' behalf
    /// attribute themselves to the sync (as `dataflow.upquery` events
    /// parented under the span).
    pub fn apply_changes(
        &mut self,
        server: &impl PageServer,
        changes: &[SiteChange],
    ) -> Result<DeltaReport> {
        let Some(trace) = self.trace.clone() else {
            return self.apply_changes_inner(server, changes);
        };
        let mut span = trace.begin(EventKind::Dataflow, "dataflow.sync", None);
        let parent = span.id();
        let ctx = obs::reqctx::RequestCtx {
            sink: trace.clone(),
            parent,
            request_id: 0,
            clock: obs::reqctx::FetchClock::new(),
            deadline: obs::Deadline::infinite(),
            cancel: None,
        };
        let res = obs::reqctx::with_ctx(Some(ctx), || self.apply_changes_inner(server, changes));
        match &res {
            Ok(rep) => {
                span.set("changes", rep.changes_seen);
                span.set("pages_fetched", rep.pages_fetched);
                span.set("pages_dropped", rep.pages_dropped);
                span.set("upqueries", rep.upqueries);
                span.set("rows_added", rep.rows_added);
                span.set("rows_removed", rep.rows_removed);
                span.set("view_rebuilds", rep.view_rebuilds);
                for v in &self.views {
                    let name = v.name.clone();
                    v.tree.root.visit_counters(&mut |label, adds, removes| {
                        if adds > 0 || removes > 0 {
                            trace.event(
                                EventKind::Dataflow,
                                format!("dataflow.δ {label}"),
                                Some(parent),
                                vec![
                                    ("view".to_string(), name.as_str().into()),
                                    ("adds".to_string(), adds.into()),
                                    ("removes".to_string(), removes.into()),
                                ],
                            );
                        }
                    });
                }
            }
            Err(e) => span.set("error", e.to_string()),
        }
        trace.finish(span);
        res
    }

    fn apply_changes_inner(
        &mut self,
        server: &impl PageServer,
        changes: &[SiteChange],
    ) -> Result<DeltaReport> {
        let ws = self.ws;
        let mut rep = DeltaReport {
            changes_seen: changes.len() as u64,
            ..DeltaReport::default()
        };
        let upq_before = self.store.stats().upqueries;
        for v in &mut self.views {
            v.tree.root.reset_counters();
            // a view that degraded in an earlier batch retries its
            // rebuild now, even if this batch is empty
            if v.degraded {
                v.needs_rebuild = true;
            }
        }

        // fold per URL, last kind wins; BTreeMap over the URL string keeps
        // the processing order deterministic
        let mut folded: BTreeMap<String, (Url, String, ChangeKind)> = BTreeMap::new();
        for c in changes {
            folded.insert(
                c.url.as_str().to_string(),
                (c.url.clone(), c.scheme.clone(), c.kind),
            );
        }
        let mut dirty: HashSet<Url> = folded.values().map(|(u, _, _)| u.clone()).collect();

        // ── phase 1: adds and edits, with link fan-out ──────────────────
        let mut worklist: VecDeque<(Url, String)> = folded
            .values()
            .filter(|(u, _, k)| {
                *k != ChangeKind::Removed
                    && (self.store.knows(u) || ws.entry_points().iter().any(|e| e.url == *u))
            })
            .map(|(u, s, _)| (u.clone(), s.clone()))
            .collect();
        let mut processed: HashSet<Url> = HashSet::new();
        while let Some((url, scheme)) = worklist.pop_front() {
            if !processed.insert(url.clone()) {
                continue;
            }
            prewarm_views(
                &mut self.views,
                &url,
                &scheme,
                &mut self.store,
                ws,
                server,
                &dirty,
                &mut rep,
            );
            let old = self.store.resident(&url).map(|p| p.tuple.clone());
            let was_known = self.store.knows(&url);
            match server.get(&url) {
                Ok(resp) => {
                    rep.pages_fetched += 1;
                    let ps = ws.scheme(&scheme)?;
                    let html = std::str::from_utf8(&resp.body)
                        .map_err(|e| DataflowError::Wrap(format!("non-utf8 at {url}: {e}")))?;
                    let tuple = wrapper::wrap_page(ps, html)
                        .map_err(|e| DataflowError::Wrap(format!("{url}: {e}")))?;
                    let date = resp.last_modified.max(server.now());
                    self.store
                        .put(ws, url.clone(), &scheme, tuple.clone(), date);
                    dirty.remove(&url);
                    for (tscheme, turl) in self.store.outlinks_of(ws, &url) {
                        if !self.store.knows(&turl) && !processed.contains(&turl) {
                            worklist.push_back((turl, tscheme));
                        }
                    }
                    if old.as_ref() == Some(&tuple) {
                        continue; // republish with identical content: no-op
                    }
                    let d = PageDelta {
                        url,
                        scheme,
                        old,
                        new: Some(tuple),
                        was_known,
                    };
                    propagate_delta(
                        &mut self.views,
                        &d,
                        &mut self.store,
                        ws,
                        server,
                        &dirty,
                        &mut rep,
                    );
                }
                Err(e) if e.is_transient() => {
                    // serve stale: keep the old rows, no delta
                    if self.store.mark_stale(&url) {
                        rep.marked_stale += 1;
                    }
                    rep.failed.push(url.clone());
                    dirty.remove(&url);
                    for (tscheme, turl) in self.store.outlinks_of(ws, &url) {
                        if !self.store.knows(&turl) && !processed.contains(&turl) {
                            worklist.push_back((turl, tscheme));
                        }
                    }
                }
                Err(_) => {
                    // definite 404 under an add/edit entry: the page
                    // vanished between mutation and sync — treat as removal
                    dirty.remove(&url);
                    retract_page(
                        &mut self.views,
                        &url,
                        &scheme,
                        &mut self.store,
                        ws,
                        server,
                        &dirty,
                        &mut rep,
                    );
                }
            }
        }

        // ── phase 2: explicit removals ──────────────────────────────────
        for (url, scheme, kind) in folded.values() {
            if *kind != ChangeKind::Removed || processed.contains(url) {
                continue;
            }
            processed.insert(url.clone());
            dirty.remove(url);
            if !self.store.knows(url) {
                continue;
            }
            prewarm_views(
                &mut self.views,
                url,
                scheme,
                &mut self.store,
                ws,
                server,
                &dirty,
                &mut rep,
            );
            retract_page(
                &mut self.views,
                url,
                scheme,
                &mut self.store,
                ws,
                server,
                &dirty,
                &mut rep,
            );
        }

        // ── phase 3: reachability sweep (store only; the link-removal
        // deltas already retracted any affected view rows) ───────────────
        let reached = self.store.reachable(ws);
        for url in self.store.urls() {
            if !reached.contains(&url) && self.store.drop_page(&url) {
                rep.pages_dropped += 1;
            }
        }

        // rebuild any view whose state was lost (or that was degraded)
        for v in &mut self.views {
            if !v.needs_rebuild {
                continue;
            }
            match rebuild(v, &mut self.store, ws, server, self.slice_budget) {
                Ok(()) => rep.view_rebuilds += 1,
                Err(DataflowError::Upquery { url, reason: _ }) => {
                    v.degraded = true;
                    rep.failed.push(url);
                }
                Err(e) => return Err(e),
            }
        }

        rep.upqueries = self.store.stats().upqueries - upq_before;
        rep.failed.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        rep.failed.dedup();

        self.syncs_c.inc();
        self.changes_c.add(rep.changes_seen);
        self.fetched_c.add(rep.pages_fetched);
        self.dropped_c.add(rep.pages_dropped);
        self.stale_c.add(rep.marked_stale);
        self.rebuilds_c.add(rep.view_rebuilds);
        self.rows_added_c.add(rep.rows_added);
        self.rows_removed_c.add(rep.rows_removed);

        Ok(rep)
    }
}

#[allow(clippy::too_many_arguments)]
fn prewarm_views(
    views: &mut [RegisteredView],
    url: &Url,
    scheme: &str,
    store: &mut PartialStore,
    ws: &WebScheme,
    server: &impl PageServer,
    dirty: &HashSet<Url>,
    rep: &mut DeltaReport,
) {
    for v in views.iter_mut() {
        if v.degraded || v.needs_rebuild {
            continue;
        }
        match v.tree.root.prewarm(url, scheme, store, ws, server, dirty) {
            Ok(()) => {}
            Err(DataflowError::Upquery { url, reason: _ }) => {
                v.degraded = true;
                v.needs_rebuild = true;
                rep.failed.push(url);
            }
            Err(_) => v.needs_rebuild = true,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn propagate_delta(
    views: &mut [RegisteredView],
    d: &PageDelta,
    store: &mut PartialStore,
    ws: &WebScheme,
    server: &impl PageServer,
    dirty: &HashSet<Url>,
    rep: &mut DeltaReport,
) {
    for v in views.iter_mut() {
        if v.degraded || v.needs_rebuild {
            continue;
        }
        match v.tree.root.on_delta(d, store, ws, server, dirty) {
            Ok(rows) => {
                for (row, w) in rows {
                    if w > 0 {
                        rep.rows_added += w as u64;
                    } else {
                        rep.rows_removed += (-w) as u64;
                    }
                    add_row(&mut v.answer, row, w);
                }
            }
            Err(DataflowError::Upquery { url, reason: _ }) => {
                v.degraded = true;
                v.needs_rebuild = true;
                rep.failed.push(url);
            }
            Err(_) => v.needs_rebuild = true,
        }
    }
}

/// Retracts a removed page from the views; the store keeps the old copy
/// stale-but-retained and queues the `CheckMissing` sweep, matching the
/// full-refresh crawl's treatment of a 404.
#[allow(clippy::too_many_arguments)]
fn retract_page(
    views: &mut [RegisteredView],
    url: &Url,
    scheme: &str,
    store: &mut PartialStore,
    ws: &WebScheme,
    server: &impl PageServer,
    dirty: &HashSet<Url>,
    rep: &mut DeltaReport,
) {
    let old = store.resident(url).map(|p| p.tuple.clone());
    let d = PageDelta {
        url: url.clone(),
        scheme: scheme.to_string(),
        old,
        new: None,
        was_known: true,
    };
    propagate_delta(views, &d, store, ws, server, dirty, rep);
    if store.mark_stale(url) {
        rep.marked_stale += 1;
    }
    store.mat_mut().check_missing.push_back(url.clone());
}

fn rebuild(
    v: &mut RegisteredView,
    store: &mut PartialStore,
    ws: &WebScheme,
    server: &impl PageServer,
    slice_budget: Option<usize>,
) -> Result<()> {
    let mut tree = compile(&v.expr, ws, slice_budget)?;
    let rows = tree.root.init(store, ws, server)?;
    let mut answer = RowSet::new();
    for (row, w) in rows {
        add_row(&mut answer, row, w);
    }
    v.tree = tree;
    v.answer = answer;
    v.rebuilds += 1;
    v.needs_rebuild = false;
    v.degraded = false;
    Ok(())
}
