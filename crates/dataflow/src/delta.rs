//! Delta types: page-level changes and weighted row multisets.
//!
//! A change-feed entry turns into one [`PageDelta`] — "the page at `url`
//! went from `old` to `new`" — and each operator turns page deltas into
//! **row deltas**: `(row, weight)` pairs where a positive weight inserts
//! and a negative weight retracts. Operator state and view answers are
//! weighted multisets ([`RowSet`]); a row is *in* the answer iff its net
//! weight is positive, and consolidation keeps every map free of zero
//! entries so state size tracks the live rows only.

use adm::{Tuple, Url, Value};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// One page-level change as the operator tree sees it.
#[derive(Debug, Clone)]
pub struct PageDelta {
    /// The changed URL.
    pub url: Url,
    /// The page-scheme of the page.
    pub scheme: String,
    /// The content before the change; `None` when the page was absent —
    /// or when it was known but its payload had been evicted, in which
    /// case `was_known` distinguishes the two.
    pub old: Option<Tuple>,
    /// The content after the change; `None` for a removal.
    pub new: Option<Tuple>,
    /// True when the store knew the page (resident or evicted skeleton)
    /// before the change. `old == None && was_known` means the prior
    /// content is unrecoverable and dependent state must rebuild.
    pub was_known: bool,
}

/// A weighted row multiset; zero-weight entries are never stored.
pub type RowSet = HashMap<Vec<Value>, i64>;

/// A batch of row deltas flowing between operators.
pub type RowDeltas = Vec<(Vec<Value>, i64)>;

/// Folds one weighted row into a multiset, dropping the entry when its
/// net weight reaches zero.
pub fn add_row(set: &mut RowSet, row: Vec<Value>, w: i64) {
    if w == 0 {
        return;
    }
    match set.entry(row) {
        Entry::Occupied(mut o) => {
            *o.get_mut() += w;
            if *o.get() == 0 {
                o.remove();
            }
        }
        Entry::Vacant(v) => {
            v.insert(w);
        }
    }
}

/// Estimated in-memory footprint of one row, mirroring
/// [`adm::Tuple::approx_bytes`] so page and operator budgets use the same
/// unit.
pub fn row_bytes(row: &[Value]) -> usize {
    row.iter().map(Value::approx_bytes).sum()
}

/// Renders a multiset as sorted rows (each repeated its weight's worth),
/// the deterministic order every answer comparison uses.
pub fn sorted_rows(set: &RowSet) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for (row, w) in set {
        for _ in 0..(*w).max(0) {
            rows.push(row.clone());
        }
    }
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_row_consolidates_to_zero() {
        let mut s = RowSet::new();
        let row = vec![Value::text("a")];
        add_row(&mut s, row.clone(), 2);
        add_row(&mut s, row.clone(), -1);
        assert_eq!(s.get(&row), Some(&1));
        add_row(&mut s, row.clone(), -1);
        assert!(s.is_empty(), "zero-weight entries are dropped");
    }

    #[test]
    fn sorted_rows_expands_weights_deterministically() {
        let mut s = RowSet::new();
        add_row(&mut s, vec![Value::text("b")], 1);
        add_row(&mut s, vec![Value::text("a")], 2);
        let rows = sorted_rows(&s);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::text("a")]);
        assert_eq!(rows[1], vec![Value::text("a")]);
        assert_eq!(rows[2], vec![Value::text("b")]);
    }
}
