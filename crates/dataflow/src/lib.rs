//! # dataflow — partially-stateful incremental view maintenance
//!
//! The paper's lazy protocol (Algorithm 3) re-checks a page whenever a
//! query touches it, and the periodic consistency pass re-crawls the whole
//! view. This crate adds the Noria-style alternative for sites that expose
//! a change feed: propagate **deltas** instead of re-reading the world.
//!
//! * every [`websim::SiteChange`] becomes a ±page delta pushed through a
//!   compiled operator tree over the existing σ/π/⋈/unnest/follow algebra
//!   ([`ops`]): filters pass deltas through, projections fold them through
//!   set-semantics counts, joins keep keyed state on both sides and apply
//!   the bilinear rule `Δ(L⋈R) = ΔL⋈R_old + L_new⋈ΔR`, unnests fan out,
//!   and follow resolves only the *touched* URLs;
//! * state is **partial** ([`PartialStore`], follow slices): page payloads
//!   and per-key operator slices are evictable under a configurable byte
//!   budget (LRU, the `nalg::cache` shape), leaving behind a skeleton of
//!   outlinks so reachability stays free;
//! * a read that misses evicted state triggers a targeted **upquery** — a
//!   bounded re-navigation of just the missing key, issued against the
//!   ordinary [`websim::PageServer`] surface so it is counted in the
//!   paper's page-access statistics like any other fetch (and can be
//!   wrapped in a `resilience::ResilientServer` transparently);
//! * registered queries keep a maintained answer ([`IncrementalView`])
//!   that the serving layer reads directly, falling back to live
//!   evaluation when an upquery fails and the view degrades.
//!
//! The per-page GET/HEAD counters stay paper-exact throughout: delta
//! maintenance only ever touches the server for changed pages, fan-out
//! discoveries, and upqueries — each a real, counted fetch.
//!
//! ```
//! use dataflow::IncrementalView;
//! use nalg::NalgExpr;
//! use websim::sitegen::{University, UniversityConfig};
//! use websim::{MutationPlan, MutationRule};
//!
//! let mut site = University::generate(UniversityConfig::default()).unwrap();
//! let ws = site.site.scheme.clone();
//!
//! // materialize once, then register a view over the store
//! let mut views = IncrementalView::new(&ws);
//! views.materialize(&site.site.server).unwrap();
//! views.set_cursor(site.site.change_cursor());
//! let profs = NalgExpr::entry("DeptListPage")
//!     .unnest("DeptList")
//!     .follow("ToDept", "DeptPage")
//!     .unnest("ProfList")
//!     .follow("ToProf", "ProfPage")
//!     .project(vec!["ProfPage.PName", "ProfPage.Rank"]);
//! views.register("profs", "profs", &profs, &site.site.server).unwrap();
//!
//! // the site drifts: some professors change rank
//! let plan = MutationPlan::new(5)
//!     .with_rule(MutationRule::edit_attr("ProfPage", "Rank", 0.4));
//! plan.apply_round(&mut site.site, 0).unwrap();
//!
//! // one sync drains the feed, fetching only the changed pages
//! let report = views.sync(&site.site).unwrap();
//! assert!(report.pages_fetched <= report.changes_seen);
//! let answer = views.answer("profs").unwrap();   // matches live evaluation
//! assert!(!answer.is_empty());
//! ```

pub mod delta;
pub mod ops;
pub mod store;
pub mod view;

pub use delta::PageDelta;
pub use store::{PartialStore, StoreStats};
pub use view::{DeltaReport, IncrementalView};

use adm::Url;

/// Errors of the incremental-maintenance layer.
#[derive(Debug)]
pub enum DataflowError {
    /// An underlying ADM operation failed.
    Adm(adm::AdmError),
    /// Wrapping a fetched page failed.
    Wrap(String),
    /// Static analysis of a registered expression failed.
    Eval(nalg::EvalError),
    /// A registered expression cannot be maintained (e.g. external leaf).
    NotMaintainable(String),
    /// A targeted upquery could not complete (transient failure at the
    /// server); the affected view degrades and the caller should fall
    /// back to live evaluation.
    Upquery {
        /// The URL whose recomputation failed.
        url: Url,
        /// The underlying failure.
        reason: String,
    },
    /// Needed operator state was evicted and could not be restored in
    /// time; the view must rebuild from the store.
    StateGone(String),
    /// No view is registered under the given key.
    UnknownView(String),
}

impl std::fmt::Display for DataflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataflowError::Adm(e) => write!(f, "adm: {e}"),
            DataflowError::Wrap(m) => write!(f, "wrap: {m}"),
            DataflowError::Eval(e) => write!(f, "eval: {e}"),
            DataflowError::NotMaintainable(m) => write!(f, "not maintainable: {m}"),
            DataflowError::Upquery { url, reason } => write!(f, "upquery {url} failed: {reason}"),
            DataflowError::StateGone(m) => write!(f, "state evicted: {m}"),
            DataflowError::UnknownView(k) => write!(f, "no view registered for {k}"),
        }
    }
}

impl std::error::Error for DataflowError {}

impl From<adm::AdmError> for DataflowError {
    fn from(e: adm::AdmError) -> Self {
        DataflowError::Adm(e)
    }
}

impl From<nalg::EvalError> for DataflowError {
    fn from(e: nalg::EvalError) -> Self {
        DataflowError::Eval(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataflowError>;
