//! Compiled operator trees: one node per NALG operator, each holding just
//! enough state to turn page deltas into output-row deltas.
//!
//! * **entry** keeps its last expanded row (retraction needs no store);
//! * **σ** is stateless — deltas pass through the predicate;
//! * **π** keeps set-semantics counts and emits only 0↔positive
//!   transitions (projection dedups, so a duplicate insert is silent);
//! * **⋈** keeps keyed multisets of both inputs and applies the bilinear
//!   rule `Δ(L⋈R) = ΔL ⋈ R_old + L_new ⋈ ΔR` (null keys never join);
//! * **unnest** is stateless — each delta row fans out over its list;
//! * **follow** keeps a per-target-URL *slice* of its input multiset, so a
//!   page delta touches exactly the rows that point at it. Slices are the
//!   evictable per-operator partial state: under a byte budget the
//!   coldest slices are dropped, deltas aimed at a hole are discarded
//!   (Noria-style), and a page change that needs a missing slice triggers
//!   a targeted upquery — `prewarm` recomputes just that key's slice from
//!   the *pre-delta* store, keeping the bilinear rule exact.

use crate::delta::{add_row, row_bytes, PageDelta, RowDeltas, RowSet};
use crate::store::PartialStore;
use crate::{DataflowError, Result};
use adm::{Url, Value, WebScheme};
use nalg::expr::{field_of_column, resolve_column};
use nalg::{NalgExpr, Pred};
use std::collections::{BTreeMap, HashMap, HashSet};
use websim::PageServer;

/// A predicate with its columns resolved to indices at compile time.
#[derive(Debug, Clone)]
enum RPred {
    Eq(usize, Value),
    EqAttr(usize, usize),
    And(Vec<RPred>),
}

fn compile_pred(p: &Pred, cols: &[String]) -> Result<RPred> {
    Ok(match p {
        Pred::Eq(attr, v) => RPred::Eq(resolve_column(cols, attr)?, v.clone()),
        Pred::EqAttr(a, b) => RPred::EqAttr(resolve_column(cols, a)?, resolve_column(cols, b)?),
        Pred::And(ps) => RPred::And(
            ps.iter()
                .map(|p| compile_pred(p, cols))
                .collect::<Result<_>>()?,
        ),
    })
}

fn eval_pred(p: &RPred, row: &[Value]) -> bool {
    match p {
        RPred::Eq(i, v) => &row[*i] == v,
        RPred::EqAttr(i, j) => !row[*i].is_null() && row[*i] == row[*j],
        RPred::And(ps) => ps.iter().all(|p| eval_pred(p, row)),
    }
}

/// Expands a page into its row values: `URL` then one value per top-level
/// field — exactly the evaluator's `expand_page` shape.
fn expand(url: &Url, tuple: &adm::Tuple, fields: &[String]) -> Vec<Value> {
    let mut vals = Vec::with_capacity(fields.len() + 1);
    vals.push(Value::Link(url.clone()));
    for f in fields {
        vals.push(tuple.get(f).cloned().unwrap_or(Value::Null));
    }
    vals
}

fn concat(row: &[Value], vals: &[Value]) -> Vec<Value> {
    let mut out = Vec::with_capacity(row.len() + vals.len());
    out.extend_from_slice(row);
    out.extend_from_slice(vals);
    out
}

/// A store read that refuses to fill a hole for a page that is *dirty* —
/// changed in the current sync batch but not yet applied. An upquery
/// would see the post-change server and corrupt the bilinear rule, so
/// the only safe answer is "that state is gone, rebuild".
fn read_guarded(
    store: &mut PartialStore,
    ws: &WebScheme,
    server: &impl PageServer,
    url: &Url,
    dirty: &HashSet<Url>,
) -> Result<Option<(adm::Tuple, String)>> {
    if dirty.contains(url) && store.knows(url) && store.resident(url).is_none() {
        return Err(DataflowError::StateGone(format!(
            "{url} changed this sync and its old payload is evicted"
        )));
    }
    store.read(ws, server, url)
}

fn join_key(row: &[Value], idx: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(idx.len());
    for i in idx {
        if row[*i].is_null() {
            return None; // nulls never join
        }
        key.push(row[*i].clone());
    }
    Some(key)
}

/// The evictable per-key state of a follow operator.
#[derive(Debug, Default)]
struct SliceState {
    slices: HashMap<Url, RowSet>,
    evicted: HashSet<Url>,
    budget: Option<usize>,
    clock: u64,
    stamps: HashMap<Url, u64>,
    by_stamp: BTreeMap<u64, Url>,
    evictions: u64,
    upqueries: u64,
}

impl SliceState {
    fn touch(&mut self, url: &Url) {
        if let Some(old) = self.stamps.get(url).copied() {
            self.by_stamp.remove(&old);
        }
        self.clock += 1;
        self.stamps.insert(url.clone(), self.clock);
        self.by_stamp.insert(self.clock, url.clone());
    }

    fn forget(&mut self, url: &Url) {
        self.slices.remove(url);
        if let Some(s) = self.stamps.remove(url) {
            self.by_stamp.remove(&s);
        }
    }

    fn bytes(&self) -> usize {
        self.slices
            .iter()
            .map(|(u, s)| u.as_str().len() + s.keys().map(|r| row_bytes(r)).sum::<usize>())
            .sum()
    }

    fn evict_to_budget(&mut self) {
        let Some(budget) = self.budget else {
            return;
        };
        while self.bytes() > budget && self.slices.len() > 1 {
            let Some(url) = self.by_stamp.values().next().cloned() else {
                break;
            };
            self.forget(&url);
            self.evicted.insert(url);
            self.evictions += 1;
        }
    }
}

/// One compiled operator.
#[derive(Debug)]
pub(crate) struct Node {
    /// Display label (trace events).
    pub label: String,
    /// Rows inserted downstream this sync.
    pub adds: u64,
    /// Rows retracted downstream this sync.
    pub removes: u64,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    Entry {
        url: Url,
        fields: Vec<String>,
        last: Option<Vec<Value>>,
    },
    Select {
        input: Box<Node>,
        pred: RPred,
    },
    Project {
        input: Box<Node>,
        idx: Vec<usize>,
        counts: RowSet,
    },
    Unnest {
        input: Box<Node>,
        ci: usize,
        inner: Vec<String>,
    },
    Join {
        left: Box<Node>,
        right: Box<Node>,
        lk: Vec<usize>,
        rk: Vec<usize>,
        lstate: HashMap<Vec<Value>, RowSet>,
        rstate: HashMap<Vec<Value>, RowSet>,
    },
    Follow {
        input: Box<Node>,
        li: usize,
        target: String,
        fields: Vec<String>,
        state: SliceState,
    },
}

/// A compiled expression: the operator tree plus its output header.
#[derive(Debug)]
pub(crate) struct OpTree {
    pub root: Node,
    pub columns: Vec<String>,
}

/// Compiles a computable NALG expression into an operator tree.
/// `slice_budget` bounds each follow operator's slice bytes (None =
/// unbounded).
pub(crate) fn compile(
    expr: &NalgExpr,
    ws: &WebScheme,
    slice_budget: Option<usize>,
) -> Result<OpTree> {
    let columns = expr.output_columns(ws)?;
    let root = compile_node(expr, ws, slice_budget)?;
    Ok(OpTree { root, columns })
}

fn field_names(ws: &WebScheme, scheme: &str) -> Result<Vec<String>> {
    Ok(ws
        .scheme(scheme)?
        .fields
        .iter()
        .map(|f| f.name.clone())
        .collect())
}

fn compile_node(expr: &NalgExpr, ws: &WebScheme, slice_budget: Option<usize>) -> Result<Node> {
    Ok(match expr {
        NalgExpr::Entry { scheme, alias: _ } => {
            let ep = ws.entry_point(scheme).ok_or_else(|| {
                DataflowError::NotMaintainable(format!("{scheme} is not an entry point"))
            })?;
            Node {
                label: format!("entry {scheme}"),
                adds: 0,
                removes: 0,
                kind: Kind::Entry {
                    url: ep.url.clone(),
                    fields: field_names(ws, scheme)?,
                    last: None,
                },
            }
        }
        NalgExpr::External { name } => {
            return Err(DataflowError::NotMaintainable(format!(
                "external relation {name}: run the optimizer first (rule 1)"
            )))
        }
        NalgExpr::Select { input, pred } => {
            let cols = input.output_columns(ws)?;
            Node {
                label: "σ".to_string(),
                adds: 0,
                removes: 0,
                kind: Kind::Select {
                    pred: compile_pred(pred, &cols)?,
                    input: Box::new(compile_node(input, ws, slice_budget)?),
                },
            }
        }
        NalgExpr::Project { input, cols } => {
            let in_cols = input.output_columns(ws)?;
            let idx = cols
                .iter()
                .map(|c| resolve_column(&in_cols, c).map_err(DataflowError::from))
                .collect::<Result<Vec<_>>>()?;
            Node {
                label: format!("π[{}]", cols.join(",")),
                adds: 0,
                removes: 0,
                kind: Kind::Project {
                    idx,
                    counts: RowSet::new(),
                    input: Box::new(compile_node(input, ws, slice_budget)?),
                },
            }
        }
        NalgExpr::Join { left, right, on } => {
            let lcols = left.output_columns(ws)?;
            let rcols = right.output_columns(ws)?;
            let mut lk = Vec::new();
            let mut rk = Vec::new();
            for (l, r) in on {
                lk.push(resolve_column(&lcols, l)?);
                rk.push(resolve_column(&rcols, r)?);
            }
            Node {
                label: "⋈".to_string(),
                adds: 0,
                removes: 0,
                kind: Kind::Join {
                    left: Box::new(compile_node(left, ws, slice_budget)?),
                    right: Box::new(compile_node(right, ws, slice_budget)?),
                    lk,
                    rk,
                    lstate: HashMap::new(),
                    rstate: HashMap::new(),
                },
            }
        }
        NalgExpr::Unnest { input, attr } => {
            let in_cols = input.output_columns(ws)?;
            let ci = resolve_column(&in_cols, attr)?;
            let qualified = in_cols[ci].clone();
            let field = field_of_column(ws, &expr.alias_map()?, &qualified)?;
            let inner: Vec<String> = field
                .ty
                .list_fields()
                .ok_or_else(|| {
                    DataflowError::NotMaintainable(format!("unnest over non-list {qualified}"))
                })?
                .iter()
                .map(|f| f.name.clone())
                .collect();
            Node {
                label: format!("∘ {attr}"),
                adds: 0,
                removes: 0,
                kind: Kind::Unnest {
                    ci,
                    inner,
                    input: Box::new(compile_node(input, ws, slice_budget)?),
                },
            }
        }
        NalgExpr::Follow {
            input,
            link,
            target,
            alias: _,
        } => {
            let in_cols = input.output_columns(ws)?;
            let li = resolve_column(&in_cols, link)?;
            Node {
                label: format!("–{link}→ {target}"),
                adds: 0,
                removes: 0,
                kind: Kind::Follow {
                    li,
                    target: target.clone(),
                    fields: field_names(ws, target)?,
                    state: SliceState {
                        budget: slice_budget,
                        ..SliceState::default()
                    },
                    input: Box::new(compile_node(input, ws, slice_budget)?),
                },
            }
        }
    })
}

impl Node {
    fn note(&mut self, out: &RowDeltas) {
        for (_, w) in out {
            if *w > 0 {
                self.adds += *w as u64;
            } else {
                self.removes += (-*w) as u64;
            }
        }
    }

    /// Resets the per-sync delta counters, recursively.
    pub fn reset_counters(&mut self) {
        self.adds = 0;
        self.removes = 0;
        match &mut self.kind {
            Kind::Entry { .. } => {}
            Kind::Select { input, .. }
            | Kind::Project { input, .. }
            | Kind::Unnest { input, .. }
            | Kind::Follow { input, .. } => input.reset_counters(),
            Kind::Join { left, right, .. } => {
                left.reset_counters();
                right.reset_counters();
            }
        }
    }

    /// Visits every node pre-order with (label, adds, removes).
    pub fn visit_counters(&self, f: &mut impl FnMut(&str, u64, u64)) {
        f(&self.label, self.adds, self.removes);
        match &self.kind {
            Kind::Entry { .. } => {}
            Kind::Select { input, .. }
            | Kind::Project { input, .. }
            | Kind::Unnest { input, .. }
            | Kind::Follow { input, .. } => input.visit_counters(f),
            Kind::Join { left, right, .. } => {
                left.visit_counters(f);
                right.visit_counters(f);
            }
        }
    }

    /// Upqueries this sync will need: restores any evicted follow slice
    /// keyed on `url` *before* the page delta lands in the store, so the
    /// slice reflects the pre-delta input (the bilinear `In_old ⋈ ΔP`
    /// term stays exact).
    pub fn prewarm(
        &mut self,
        url: &Url,
        scheme: &str,
        store: &mut PartialStore,
        ws: &WebScheme,
        server: &impl PageServer,
        dirty: &HashSet<Url>,
    ) -> Result<()> {
        match &mut self.kind {
            Kind::Entry { .. } => Ok(()),
            Kind::Select { input, .. }
            | Kind::Project { input, .. }
            | Kind::Unnest { input, .. } => input.prewarm(url, scheme, store, ws, server, dirty),
            Kind::Join { left, right, .. } => {
                left.prewarm(url, scheme, store, ws, server, dirty)?;
                right.prewarm(url, scheme, store, ws, server, dirty)
            }
            Kind::Follow {
                input,
                li,
                target,
                state,
                ..
            } => {
                input.prewarm(url, scheme, store, ws, server, dirty)?;
                if target == scheme && state.evicted.contains(url) {
                    // targeted upquery: recompute just this key's slice
                    let rows = input.eval_pure(store, ws, server, dirty)?;
                    let mut slice = RowSet::new();
                    for (row, w) in rows {
                        if matches!(&row[*li], Value::Link(u) if u == url) {
                            add_row(&mut slice, row, w);
                        }
                    }
                    state.evicted.remove(url);
                    state.slices.insert(url.clone(), slice);
                    state.touch(url);
                    state.upqueries += 1;
                }
                Ok(())
            }
        }
    }

    /// Full stateless evaluation against the current store (reads may
    /// upquery evicted pages). Used for slice upqueries and rebuilds.
    pub fn eval_pure(
        &self,
        store: &mut PartialStore,
        ws: &WebScheme,
        server: &impl PageServer,
        dirty: &HashSet<Url>,
    ) -> Result<RowDeltas> {
        match &self.kind {
            Kind::Entry { url, fields, .. } => match read_guarded(store, ws, server, url, dirty)? {
                Some((t, _)) => Ok(vec![(expand(url, &t, fields), 1)]),
                None => Err(DataflowError::StateGone(format!("entry page {url} gone"))),
            },
            Kind::Select { input, pred } => Ok(input
                .eval_pure(store, ws, server, dirty)?
                .into_iter()
                .filter(|(r, _)| eval_pred(pred, r))
                .collect()),
            Kind::Project { input, idx, .. } => {
                let mut counts = RowSet::new();
                let mut out = Vec::new();
                for (row, w) in input.eval_pure(store, ws, server, dirty)? {
                    let p: Vec<Value> = idx.iter().map(|i| row[*i].clone()).collect();
                    let before = counts.get(&p).copied().unwrap_or(0);
                    add_row(&mut counts, p.clone(), w);
                    if before == 0 && w > 0 {
                        out.push((p, 1));
                    }
                }
                Ok(out)
            }
            Kind::Unnest { input, ci, inner } => {
                let mut out = Vec::new();
                for (row, w) in input.eval_pure(store, ws, server, dirty)? {
                    unnest_row(&row, *ci, inner, w, &mut out)?;
                }
                Ok(out)
            }
            Kind::Join {
                left,
                right,
                lk,
                rk,
                ..
            } => {
                let l = left.eval_pure(store, ws, server, dirty)?;
                let r = right.eval_pure(store, ws, server, dirty)?;
                let mut by_key: HashMap<Vec<Value>, Vec<(Vec<Value>, i64)>> = HashMap::new();
                for (row, w) in r {
                    if let Some(k) = join_key(&row, rk) {
                        by_key.entry(k).or_default().push((row, w));
                    }
                }
                let mut out = Vec::new();
                for (lrow, lw) in l {
                    let Some(k) = join_key(&lrow, lk) else {
                        continue;
                    };
                    if let Some(rs) = by_key.get(&k) {
                        for (rrow, rw) in rs {
                            out.push((concat(&lrow, rrow), lw * rw));
                        }
                    }
                }
                Ok(out)
            }
            Kind::Follow {
                input, li, fields, ..
            } => {
                let mut out = Vec::new();
                for (row, w) in input.eval_pure(store, ws, server, dirty)? {
                    let Value::Link(u) = &row[*li] else {
                        continue;
                    };
                    let u = u.clone();
                    if let Some((t, _)) = read_guarded(store, ws, server, &u, dirty)? {
                        out.push((concat(&row, &expand(&u, &t, fields)), w));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Full evaluation that (re)populates every operator's state; returns
    /// the initial row multiset.
    pub fn init(
        &mut self,
        store: &mut PartialStore,
        ws: &WebScheme,
        server: &impl PageServer,
    ) -> Result<RowDeltas> {
        let out = match &mut self.kind {
            Kind::Entry { url, fields, last } => match store.read(ws, server, url)? {
                Some((t, _)) => {
                    let row = expand(url, &t, fields);
                    *last = Some(row.clone());
                    vec![(row, 1)]
                }
                None => return Err(DataflowError::StateGone(format!("entry page {url} gone"))),
            },
            Kind::Select { input, pred } => {
                let pred = pred.clone();
                input
                    .init(store, ws, server)?
                    .into_iter()
                    .filter(|(r, _)| eval_pred(&pred, r))
                    .collect()
            }
            Kind::Project { input, idx, counts } => {
                counts.clear();
                let mut out = Vec::new();
                for (row, w) in input.init(store, ws, server)? {
                    let p: Vec<Value> = idx.iter().map(|i| row[*i].clone()).collect();
                    let before = counts.get(&p).copied().unwrap_or(0);
                    add_row(counts, p.clone(), w);
                    if before == 0 && w > 0 {
                        out.push((p, 1));
                    }
                }
                out
            }
            Kind::Unnest { input, ci, inner } => {
                let ci = *ci;
                let inner = inner.clone();
                let mut out = Vec::new();
                for (row, w) in input.init(store, ws, server)? {
                    unnest_row(&row, ci, &inner, w, &mut out)?;
                }
                out
            }
            Kind::Join {
                left,
                right,
                lk,
                rk,
                lstate,
                rstate,
            } => {
                lstate.clear();
                rstate.clear();
                for (row, w) in left.init(store, ws, server)? {
                    if let Some(k) = join_key(&row, lk) {
                        add_row(lstate.entry(k).or_default(), row, w);
                    }
                }
                for (row, w) in right.init(store, ws, server)? {
                    if let Some(k) = join_key(&row, rk) {
                        add_row(rstate.entry(k).or_default(), row, w);
                    }
                }
                let mut out = Vec::new();
                for (k, ls) in lstate.iter() {
                    if let Some(rs) = rstate.get(k) {
                        for (lrow, lw) in ls {
                            for (rrow, rw) in rs {
                                out.push((concat(lrow, rrow), lw * rw));
                            }
                        }
                    }
                }
                out
            }
            Kind::Follow {
                input,
                li,
                fields,
                state,
                ..
            } => {
                state.slices.clear();
                state.evicted.clear();
                state.stamps.clear();
                state.by_stamp.clear();
                let li = *li;
                let fields = fields.clone();
                let in_rows = input.init(store, ws, server)?;
                let mut out = Vec::new();
                for (row, w) in in_rows {
                    let Value::Link(u) = &row[li] else {
                        continue;
                    };
                    let u = u.clone();
                    if !state.slices.contains_key(&u) {
                        state.touch(&u);
                    }
                    add_row(state.slices.entry(u.clone()).or_default(), row.clone(), w);
                    if let Some((t, _)) = store.read(ws, server, &u)? {
                        out.push((concat(&row, &expand(&u, &t, &fields)), w));
                    }
                }
                state.evict_to_budget();
                out
            }
        };
        self.note(&out);
        Ok(out)
    }

    /// Propagates one page delta, updating state and returning output-row
    /// deltas.
    pub fn on_delta(
        &mut self,
        d: &PageDelta,
        store: &mut PartialStore,
        ws: &WebScheme,
        server: &impl PageServer,
        dirty: &HashSet<Url>,
    ) -> Result<RowDeltas> {
        let out = match &mut self.kind {
            Kind::Entry { url, fields, last } => {
                if d.url != *url {
                    Vec::new()
                } else {
                    let mut out = Vec::new();
                    if let Some(prev) = last.take() {
                        out.push((prev, -1));
                    }
                    if let Some(t) = &d.new {
                        let row = expand(url, t, fields);
                        *last = Some(row.clone());
                        out.push((row, 1));
                    }
                    out
                }
            }
            Kind::Select { input, pred } => {
                let pred = pred.clone();
                input
                    .on_delta(d, store, ws, server, dirty)?
                    .into_iter()
                    .filter(|(r, _)| eval_pred(&pred, r))
                    .collect()
            }
            Kind::Project { input, idx, counts } => {
                let mut out = Vec::new();
                for (row, w) in input.on_delta(d, store, ws, server, dirty)? {
                    let p: Vec<Value> = idx.iter().map(|i| row[*i].clone()).collect();
                    let before = counts.get(&p).copied().unwrap_or(0);
                    add_row(counts, p.clone(), w);
                    let after = counts.get(&p).copied().unwrap_or(0);
                    if before <= 0 && after > 0 {
                        out.push((p, 1));
                    } else if before > 0 && after <= 0 {
                        out.push((p, -1));
                    }
                }
                out
            }
            Kind::Unnest { input, ci, inner } => {
                let ci = *ci;
                let inner = inner.clone();
                let mut out = Vec::new();
                for (row, w) in input.on_delta(d, store, ws, server, dirty)? {
                    unnest_row(&row, ci, &inner, w, &mut out)?;
                }
                out
            }
            Kind::Join {
                left,
                right,
                lk,
                rk,
                lstate,
                rstate,
            } => {
                let dl = left.on_delta(d, store, ws, server, dirty)?;
                let dr = right.on_delta(d, store, ws, server, dirty)?;
                let mut out = Vec::new();
                // ΔL ⋈ R_old
                for (lrow, lw) in &dl {
                    if let Some(k) = join_key(lrow, lk) {
                        if let Some(rs) = rstate.get(&k) {
                            for (rrow, rw) in rs {
                                out.push((concat(lrow, rrow), lw * rw));
                            }
                        }
                    }
                }
                for (lrow, lw) in dl {
                    if let Some(k) = join_key(&lrow, lk) {
                        add_row(lstate.entry(k).or_default(), lrow, lw);
                    }
                }
                // L_new ⋈ ΔR
                for (rrow, rw) in &dr {
                    if let Some(k) = join_key(rrow, rk) {
                        if let Some(ls) = lstate.get(&k) {
                            for (lrow, lw) in ls {
                                out.push((concat(lrow, rrow), lw * rw));
                            }
                        }
                    }
                }
                for (rrow, rw) in dr {
                    if let Some(k) = join_key(&rrow, rk) {
                        add_row(rstate.entry(k).or_default(), rrow, rw);
                    }
                }
                out
            }
            Kind::Follow {
                input,
                li,
                target,
                fields,
                state,
            } => {
                let li = *li;
                let fields2 = fields.clone();
                let mut out = Vec::new();
                // (b) page-driven: In_old ⋈ ΔP, from the slice as it was
                // before this delta's input rows are folded in
                if d.scheme == *target {
                    let slice_rows: Vec<(Vec<Value>, i64)> = match state.slices.get(&d.url) {
                        Some(s) => s.iter().map(|(r, w)| (r.clone(), *w)).collect(),
                        None if state.evicted.contains(&d.url) => {
                            return Err(DataflowError::StateGone(format!(
                                "follow slice for {} evicted and not prewarmed",
                                d.url
                            )))
                        }
                        None => Vec::new(),
                    };
                    if !slice_rows.is_empty() {
                        let old_vals = match &d.old {
                            Some(t) => Some(expand(&d.url, t, &fields2)),
                            None if d.was_known => {
                                return Err(DataflowError::StateGone(format!(
                                    "old payload of {} evicted before its change",
                                    d.url
                                )))
                            }
                            None => None,
                        };
                        let new_vals = d.new.as_ref().map(|t| expand(&d.url, t, &fields2));
                        for (row, w) in &slice_rows {
                            if let Some(ov) = &old_vals {
                                out.push((concat(row, ov), -w));
                            }
                            if let Some(nv) = &new_vals {
                                out.push((concat(row, nv), *w));
                            }
                        }
                        state.touch(&d.url);
                    }
                }
                // (a) input-driven: ΔIn ⋈ P_new (the store already holds
                // the post-delta page)
                let din = input.on_delta(d, store, ws, server, dirty)?;
                for (row, w) in din {
                    let Value::Link(u) = &row[li] else {
                        continue;
                    };
                    let u = u.clone();
                    if !state.evicted.contains(&u) {
                        // fold into the slice; deltas aimed at an evicted
                        // hole are discarded (the upquery recomputes)
                        if !state.slices.contains_key(&u) {
                            state.touch(&u);
                        }
                        add_row(state.slices.entry(u.clone()).or_default(), row.clone(), w);
                        if state.slices.get(&u).is_some_and(|s| s.is_empty()) {
                            state.forget(&u);
                        }
                    }
                    if let Some((t, _)) = read_guarded(store, ws, server, &u, dirty)? {
                        out.push((concat(&row, &expand(&u, &t, &fields2)), w));
                    }
                }
                state.evict_to_budget();
                out
            }
        };
        self.note(&out);
        Ok(out)
    }

    /// (slice evictions, slice upqueries) accumulated across all follow
    /// operators in this subtree.
    pub fn slice_stats(&self) -> (u64, u64) {
        match &self.kind {
            Kind::Entry { .. } => (0, 0),
            Kind::Select { input, .. }
            | Kind::Project { input, .. }
            | Kind::Unnest { input, .. } => input.slice_stats(),
            Kind::Join { left, right, .. } => {
                let (a, b) = left.slice_stats();
                let (c, d) = right.slice_stats();
                (a + c, b + d)
            }
            Kind::Follow { input, state, .. } => {
                let (a, b) = input.slice_stats();
                (a + state.evictions, b + state.upqueries)
            }
        }
    }

    /// Force-evicts the follow slices keyed on `url` (tests/experiments).
    pub fn evict_slice(&mut self, url: &Url) -> bool {
        match &mut self.kind {
            Kind::Entry { .. } => false,
            Kind::Select { input, .. }
            | Kind::Project { input, .. }
            | Kind::Unnest { input, .. } => input.evict_slice(url),
            Kind::Join { left, right, .. } => {
                let a = left.evict_slice(url);
                let b = right.evict_slice(url);
                a || b
            }
            Kind::Follow { input, state, .. } => {
                let mut hit = input.evict_slice(url);
                if state.slices.contains_key(url) {
                    state.forget(url);
                    state.evicted.insert(url.clone());
                    state.evictions += 1;
                    hit = true;
                }
                hit
            }
        }
    }
}

fn unnest_row(
    row: &[Value],
    ci: usize,
    inner: &[String],
    w: i64,
    out: &mut RowDeltas,
) -> Result<()> {
    match &row[ci] {
        Value::Null => Ok(()), // null list ≡ empty list
        Value::List(ts) => {
            for t in ts {
                let mut r = Vec::with_capacity(row.len() - 1 + inner.len());
                for (i, v) in row.iter().enumerate() {
                    if i != ci {
                        r.push(v.clone());
                    }
                }
                for f in inner {
                    r.push(t.get(f).cloned().unwrap_or(Value::Null));
                }
                out.push((r, w));
            }
            Ok(())
        }
        other => Err(DataflowError::NotMaintainable(format!(
            "unnest over non-list value {other:?}"
        ))),
    }
}
