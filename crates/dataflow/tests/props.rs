//! Property pins for the delta path: whatever the seeded mutation
//! sequence, incremental maintenance must land on exactly the store a
//! full refresh would produce (modulo `access_date`) and exactly the
//! answers live evaluation produces — and a byte-budgeted store must
//! never exceed its budget while upqueries restore evicted pages
//! byte-identically.

use adm::{Relation, Value};
use dataflow::IncrementalView;
use matview::maintain::full_refresh;
use matview::MatStore;
use nalg::{Evaluator, NalgExpr};
use proptest::prelude::*;
use websim::sitegen::{University, UniversityConfig};
use websim::{MutationPlan, MutationRule};
use wvcore::LiveSource;

fn university(seed: u64) -> University {
    University::generate(UniversityConfig {
        departments: 3,
        professors: 6,
        courses: 8,
        seed,
        ..UniversityConfig::default()
    })
    .unwrap()
}

fn prof_expr() -> NalgExpr {
    NalgExpr::entry("DeptListPage")
        .unnest("DeptList")
        .follow("ToDept", "DeptPage")
        .unnest("ProfList")
        .follow("ToProf", "ProfPage")
        .project(vec!["ProfPage.PName", "ProfPage.Rank", "DeptPage.DName"])
}

fn course_expr() -> NalgExpr {
    NalgExpr::entry("ProfListPage")
        .unnest("ProfList")
        .follow("ToProf", "ProfPage")
        .unnest("CourseList")
        .follow("ToCourse", "CoursePage")
        .project(vec!["CoursePage.CName", "CoursePage.Description"])
}

fn sorted(rel: &Relation) -> Vec<Vec<Value>> {
    let mut rows = rel.rows().to_vec();
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

/// Everything except `access_date` (each maintenance path stamps its
/// fetches at its own clock) — url, scheme, tuple, and stale flag.
fn fingerprint(store: &MatStore) -> Vec<(String, String, adm::Tuple, bool)> {
    store
        .pages_sorted()
        .into_iter()
        .map(|(u, p)| {
            (
                u.as_str().to_string(),
                p.scheme.clone(),
                p.tuple.clone(),
                p.stale,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // For ANY seeded mutation sequence — edits, deletions, link drops, at
    // any rate — the delta-maintained store matches a full refresh and
    // the maintained views match live evaluation, round after round.
    #[test]
    fn delta_path_is_equivalent_to_full_refresh(
        site_seed in 0u64..=1000,
        plan_seed in 0u64..=u64::MAX,
        edit_pct in 0u32..=100,
        delete_pct in 0u32..=60,
        drop_pct in 0u32..=50,
    ) {
        let mut u = university(site_seed);
        let ws = u.site.scheme.clone();
        let mut iv = IncrementalView::new(&ws);
        iv.materialize(&u.site.server).unwrap();
        iv.set_cursor(u.site.change_cursor());
        iv.register("profs", "profs", &prof_expr(), &u.site.server).unwrap();
        iv.register("courses", "courses", &course_expr(), &u.site.server).unwrap();

        let mut oracle = MatStore::new();
        oracle.materialize(&ws, &u.site.server).unwrap();

        let plan = MutationPlan::new(plan_seed)
            .with_rule(MutationRule::edit_attr(
                "ProfPage", "Rank", f64::from(edit_pct) / 100.0,
            ))
            .with_rule(MutationRule::edit_attr(
                "DeptPage", "Address", f64::from(edit_pct) / 100.0,
            ))
            .with_rule(MutationRule::delete(
                "CoursePage", f64::from(delete_pct) / 100.0,
            ))
            .with_rule(MutationRule::drop_links(
                "DeptListPage", &["DeptList", "ToDept"], f64::from(drop_pct) / 100.0,
            ));

        for round in 0..3u64 {
            plan.apply_round(&mut u.site, round).unwrap();
            let rep = iv.sync(&u.site).unwrap();
            prop_assert!(rep.failed.is_empty(), "fault-free: {:?}", rep.failed);

            full_refresh(&mut oracle, &ws, &u.site.server).unwrap();
            prop_assert_eq!(fingerprint(iv.store().mat()), fingerprint(&oracle));

            let src = LiveSource::new(&ws, &u.site.server);
            let live = Evaluator::new(&ws, &src);
            for (key, expr) in [("profs", prof_expr()), ("courses", course_expr())] {
                let want = sorted(&live.eval(&expr).unwrap().relation);
                let got = iv.answer(key).expect("fault-free views never degrade");
                prop_assert_eq!(got.rows().to_vec(), want, "view {} round {}", key, round);
            }
        }
    }

    // A byte budget is an invariant, not a hint: whatever the budget and
    // mutation seed, residency never exceeds it, and every evicted page
    // an upquery brings back is byte-identical to the server's truth.
    #[test]
    fn budgeted_eviction_round_trips_through_upqueries(
        budget in 512usize..8192,
        plan_seed in 0u64..=u64::MAX,
    ) {
        let mut u = university(7);
        let ws = u.site.scheme.clone();
        let mut iv = IncrementalView::new(&ws).with_byte_budget(budget);
        iv.materialize(&u.site.server).unwrap();
        iv.set_cursor(u.site.change_cursor());
        prop_assert!(iv.store().stats().resident_bytes <= budget as u64);

        let plan = MutationPlan::new(plan_seed)
            .with_rule(MutationRule::edit_attr("ProfPage", "Rank", 0.5))
            .with_rule(MutationRule::edit_attr("CoursePage", "Description", 0.4));
        for round in 0..2u64 {
            plan.apply_round(&mut u.site, round).unwrap();
            iv.sync(&u.site).unwrap();
            prop_assert!(
                iv.store().stats().resident_bytes <= budget as u64,
                "over budget after sync round {}", round,
            );
        }

        // Read back every live page: evicted ones upquery, and all of
        // them come back exactly as the server holds them.
        for scheme in ["DeptPage", "ProfPage", "CoursePage"] {
            for (url, truth) in u.site.instance(scheme) {
                let (tuple, got_scheme) = iv
                    .store_mut()
                    .read(&ws, &u.site.server, &url)
                    .unwrap()
                    .expect("published page");
                prop_assert_eq!(&tuple, &truth, "upquery must restore {} exactly", url);
                prop_assert_eq!(got_scheme.as_str(), scheme);
                prop_assert!(iv.store().stats().resident_bytes <= budget as u64);
            }
        }
        prop_assert!(iv.store().stats().upqueries > 0, "a small budget must upquery");
    }
}
