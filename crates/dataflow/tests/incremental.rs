//! End-to-end incremental maintenance over a mutating university site:
//! delta syncs must track live evaluation and the full-refresh store while
//! fetching only what changed, partial state must stay under budget and
//! backfill via upqueries, and transient failures must degrade (not
//! corrupt) a view until a rebuild recovers it.

use adm::{Relation, Value};
use dataflow::IncrementalView;
use matview::maintain::full_refresh;
use matview::MatStore;
use nalg::{Evaluator, NalgExpr};
use websim::sitegen::{University, UniversityConfig};
use websim::{FaultPlan, FaultRule, MutationPlan, MutationRule};
use wvcore::LiveSource;

fn university(seed: u64) -> University {
    University::generate(UniversityConfig {
        departments: 4,
        professors: 8,
        courses: 10,
        seed,
        ..UniversityConfig::default()
    })
    .unwrap()
}

fn dept_expr() -> NalgExpr {
    NalgExpr::entry("DeptListPage")
        .unnest("DeptList")
        .follow("ToDept", "DeptPage")
        .project(vec!["DeptPage.DName", "DeptPage.Address"])
}

fn prof_expr() -> NalgExpr {
    NalgExpr::entry("DeptListPage")
        .unnest("DeptList")
        .follow("ToDept", "DeptPage")
        .unnest("ProfList")
        .follow("ToProf", "ProfPage")
        .project(vec!["ProfPage.PName", "ProfPage.Rank", "DeptPage.DName"])
}

fn course_expr() -> NalgExpr {
    NalgExpr::entry("ProfListPage")
        .unnest("ProfList")
        .follow("ToProf", "ProfPage")
        .unnest("CourseList")
        .follow("ToCourse", "CoursePage")
        .project(vec!["CoursePage.CName", "CoursePage.Description"])
}

fn sorted(rel: &Relation) -> Vec<Vec<Value>> {
    let mut rows = rel.rows().to_vec();
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

/// (url, scheme, tuple, stale) for every stored page — everything except
/// `access_date`, which legitimately differs between maintenance paths
/// (each fetch stamps the server clock at its own time).
fn fingerprint(store: &MatStore) -> Vec<(String, String, adm::Tuple, bool)> {
    store
        .pages_sorted()
        .into_iter()
        .map(|(u, p)| {
            (
                u.as_str().to_string(),
                p.scheme.clone(),
                p.tuple.clone(),
                p.stale,
            )
        })
        .collect()
}

#[test]
fn delta_sync_tracks_live_eval_and_full_refresh() {
    let mut u = university(11);
    let ws = u.site.scheme.clone();
    let mut iv = IncrementalView::new(&ws);
    iv.materialize(&u.site.server).unwrap();
    iv.set_cursor(u.site.change_cursor());
    iv.register("depts", "depts", &dept_expr(), &u.site.server)
        .unwrap();
    iv.register("profs", "profs", &prof_expr(), &u.site.server)
        .unwrap();
    iv.register("courses", "courses", &course_expr(), &u.site.server)
        .unwrap();

    // the full-refresh twin, maintained across the same rounds
    let mut oracle = MatStore::new();
    oracle.materialize(&ws, &u.site.server).unwrap();

    let plan = MutationPlan::new(77)
        .with_rule(MutationRule::edit_attr("DeptPage", "Address", 0.6))
        .with_rule(MutationRule::edit_attr("ProfPage", "Rank", 0.5))
        .with_rule(MutationRule::delete("CoursePage", 0.25));
    let mut saw_delete = false;
    for round in 0..4 {
        let mutated = plan.apply_round(&mut u.site, round).unwrap();
        saw_delete |= mutated.deleted_pages > 0;

        let rep = iv.sync(&u.site).unwrap();
        assert_eq!(
            rep.changes_seen,
            mutated.total(),
            "every mutation lands in the feed (round {round})"
        );
        assert!(
            rep.pages_fetched <= rep.changes_seen,
            "delta path fetches at most the changed pages (round {round})"
        );
        assert!(rep.failed.is_empty(), "fault-free site: {:?}", rep.failed);

        full_refresh(&mut oracle, &ws, &u.site.server).unwrap();
        assert_eq!(
            fingerprint(iv.store().mat()),
            fingerprint(&oracle),
            "store diverged from full refresh after round {round}"
        );

        let src = LiveSource::new(&ws, &u.site.server);
        let live = Evaluator::new(&ws, &src);
        for (key, expr) in [
            ("depts", dept_expr()),
            ("profs", prof_expr()),
            ("courses", course_expr()),
        ] {
            let want = sorted(&live.eval(&expr).unwrap().relation);
            let got = iv.answer(key).expect("fault-free view never degrades");
            assert_eq!(
                got.rows().to_vec(),
                want,
                "view {key} diverged from live eval after round {round}"
            );
        }
    }
    assert!(saw_delete, "seed 77 must exercise the removal path");
}

#[test]
fn link_drops_cascade_retractions_without_refetching_targets() {
    let mut u = university(23);
    let ws = u.site.scheme.clone();
    let mut iv = IncrementalView::new(&ws);
    iv.materialize(&u.site.server).unwrap();
    iv.set_cursor(u.site.change_cursor());
    iv.register("depts", "depts", &dept_expr(), &u.site.server)
        .unwrap();
    let before = iv.answer("depts").unwrap().rows().len();

    let plan = MutationPlan::new(5).with_rule(MutationRule::drop_links(
        "DeptListPage",
        &["DeptList", "ToDept"],
        0.5,
    ));
    let mutated = plan.apply_round(&mut u.site, 0).unwrap();
    assert!(mutated.dropped_links > 0, "seed 5 must drop something");

    u.site.server.reset_stats();
    let rep = iv.sync(&u.site).unwrap();
    // one list page changed → one GET; the dangling targets are retracted
    // from operator state, never re-fetched
    assert_eq!(rep.pages_fetched, 1);
    assert_eq!(u.site.server.stats().gets, 1);
    assert!(rep.rows_removed > 0);

    let src = LiveSource::new(&ws, &u.site.server);
    let want = sorted(
        &Evaluator::new(&ws, &src)
            .eval(&dept_expr())
            .unwrap()
            .relation,
    );
    let got = iv.answer("depts").unwrap();
    assert_eq!(got.rows().to_vec(), want);
    assert!(got.rows().len() < before, "dropped depts leave the view");
}

#[test]
fn budgeted_store_stays_under_budget_and_upqueries_backfill() {
    let mut u = university(3);
    let ws = u.site.scheme.clone();
    let budget = 2048usize;
    let mut iv = IncrementalView::new(&ws).with_byte_budget(budget);
    iv.materialize(&u.site.server).unwrap();
    iv.set_cursor(u.site.change_cursor());

    let s = iv.store().stats();
    assert!(
        s.resident_bytes <= budget as u64,
        "{} bytes resident over budget {budget}",
        s.resident_bytes
    );
    assert!(s.skeleton_pages > 0, "a {budget}-byte budget must evict");

    // every evicted page comes back byte-identical via one upquery, and
    // the budget holds throughout
    for (url, truth) in u.site.instance("ProfPage") {
        let (tuple, scheme) = iv
            .store_mut()
            .read(&ws, &u.site.server, &url)
            .unwrap()
            .expect("live page");
        assert_eq!(tuple, truth, "upquery must restore {url} exactly");
        assert_eq!(scheme, "ProfPage");
        assert!(iv.store().stats().resident_bytes <= budget as u64);
    }
    assert!(iv.store().stats().upqueries > 0);

    // maintenance under mutation keeps respecting the budget
    let plan = MutationPlan::new(41).with_rule(MutationRule::edit_attr("ProfPage", "Rank", 0.5));
    for round in 0..3 {
        plan.apply_round(&mut u.site, round).unwrap();
        iv.sync(&u.site).unwrap();
        assert!(iv.store().stats().resident_bytes <= budget as u64);
    }
}

#[test]
fn transient_upquery_failure_degrades_then_rebuild_recovers() {
    let mut u = university(9);
    let ws = u.site.scheme.clone();
    let mut iv = IncrementalView::new(&ws);
    iv.materialize(&u.site.server).unwrap();
    iv.set_cursor(u.site.change_cursor());
    iv.register("depts", "depts", &dept_expr(), &u.site.server)
        .unwrap();

    // lose both the follow slice for one dept and the entry payload, so
    // the prewarm upquery has to hit the server — which is down
    let (dept_url, dept_tuple) = u.site.instance("DeptPage")[0].clone();
    let entry_url = ws.entry_point("DeptListPage").unwrap().url.clone();
    assert!(iv.evict_slices(&dept_url));
    assert!(iv.evict_page(&entry_url));
    u.site
        .server
        .set_fault_plan(FaultPlan::new(1).with_rule(FaultRule::timeouts(1.0)));

    u.site
        .republish("DeptPage", dept_url.clone(), dept_tuple, "Dept")
        .unwrap();
    let rep = iv.sync(&u.site).unwrap();
    assert!(!rep.failed.is_empty());
    assert!(iv.is_degraded("depts"));
    assert!(
        iv.answer("depts").is_none(),
        "a degraded view must not serve a possibly-wrong answer"
    );

    // server recovers; the next (change-free) sync retries the rebuild
    u.site.server.clear_fault_plan();
    let rep = iv.sync(&u.site).unwrap();
    assert_eq!(rep.changes_seen, 0);
    assert_eq!(rep.view_rebuilds, 1);
    assert!(!iv.is_degraded("depts"));
    assert!(iv.rebuild_count("depts") >= 1);

    let src = LiveSource::new(&ws, &u.site.server);
    let want = sorted(
        &Evaluator::new(&ws, &src)
            .eval(&dept_expr())
            .unwrap()
            .relation,
    );
    assert_eq!(iv.answer("depts").unwrap().rows().to_vec(), want);
}

#[test]
fn evicted_slices_are_restored_by_targeted_upqueries() {
    let mut u = university(31);
    let ws = u.site.scheme.clone();
    let mut iv = IncrementalView::new(&ws);
    iv.materialize(&u.site.server).unwrap();
    iv.set_cursor(u.site.change_cursor());
    iv.register("profs", "profs", &prof_expr(), &u.site.server)
        .unwrap();

    // evict the slices of every prof page, then edit some profs: each
    // affected slice must be prewarmed back before its delta applies
    for (url, _) in u.site.instance("ProfPage") {
        iv.evict_slices(&url);
    }
    let plan = MutationPlan::new(13).with_rule(MutationRule::edit_attr("ProfPage", "Rank", 0.7));
    let mutated = plan.apply_round(&mut u.site, 0).unwrap();
    assert!(mutated.edited_pages > 0);

    let rep = iv.sync(&u.site).unwrap();
    assert!(rep.failed.is_empty());
    let (_, slice_upqueries) = iv.slice_stats();
    assert!(
        slice_upqueries >= mutated.edited_pages,
        "each edited prof needs its slice restored ({slice_upqueries} < {})",
        mutated.edited_pages
    );

    let src = LiveSource::new(&ws, &u.site.server);
    let want = sorted(
        &Evaluator::new(&ws, &src)
            .eval(&prof_expr())
            .unwrap()
            .relation,
    );
    assert_eq!(iv.answer("profs").unwrap().rows().to_vec(), want);
}
