//! Global string interner: attribute names, page-scheme names, and URLs
//! become `u32` [`Symbol`] ids behind a process-wide arena.
//!
//! Interning turns the evaluator's per-row `String`/`Url` comparisons and
//! clones into `u32` copies. The arena leaks its strings (`&'static str`),
//! which is bounded by the working vocabulary of a process — attribute
//! names, scheme names, and the distinct URLs it has touched — and lets
//! [`Symbol::as_str`] hand out references without lifetimes or locks on the
//! read path.
//!
//! # Determinism
//!
//! Symbol ids depend on interning *order*, which under concurrent fetch can
//! differ between runs. Ids are therefore only ever used for **equality**
//! (hash keys, dedup, join probes) — never for ordering or output. Any
//! ordering visible to a caller is derived from the underlying strings.

use crate::url::Url;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a `u32` id into the global arena.
///
/// Equality of symbols is equality of the underlying strings. Symbols are
/// deliberately *not* `Ord`: ids reflect interning order, not lexicographic
/// order, and must never drive output ordering.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Arena {
    map: HashMap<&'static str, u32>,
    strs: Vec<&'static str>,
}

fn arena() -> &'static RwLock<Arena> {
    static ARENA: OnceLock<RwLock<Arena>> = OnceLock::new();
    ARENA.get_or_init(|| {
        RwLock::new(Arena {
            map: HashMap::new(),
            strs: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns a string, returning its symbol (idempotent).
    pub fn intern(s: &str) -> Symbol {
        {
            let a = arena().read().expect("interner poisoned");
            if let Some(&id) = a.map.get(s) {
                return Symbol(id);
            }
        }
        let mut a = arena().write().expect("interner poisoned");
        if let Some(&id) = a.map.get(s) {
            return Symbol(id); // raced: someone else interned it
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let id = a.strs.len() as u32;
        a.strs.push(leaked);
        a.map.insert(leaked, id);
        Symbol(id)
    }

    /// Looks a string up *without* interning it. `None` means no symbol for
    /// this string exists yet — useful for constants in predicates: if the
    /// constant was never interned, no stored value can equal it.
    pub fn lookup(s: &str) -> Option<Symbol> {
        arena()
            .read()
            .expect("interner poisoned")
            .map
            .get(s)
            .copied()
            .map(Symbol)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        arena().read().expect("interner poisoned").strs[self.0 as usize]
    }

    /// The raw id (stable within a process run only).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Interns a URL (by its string form).
    pub fn from_url(u: &Url) -> Symbol {
        Symbol::intern(u.as_str())
    }

    /// The interned string as a fresh [`Url`].
    pub fn to_url(self) -> Url {
        Url::new(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({} {:?})", self.0, self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Number of distinct strings interned so far (diagnostics).
pub fn interned_count() -> usize {
    arena().read().expect("interner poisoned").strs.len()
}

/// Total bytes held by the arena's strings (diagnostics).
pub fn interned_bytes() -> usize {
    arena()
        .read()
        .expect("interner poisoned")
        .strs
        .iter()
        .map(|s| s.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("ProfPage.PName");
        let b = Symbol::intern("ProfPage.PName");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "ProfPage.PName");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::intern("intern-test-a");
        let b = Symbol::intern("intern-test-b");
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(Symbol::lookup("intern-test-never-interned-xyzzy").is_none());
        let s = Symbol::intern("intern-test-lookup");
        assert_eq!(Symbol::lookup("intern-test-lookup"), Some(s));
    }

    #[test]
    fn url_round_trip() {
        let u = Url::new("/dept/1");
        let s = Symbol::from_url(&u);
        assert_eq!(s.to_url(), u);
        assert_eq!(s.as_str(), "/dept/1");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Symbol::intern(&format!("conc-{}", (i + j) % 50)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // same string → same symbol, across threads
        for syms in &all {
            for s in syms {
                assert_eq!(Symbol::intern(s.as_str()), *s);
            }
        }
    }
}
