//! Page-schemes and web schemes.
//!
//! A *page-scheme* `P(URL, A1:T1, …, An:Tn)` describes a set of structurally
//! similar pages as a nested relation scheme keyed by URL. A *web scheme*
//! bundles a set of page-schemes connected by links, the entry points whose
//! URLs are known, and the link/inclusion constraints that document the
//! site's redundancy (Section 3.3 of the paper).

use crate::constraints::{InclusionConstraint, LinkConstraint};
use crate::error::AdmError;
use crate::types::{Field, WebType};
use crate::url::Url;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;

/// A reference to an attribute of a page-scheme, as a dotted path that may
/// descend through list attributes: e.g. `ProfPage.CourseList.ToCourse`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// The page-scheme the path starts from.
    pub scheme: String,
    /// Attribute names from the top level downwards; never empty.
    pub path: Vec<String>,
}

impl AttrRef {
    /// Builds a reference from a scheme name and path segments.
    pub fn new<S: Into<String>>(scheme: impl Into<String>, path: Vec<S>) -> Self {
        AttrRef {
            scheme: scheme.into(),
            path: path.into_iter().map(Into::into).collect(),
        }
    }

    /// Parses `Scheme.a.b.c` notation.
    pub fn parse(s: &str) -> Result<Self> {
        let mut parts = s.split('.');
        let scheme = parts.next().unwrap_or("").to_string();
        let path: Vec<String> = parts.map(str::to_string).collect();
        if scheme.is_empty() || path.is_empty() {
            return Err(AdmError::UnknownAttribute {
                attr: s.to_string(),
                within: "attribute reference (want Scheme.attr…)".into(),
            });
        }
        Ok(AttrRef { scheme, path })
    }

    /// The final path segment (the attribute's own name).
    pub fn leaf(&self) -> &str {
        self.path.last().expect("AttrRef path is never empty")
    }

    /// The fully qualified dotted form, `Scheme.a.b`.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.scheme, self.path.join("."))
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.qualified())
    }
}

/// An entry point: a page-scheme whose instance is a single page with a
/// known URL (e.g. a site's home page). Entry points are the only pages
/// directly accessible without navigation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryPoint {
    /// The page-scheme name.
    pub scheme: String,
    /// The known URL of its single instance.
    pub url: Url,
}

/// A page-scheme: a name plus a list of typed attributes. The URL key is
/// implicit and not part of `fields`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageScheme {
    /// The page-scheme name (e.g. `ProfPage`).
    pub name: String,
    /// Attributes in display order.
    pub fields: Vec<Field>,
}

impl PageScheme {
    /// Creates a page-scheme, checking top-level and nested name uniqueness.
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> Result<Self> {
        fn check_unique(fields: &[Field]) -> Result<()> {
            let mut seen = std::collections::HashSet::new();
            for f in fields {
                if !seen.insert(f.name.as_str()) {
                    return Err(AdmError::DuplicateName(f.name.clone()));
                }
                if let WebType::List(inner) = &f.ty {
                    check_unique(inner)?;
                }
            }
            Ok(())
        }
        check_unique(&fields)?;
        Ok(PageScheme {
            name: name.into(),
            fields,
        })
    }

    /// Finds a top-level field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Resolves a dotted path (excluding the scheme name) to a field,
    /// descending through list types.
    pub fn resolve_path(&self, path: &[impl AsRef<str>]) -> Result<&Field> {
        let mut fields: &[Field] = &self.fields;
        let mut current: Option<&Field> = None;
        for (i, seg) in path.iter().enumerate() {
            let seg = seg.as_ref();
            let f = fields.iter().find(|f| f.name == seg).ok_or_else(|| {
                AdmError::UnknownAttribute {
                    attr: path
                        .iter()
                        .map(|s| s.as_ref())
                        .collect::<Vec<_>>()
                        .join("."),
                    within: format!("page-scheme {}", self.name),
                }
            })?;
            if i + 1 < path.len() {
                match &f.ty {
                    WebType::List(inner) => fields = inner,
                    other => {
                        return Err(AdmError::TypeMismatch {
                            attr: format!("{}.{}", self.name, seg),
                            expected: "list",
                            found: other.kind().to_string(),
                        })
                    }
                }
            }
            current = Some(f);
        }
        current.ok_or_else(|| AdmError::UnknownAttribute {
            attr: String::new(),
            within: format!("page-scheme {}", self.name),
        })
    }

    /// All link attributes, with their paths, recursively.
    pub fn link_paths(&self) -> Vec<(Vec<String>, String)> {
        let mut out = Vec::new();
        fn walk(fields: &[Field], prefix: &mut Vec<String>, out: &mut Vec<(Vec<String>, String)>) {
            for f in fields {
                prefix.push(f.name.clone());
                match &f.ty {
                    WebType::Link { target } => out.push((prefix.clone(), target.clone())),
                    WebType::List(inner) => walk(inner, prefix, out),
                    _ => {}
                }
                prefix.pop();
            }
        }
        walk(&self.fields, &mut Vec::new(), &mut out);
        out
    }

    /// The list-typed ancestor prefixes of a path (used to check that a
    /// constraint's attributes live at compatible nesting levels).
    pub fn list_ancestors(&self, path: &[impl AsRef<str>]) -> Result<Vec<Vec<String>>> {
        let mut out = Vec::new();
        for i in 1..path.len() {
            let prefix: Vec<&str> = path[..i].iter().map(|s| s.as_ref()).collect();
            let f = self.resolve_path(&prefix)?;
            if f.ty.is_multi_valued() {
                out.push(prefix.iter().map(|s| s.to_string()).collect());
            }
        }
        Ok(out)
    }
}

impl fmt::Display for PageScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(URL", self.name)?;
        for field in &self.fields {
            write!(f, ", {field}")?;
        }
        write!(f, ")")
    }
}

/// A web scheme: page-schemes, entry points, and constraints
/// (Section 3.3). Build one with [`WebSchemeBuilder`]; construction
/// validates referential integrity.
#[derive(Debug, Clone)]
pub struct WebScheme {
    schemes: BTreeMap<String, PageScheme>,
    entry_points: Vec<EntryPoint>,
    link_constraints: Vec<LinkConstraint>,
    inclusion_constraints: Vec<InclusionConstraint>,
}

impl WebScheme {
    /// Starts building a web scheme.
    pub fn builder() -> WebSchemeBuilder {
        WebSchemeBuilder::default()
    }

    /// Looks up a page-scheme by name.
    pub fn scheme(&self, name: &str) -> Result<&PageScheme> {
        self.schemes
            .get(name)
            .ok_or_else(|| AdmError::UnknownScheme(name.to_string()))
    }

    /// All page-schemes in name order.
    pub fn schemes(&self) -> impl Iterator<Item = &PageScheme> {
        self.schemes.values()
    }

    /// All entry points.
    pub fn entry_points(&self) -> &[EntryPoint] {
        &self.entry_points
    }

    /// The entry point for a scheme, if that scheme is one.
    pub fn entry_point(&self, scheme: &str) -> Option<&EntryPoint> {
        self.entry_points.iter().find(|e| e.scheme == scheme)
    }

    /// True if the named scheme is an entry point.
    pub fn is_entry_point(&self, scheme: &str) -> bool {
        self.entry_point(scheme).is_some()
    }

    /// All declared link constraints.
    pub fn link_constraints(&self) -> &[LinkConstraint] {
        &self.link_constraints
    }

    /// All declared inclusion constraints.
    pub fn inclusion_constraints(&self) -> &[InclusionConstraint] {
        &self.inclusion_constraints
    }

    /// Link constraints attached to the given link attribute.
    pub fn link_constraints_for(&self, link: &AttrRef) -> Vec<&LinkConstraint> {
        self.link_constraints
            .iter()
            .filter(|c| &c.link == link)
            .collect()
    }

    /// All link attributes (across all schemes) that point to `target`.
    pub fn links_to(&self, target: &str) -> Vec<AttrRef> {
        let mut out = Vec::new();
        for scheme in self.schemes.values() {
            for (path, tgt) in scheme.link_paths() {
                if tgt == target {
                    out.push(AttrRef {
                        scheme: scheme.name.clone(),
                        path,
                    });
                }
            }
        }
        out
    }

    /// Checks whether `sub ⊆ sup` follows from the declared inclusion
    /// constraints under reflexivity and transitivity.
    pub fn inclusion_implied(&self, sub: &AttrRef, sup: &AttrRef) -> bool {
        if sub == sup {
            return true;
        }
        // BFS over declared constraints (treating each as an edge sub→sup).
        let mut frontier = vec![sub.clone()];
        let mut seen = std::collections::HashSet::new();
        seen.insert(sub.clone());
        while let Some(cur) = frontier.pop() {
            for c in &self.inclusion_constraints {
                if c.sub == cur && seen.insert(c.sup.clone()) {
                    if &c.sup == sup {
                        return true;
                    }
                    frontier.push(c.sup.clone());
                }
            }
        }
        false
    }

    /// Resolves an [`AttrRef`] to its field definition.
    pub fn resolve(&self, attr: &AttrRef) -> Result<&Field> {
        self.scheme(&attr.scheme)?.resolve_path(&attr.path)
    }

    /// Returns a copy of this scheme with extra constraints added (e.g.
    /// constraints mined from the instance by a discovery tool). The
    /// result is re-validated; duplicates are dropped.
    pub fn extended_with(
        &self,
        link_constraints: Vec<LinkConstraint>,
        inclusion_constraints: Vec<InclusionConstraint>,
    ) -> Result<WebScheme> {
        let mut b = WebScheme::builder();
        for s in self.schemes.values() {
            b = b.scheme(s.clone());
        }
        for ep in &self.entry_points {
            b = b.entry_point(ep.scheme.clone(), ep.url.clone());
        }
        let mut links = self.link_constraints.clone();
        for c in link_constraints {
            if !links.contains(&c) {
                links.push(c);
            }
        }
        let mut incs = self.inclusion_constraints.clone();
        for c in inclusion_constraints {
            if !incs.contains(&c) {
                incs.push(c);
            }
        }
        for c in links {
            b = b.link_constraint(c);
        }
        for c in incs {
            b = b.inclusion(c);
        }
        b.build()
    }

    /// Renders the scheme in a compact textual form (used to reproduce the
    /// paper's Figure 1 as text).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for s in self.schemes.values() {
            let entry = if self.is_entry_point(&s.name) {
                let ep = self.entry_point(&s.name).unwrap();
                format!("  [entry point: {}]", ep.url)
            } else {
                String::new()
            };
            out.push_str(&format!("{s}{entry}\n"));
        }
        if !self.link_constraints.is_empty() {
            out.push_str("link constraints:\n");
            for c in &self.link_constraints {
                out.push_str(&format!("  {c}\n"));
            }
        }
        if !self.inclusion_constraints.is_empty() {
            out.push_str("inclusion constraints:\n");
            for c in &self.inclusion_constraints {
                out.push_str(&format!("  {c}\n"));
            }
        }
        out
    }
}

/// Builder for [`WebScheme`]; `build()` performs full validation.
#[derive(Debug, Default)]
pub struct WebSchemeBuilder {
    schemes: Vec<PageScheme>,
    entry_points: Vec<EntryPoint>,
    link_constraints: Vec<LinkConstraint>,
    inclusion_constraints: Vec<InclusionConstraint>,
}

impl WebSchemeBuilder {
    /// Adds a page-scheme.
    pub fn scheme(mut self, scheme: PageScheme) -> Self {
        self.schemes.push(scheme);
        self
    }

    /// Declares a page-scheme as an entry point with a known URL.
    pub fn entry_point(mut self, scheme: impl Into<String>, url: impl Into<Url>) -> Self {
        self.entry_points.push(EntryPoint {
            scheme: scheme.into(),
            url: url.into(),
        });
        self
    }

    /// Adds a link constraint.
    pub fn link_constraint(mut self, c: LinkConstraint) -> Self {
        self.link_constraints.push(c);
        self
    }

    /// Adds an inclusion constraint.
    pub fn inclusion(mut self, c: InclusionConstraint) -> Self {
        self.inclusion_constraints.push(c);
        self
    }

    /// Adds an equivalence `a ≡ b` as the two inclusion constraints
    /// `a ⊆ b` and `b ⊆ a` (paper, end of Section 3.2).
    pub fn equivalence(mut self, a: AttrRef, b: AttrRef) -> Self {
        self.inclusion_constraints
            .push(InclusionConstraint::new(a.clone(), b.clone()));
        self.inclusion_constraints
            .push(InclusionConstraint::new(b, a));
        self
    }

    /// Validates and constructs the [`WebScheme`].
    pub fn build(self) -> Result<WebScheme> {
        let mut schemes = BTreeMap::new();
        for s in self.schemes {
            let name = s.name.clone();
            if schemes.insert(name.clone(), s).is_some() {
                return Err(AdmError::DuplicateName(name));
            }
        }
        let ws = WebScheme {
            schemes,
            entry_points: self.entry_points,
            link_constraints: self.link_constraints,
            inclusion_constraints: self.inclusion_constraints,
        };
        ws.validate()?;
        Ok(ws)
    }
}

impl WebScheme {
    fn validate(&self) -> Result<()> {
        // Entry points reference known schemes, at most one per scheme.
        let mut seen_entry = std::collections::HashSet::new();
        for ep in &self.entry_points {
            self.scheme(&ep.scheme)?;
            if !seen_entry.insert(ep.scheme.as_str()) {
                return Err(AdmError::InvalidScheme(format!(
                    "duplicate entry point for scheme {}",
                    ep.scheme
                )));
            }
        }
        // Every link target exists.
        for s in self.schemes.values() {
            for (path, target) in s.link_paths() {
                if !self.schemes.contains_key(&target) {
                    return Err(AdmError::InvalidScheme(format!(
                        "link {}.{} points to unknown scheme {}",
                        s.name,
                        path.join("."),
                        target
                    )));
                }
            }
        }
        // Link constraints: link path is a link; source attr belongs to the
        // same scheme at a compatible nesting level; target attr is a
        // mono-valued attribute of the link's target scheme.
        for c in &self.link_constraints {
            let link_field = self.resolve(&c.link)?;
            let target = link_field
                .ty
                .link_target()
                .ok_or_else(|| AdmError::TypeMismatch {
                    attr: c.link.qualified(),
                    expected: "link",
                    found: link_field.ty.kind().to_string(),
                })?;
            if c.source_attr.scheme != c.link.scheme {
                return Err(AdmError::InvalidScheme(format!(
                    "link constraint {c}: source attribute must belong to {}",
                    c.link.scheme
                )));
            }
            let src = self.resolve(&c.source_attr)?;
            if !src.ty.is_mono_valued() {
                return Err(AdmError::InvalidScheme(format!(
                    "link constraint {c}: source attribute is multi-valued"
                )));
            }
            // Source must be visible at the link's nesting level: its list
            // ancestors must be a prefix of the link's list ancestors.
            let s = self.scheme(&c.link.scheme)?;
            let link_lists = s.list_ancestors(&c.link.path)?;
            let src_lists = s.list_ancestors(&c.source_attr.path)?;
            if !link_lists.starts_with(&src_lists) {
                return Err(AdmError::InvalidScheme(format!(
                    "link constraint {c}: source attribute is nested under a \
                     different list than the link"
                )));
            }
            if c.target_attr.scheme != target {
                return Err(AdmError::InvalidScheme(format!(
                    "link constraint {c}: target attribute must belong to {target}"
                )));
            }
            let tgt = self.resolve(&c.target_attr)?;
            if !tgt.ty.is_mono_valued() || c.target_attr.path.len() != 1 {
                return Err(AdmError::InvalidScheme(format!(
                    "link constraint {c}: target attribute must be a top-level \
                     mono-valued attribute"
                )));
            }
        }
        // Inclusion constraints: both sides are link attributes with the
        // same target scheme.
        for c in &self.inclusion_constraints {
            let sub = self.resolve(&c.sub)?;
            let sup = self.resolve(&c.sup)?;
            match (sub.ty.link_target(), sup.ty.link_target()) {
                (Some(a), Some(b)) if a == b => {}
                (Some(_), Some(_)) => {
                    return Err(AdmError::InvalidScheme(format!(
                        "inclusion constraint {c}: link targets differ"
                    )))
                }
                _ => {
                    return Err(AdmError::InvalidScheme(format!(
                        "inclusion constraint {c}: both sides must be links"
                    )))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_scheme() -> WebScheme {
        let list = PageScheme::new(
            "ListPage",
            vec![Field::list(
                "Items",
                vec![Field::text("Name"), Field::link("ToItem", "ItemPage")],
            )],
        )
        .unwrap();
        let item = PageScheme::new("ItemPage", vec![Field::text("Name")]).unwrap();
        WebScheme::builder()
            .scheme(list)
            .scheme(item)
            .entry_point("ListPage", "/list.html")
            .link_constraint(LinkConstraint::new(
                AttrRef::parse("ListPage.Items.ToItem").unwrap(),
                AttrRef::parse("ListPage.Items.Name").unwrap(),
                AttrRef::parse("ItemPage.Name").unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn attr_ref_parse_and_display() {
        let a = AttrRef::parse("ProfPage.CourseList.ToCourse").unwrap();
        assert_eq!(a.scheme, "ProfPage");
        assert_eq!(a.path, vec!["CourseList", "ToCourse"]);
        assert_eq!(a.leaf(), "ToCourse");
        assert_eq!(a.to_string(), "ProfPage.CourseList.ToCourse");
        assert!(AttrRef::parse("NoPath").is_err());
        assert!(AttrRef::parse("").is_err());
    }

    #[test]
    fn resolve_path_through_lists() {
        let ws = mini_scheme();
        let f = ws
            .resolve(&AttrRef::parse("ListPage.Items.ToItem").unwrap())
            .unwrap();
        assert!(f.ty.is_link());
        assert!(ws
            .resolve(&AttrRef::parse("ListPage.Nope").unwrap())
            .is_err());
    }

    #[test]
    fn resolve_rejects_descent_through_mono() {
        let ws = mini_scheme();
        let err = ws
            .resolve(&AttrRef::parse("ItemPage.Name.Deeper").unwrap())
            .unwrap_err();
        assert!(matches!(err, AdmError::TypeMismatch { .. }));
    }

    #[test]
    fn entry_points() {
        let ws = mini_scheme();
        assert!(ws.is_entry_point("ListPage"));
        assert!(!ws.is_entry_point("ItemPage"));
        assert_eq!(
            ws.entry_point("ListPage").unwrap().url.as_str(),
            "/list.html"
        );
    }

    #[test]
    fn links_to_finds_nested_links() {
        let ws = mini_scheme();
        let links = ws.links_to("ItemPage");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].qualified(), "ListPage.Items.ToItem");
        assert!(ws.links_to("ListPage").is_empty());
    }

    #[test]
    fn rejects_dangling_link_target() {
        let bad = PageScheme::new("P", vec![Field::link("ToX", "Nowhere")]).unwrap();
        let err = WebScheme::builder().scheme(bad).build().unwrap_err();
        assert!(matches!(err, AdmError::InvalidScheme(_)));
    }

    #[test]
    fn rejects_duplicate_scheme() {
        let a = PageScheme::new("P", vec![Field::text("X")]).unwrap();
        let b = PageScheme::new("P", vec![Field::text("Y")]).unwrap();
        let err = WebScheme::builder()
            .scheme(a)
            .scheme(b)
            .build()
            .unwrap_err();
        assert!(matches!(err, AdmError::DuplicateName(_)));
    }

    #[test]
    fn rejects_duplicate_field_names() {
        assert!(PageScheme::new("P", vec![Field::text("X"), Field::text("X")]).is_err());
        // nested duplicates too
        assert!(PageScheme::new(
            "P",
            vec![Field::list("L", vec![Field::text("A"), Field::text("A")])]
        )
        .is_err());
    }

    #[test]
    fn rejects_link_constraint_on_non_link() {
        let list = PageScheme::new("A", vec![Field::text("T")]).unwrap();
        let item = PageScheme::new("B", vec![Field::text("T")]).unwrap();
        let err = WebScheme::builder()
            .scheme(list)
            .scheme(item)
            .link_constraint(LinkConstraint::new(
                AttrRef::parse("A.T").unwrap(),
                AttrRef::parse("A.T").unwrap(),
                AttrRef::parse("B.T").unwrap(),
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, AdmError::TypeMismatch { .. }));
    }

    #[test]
    fn rejects_inclusion_between_different_targets() {
        let a = PageScheme::new("A", vec![Field::link("L1", "X"), Field::link("L2", "Y")]).unwrap();
        let x = PageScheme::new("X", vec![]).unwrap();
        let y = PageScheme::new("Y", vec![]).unwrap();
        let err = WebScheme::builder()
            .scheme(a)
            .scheme(x)
            .scheme(y)
            .inclusion(InclusionConstraint::new(
                AttrRef::parse("A.L1").unwrap(),
                AttrRef::parse("A.L2").unwrap(),
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, AdmError::InvalidScheme(_)));
    }

    #[test]
    fn inclusion_implied_reflexive_and_transitive() {
        let a = PageScheme::new(
            "A",
            vec![
                Field::link("L1", "X"),
                Field::link("L2", "X"),
                Field::link("L3", "X"),
            ],
        )
        .unwrap();
        let x = PageScheme::new("X", vec![]).unwrap();
        let ws = WebScheme::builder()
            .scheme(a)
            .scheme(x)
            .inclusion(InclusionConstraint::new(
                AttrRef::parse("A.L1").unwrap(),
                AttrRef::parse("A.L2").unwrap(),
            ))
            .inclusion(InclusionConstraint::new(
                AttrRef::parse("A.L2").unwrap(),
                AttrRef::parse("A.L3").unwrap(),
            ))
            .build()
            .unwrap();
        let l1 = AttrRef::parse("A.L1").unwrap();
        let l2 = AttrRef::parse("A.L2").unwrap();
        let l3 = AttrRef::parse("A.L3").unwrap();
        assert!(ws.inclusion_implied(&l1, &l1));
        assert!(ws.inclusion_implied(&l1, &l2));
        assert!(ws.inclusion_implied(&l1, &l3));
        assert!(!ws.inclusion_implied(&l3, &l1));
    }

    #[test]
    fn equivalence_adds_both_directions() {
        let a = PageScheme::new("A", vec![Field::link("L1", "X"), Field::link("L2", "X")]).unwrap();
        let x = PageScheme::new("X", vec![]).unwrap();
        let ws = WebScheme::builder()
            .scheme(a)
            .scheme(x)
            .equivalence(
                AttrRef::parse("A.L1").unwrap(),
                AttrRef::parse("A.L2").unwrap(),
            )
            .build()
            .unwrap();
        let l1 = AttrRef::parse("A.L1").unwrap();
        let l2 = AttrRef::parse("A.L2").unwrap();
        assert!(ws.inclusion_implied(&l1, &l2));
        assert!(ws.inclusion_implied(&l2, &l1));
    }

    #[test]
    fn extended_with_adds_and_dedups_constraints() {
        let ws = mini_scheme();
        let extra_inc =
            InclusionConstraint::parse("ListPage.Items.ToItem", "ListPage.Items.ToItem").unwrap();
        let dup_link = ws.link_constraints()[0].clone();
        let extended = ws
            .extended_with(vec![dup_link], vec![extra_inc.clone()])
            .unwrap();
        // duplicate link constraint dropped, new inclusion added
        assert_eq!(
            extended.link_constraints().len(),
            ws.link_constraints().len()
        );
        assert_eq!(extended.inclusion_constraints().len(), 1);
        assert!(extended.inclusion_constraints().contains(&extra_inc));
        // invalid additions are rejected by re-validation
        let bad = InclusionConstraint::parse("ListPage.Nope", "ListPage.Items.ToItem").unwrap();
        assert!(ws.extended_with(vec![], vec![bad]).is_err());
    }

    #[test]
    fn describe_mentions_everything() {
        let ws = mini_scheme();
        let d = ws.describe();
        assert!(d.contains("ListPage(URL"));
        assert!(d.contains("entry point: /list.html"));
        assert!(d.contains("link constraints:"));
    }

    #[test]
    fn display_page_scheme() {
        let ws = mini_scheme();
        let s = ws.scheme("ItemPage").unwrap();
        assert_eq!(s.to_string(), "ItemPage(URL, Name: text)");
    }
}
