//! Values and nested tuples.
//!
//! An instance of a page-scheme is a *page-relation*: a set of nested
//! tuples, one per page, each carrying a URL and a value of the right type
//! for every attribute. We keep nested relations in Partitioned Normal Form
//! (PNF): the mono-valued attributes at each level form a key.

use crate::types::{Field, WebType};
use crate::url::Url;
use std::cmp::Ordering;
use std::fmt;

/// A value of a web type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Text (base type); also used for image alt/URLs when queried as text.
    Text(String),
    /// A link value: the URL of the destination page.
    Link(Url),
    /// Null, produced by optional attributes.
    Null,
    /// A multi-valued attribute: a list of inner tuples.
    List(Vec<Tuple>),
}

impl Value {
    /// Shorthand for a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Shorthand for a link value.
    pub fn link(u: impl Into<Url>) -> Self {
        Value::Link(u.into())
    }

    /// The text content, if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The URL, if this is a link value.
    pub fn as_link(&self) -> Option<&Url> {
        match self {
            Value::Link(u) => Some(u),
            _ => None,
        }
    }

    /// The inner tuples, if this is a list value.
    pub fn as_list(&self) -> Option<&[Tuple]> {
        match self {
            Value::List(ts) => Some(ts),
            _ => None,
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Checks this value against a web type. Nulls conform to any
    /// mono-valued type (optionality is enforced at the schema layer).
    pub fn conforms_to(&self, ty: &WebType) -> bool {
        match (self, ty) {
            (Value::Null, t) => t.is_mono_valued(),
            (Value::Text(_), WebType::Text) | (Value::Text(_), WebType::Image) => true,
            (Value::Link(_), WebType::Link { .. }) => true,
            (Value::List(rows), WebType::List(fields)) => {
                rows.iter().all(|t| t.conforms_to(fields))
            }
            _ => false,
        }
    }

    /// Estimated in-memory footprint in bytes, used by byte-budgeted page
    /// caches. Counts string payloads plus a fixed per-node overhead; not
    /// an exact allocator measure.
    pub fn approx_bytes(&self) -> usize {
        const NODE: usize = std::mem::size_of::<Value>();
        match self {
            Value::Null => NODE,
            Value::Text(s) => NODE + s.len(),
            Value::Link(u) => NODE + u.as_str().len(),
            Value::List(ts) => NODE + ts.iter().map(Tuple::approx_bytes).sum::<usize>(),
        }
    }

    /// A total order over values, used for deterministic output:
    /// Null < Text < Link < List.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Text(_) => 1,
                Value::Link(_) => 2,
                Value::List(_) => 3,
            }
        }
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Link(a), Value::Link(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.total_cmp(y) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s}"),
            Value::Link(u) => write!(f, "{u}"),
            Value::Null => write!(f, "⊥"),
            Value::List(ts) => {
                write!(f, "[")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<Url> for Value {
    fn from(u: Url) -> Self {
        Value::Link(u)
    }
}

/// A nested tuple: an ordered list of named values.
///
/// Field order is significant for display but not for equality of *sets* of
/// tuples; the schema layer always produces fields in scheme order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    fields: Vec<(String, Value)>,
}

impl Tuple {
    /// An empty tuple.
    pub fn new() -> Self {
        Tuple { fields: Vec::new() }
    }

    /// Builds a tuple from (name, value) pairs.
    pub fn from_pairs(pairs: Vec<(String, Value)>) -> Self {
        Tuple { fields: pairs }
    }

    /// Appends a field; builder style.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.push((name.into(), value.into()));
        self
    }

    /// Appends a list field; builder style.
    pub fn with_list(mut self, name: impl Into<String>, rows: Vec<Tuple>) -> Self {
        self.fields.push((name.into(), Value::List(rows)));
        self
    }

    /// Appends a null field; builder style.
    pub fn with_null(mut self, name: impl Into<String>) -> Self {
        self.fields.push((name.into(), Value::Null));
        self
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the tuple has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks a field up by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }

    /// Looks a (possibly nested) dotted path up, descending into list values
    /// is not allowed here — paths must address mono-valued positions; use
    /// the relation layer's unnest for multi-valued access.
    pub fn get_path(&self, path: &[&str]) -> Option<&Value> {
        let (first, rest) = path.split_first()?;
        let v = self.get(first)?;
        if rest.is_empty() {
            Some(v)
        } else {
            // Descend only through single-row lists is NOT supported: paths
            // through lists are a relation-level concern.
            None
        }
    }

    /// Iterates over (name, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Field names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| n.as_str())
    }

    /// Consumes the tuple into its pairs.
    pub fn into_pairs(self) -> Vec<(String, Value)> {
        self.fields
    }

    /// Checks the tuple against a field list: every required field present
    /// and of conforming type; nulls only where optional; no extra fields.
    pub fn conforms_to(&self, fields: &[Field]) -> bool {
        if self.fields.len() != fields.len() {
            return false;
        }
        fields.iter().all(|f| match self.get(&f.name) {
            None => false,
            Some(Value::Null) => f.optional,
            Some(v) => v.conforms_to(&f.ty),
        })
    }

    /// Estimated in-memory footprint in bytes (see [`Value::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        self.fields
            .iter()
            .map(|(n, v)| n.len() + v.approx_bytes())
            .sum()
    }

    /// Total order for deterministic sorting.
    pub fn total_cmp(&self, other: &Tuple) -> Ordering {
        for ((an, av), (bn, bv)) in self.fields.iter().zip(other.fields.iter()) {
            match an.cmp(bn).then_with(|| av.total_cmp(bv)) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        self.fields.len().cmp(&other.fields.len())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (n, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof_fields() -> Vec<Field> {
        vec![
            Field::text("PName"),
            Field::optional("Email", WebType::Text),
            Field::list(
                "CourseList",
                vec![Field::text("CName"), Field::link("ToCourse", "CoursePage")],
            ),
        ]
    }

    fn prof_tuple() -> Tuple {
        Tuple::new()
            .with("PName", "Codd")
            .with_null("Email")
            .with_list(
                "CourseList",
                vec![Tuple::new()
                    .with("CName", "Databases")
                    .with("ToCourse", Value::link("/course/1.html"))],
            )
    }

    #[test]
    fn get_and_len() {
        let t = prof_tuple();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get("PName").unwrap().as_text(), Some("Codd"));
        assert!(t.get("Email").unwrap().is_null());
        assert!(t.get("Missing").is_none());
    }

    #[test]
    fn conformance_accepts_valid() {
        assert!(prof_tuple().conforms_to(&prof_fields()));
    }

    #[test]
    fn conformance_rejects_null_in_required() {
        let t = Tuple::new()
            .with_null("PName")
            .with_null("Email")
            .with_list("CourseList", vec![]);
        assert!(!t.conforms_to(&prof_fields()));
    }

    #[test]
    fn conformance_rejects_wrong_type() {
        let t = Tuple::new()
            .with("PName", Value::link("/x"))
            .with_null("Email")
            .with_list("CourseList", vec![]);
        assert!(!t.conforms_to(&prof_fields()));
    }

    #[test]
    fn conformance_rejects_arity() {
        let t = Tuple::new().with("PName", "Codd");
        assert!(!t.conforms_to(&prof_fields()));
    }

    #[test]
    fn conformance_rejects_bad_inner_tuple() {
        let t = Tuple::new()
            .with("PName", "Codd")
            .with_null("Email")
            .with_list("CourseList", vec![Tuple::new().with("Wrong", "x")]);
        assert!(!t.conforms_to(&prof_fields()));
    }

    #[test]
    fn display_forms() {
        let t = prof_tuple();
        let s = t.to_string();
        assert!(s.contains("PName: Codd"));
        assert!(s.contains('⊥'));
        assert!(s.contains("/course/1.html"));
    }

    #[test]
    fn value_total_order_ranks() {
        let mut vs = [
            Value::List(vec![]),
            Value::text("a"),
            Value::Null,
            Value::link("/z"),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert!(vs[0].is_null());
        assert_eq!(vs[1].as_text(), Some("a"));
        assert!(vs[2].as_link().is_some());
    }

    #[test]
    fn tuple_total_order_is_deterministic() {
        let a = Tuple::new().with("X", "a");
        let b = Tuple::new().with("X", "b");
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(
            Value::from(Url::new("/p")).as_link().map(|u| u.as_str()),
            Some("/p")
        );
    }

    #[test]
    fn get_path_rejects_descent_through_lists() {
        let t = prof_tuple();
        assert!(t.get_path(&["CourseList", "CName"]).is_none());
        assert!(t.get_path(&["PName"]).is_some());
    }
}
