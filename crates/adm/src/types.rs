//! Web types: the type system of ADM attributes.
//!
//! Following Section 3.1 of the paper, a *web type* is either mono-valued —
//! a base type (`text`, `image`) or `link to P` — or multi-valued — a
//! `list of (A1:T1, …, An:Tn)` of (possibly nested) tuples.

use std::fmt;

/// The type of a page-scheme attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WebType {
    /// Free text (also used for anchors, which the paper models as
    /// independent text attributes next to their link).
    Text,
    /// An inline image; carries no queryable value beyond its URL.
    Image,
    /// A hypertext link whose destinations are instances of the named
    /// page-scheme. The value of a link attribute is a [`crate::Url`].
    Link {
        /// Name of the target page-scheme.
        target: String,
    },
    /// A list of tuples over the given fields; fields may themselves be
    /// lists (nested structure).
    List(Vec<Field>),
}

impl WebType {
    /// A link type to the named page-scheme.
    pub fn link(target: impl Into<String>) -> Self {
        WebType::Link {
            target: target.into(),
        }
    }

    /// A list type over the given fields.
    pub fn list(fields: Vec<Field>) -> Self {
        WebType::List(fields)
    }

    /// True for base types and links (single value per tuple).
    pub fn is_mono_valued(&self) -> bool {
        !matches!(self, WebType::List(_))
    }

    /// True for list types.
    pub fn is_multi_valued(&self) -> bool {
        matches!(self, WebType::List(_))
    }

    /// True for link types.
    pub fn is_link(&self) -> bool {
        matches!(self, WebType::Link { .. })
    }

    /// The link target scheme, if this is a link type.
    pub fn link_target(&self) -> Option<&str> {
        match self {
            WebType::Link { target } => Some(target),
            _ => None,
        }
    }

    /// The fields of a list type, if this is one.
    pub fn list_fields(&self) -> Option<&[Field]> {
        match self {
            WebType::List(fields) => Some(fields),
            _ => None,
        }
    }

    /// A short name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            WebType::Text => "text",
            WebType::Image => "image",
            WebType::Link { .. } => "link",
            WebType::List(_) => "list",
        }
    }

    /// Maximum nesting depth: 0 for mono-valued types, 1 + max field depth
    /// for lists.
    pub fn depth(&self) -> usize {
        match self {
            WebType::List(fields) => 1 + fields.iter().map(|f| f.ty.depth()).max().unwrap_or(0),
            _ => 0,
        }
    }
}

impl fmt::Display for WebType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebType::Text => write!(f, "text"),
            WebType::Image => write!(f, "image"),
            WebType::Link { target } => write!(f, "link to {target}"),
            WebType::List(fields) => {
                write!(f, "list of (")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{field}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A named, typed, possibly optional attribute of a page-scheme or of a
/// list type. Optional attributes may produce [`crate::Value::Null`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name, unique among its siblings.
    pub name: String,
    /// The attribute's web type.
    pub ty: WebType,
    /// Whether the attribute may be absent (null) in some pages.
    pub optional: bool,
}

impl Field {
    /// A required field.
    pub fn new(name: impl Into<String>, ty: WebType) -> Self {
        Field {
            name: name.into(),
            ty,
            optional: false,
        }
    }

    /// An optional field (may generate nulls).
    pub fn optional(name: impl Into<String>, ty: WebType) -> Self {
        Field {
            name: name.into(),
            ty,
            optional: true,
        }
    }

    /// Shorthand for a required text field.
    pub fn text(name: impl Into<String>) -> Self {
        Field::new(name, WebType::Text)
    }

    /// Shorthand for a required link field.
    pub fn link(name: impl Into<String>, target: impl Into<String>) -> Self {
        Field::new(name, WebType::link(target))
    }

    /// Shorthand for a required list field.
    pub fn list(name: impl Into<String>, fields: Vec<Field>) -> Self {
        Field::new(name, WebType::list(fields))
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)?;
        if self.optional {
            write!(f, "?")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn course_list() -> WebType {
        WebType::list(vec![
            Field::text("CName"),
            Field::link("ToCourse", "CoursePage"),
        ])
    }

    #[test]
    fn mono_vs_multi() {
        assert!(WebType::Text.is_mono_valued());
        assert!(WebType::link("P").is_mono_valued());
        assert!(course_list().is_multi_valued());
        assert!(!course_list().is_mono_valued());
    }

    #[test]
    fn link_target() {
        assert_eq!(WebType::link("ProfPage").link_target(), Some("ProfPage"));
        assert_eq!(WebType::Text.link_target(), None);
    }

    #[test]
    fn display_nested_list() {
        let t = WebType::list(vec![
            Field::text("Title"),
            Field::list(
                "Authors",
                vec![Field::text("AName"), Field::link("ToAuthor", "AuthorPage")],
            ),
        ]);
        assert_eq!(
            t.to_string(),
            "list of (Title: text, Authors: list of (AName: text, ToAuthor: link to AuthorPage))"
        );
    }

    #[test]
    fn optional_display() {
        let f = Field::optional("Email", WebType::Text);
        assert_eq!(f.to_string(), "Email: text?");
    }

    #[test]
    fn depth() {
        assert_eq!(WebType::Text.depth(), 0);
        assert_eq!(course_list().depth(), 1);
        let nested = WebType::list(vec![Field::list("Inner", vec![Field::text("X")])]);
        assert_eq!(nested.depth(), 2);
    }

    #[test]
    fn kind_names() {
        assert_eq!(WebType::Image.kind(), "image");
        assert_eq!(course_list().kind(), "list");
    }
}
