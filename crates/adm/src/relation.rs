//! Page-relations: nested relations with named, qualified columns.
//!
//! Intermediate results of the navigational algebra are relations whose
//! columns carry *qualified dotted names* (`ProfPage.URL`,
//! `ProfPage.CourseList.CName`, …). Attribute references in queries resolve
//! by exact match or by unique suffix (`CName` resolves to the single column
//! ending in `.CName`), mirroring the paper's convention that "attributes
//! are suitably renamed whenever needed".
//!
//! All operators have set semantics: projection deduplicates, and we assume
//! (per the paper, footnote 3) no duplicates arise inside pages.

use crate::error::AdmError;
use crate::value::{Tuple, Value};
use crate::Result;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A relation: a header of qualified column names plus rows of values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    /// An empty relation with the given header.
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Self {
        Relation {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Builds a relation from a header and rows, checking arity.
    pub fn from_rows<S: Into<String>>(columns: Vec<S>, rows: Vec<Vec<Value>>) -> Result<Self> {
        let mut r = Relation::new(columns);
        for row in rows {
            r.push_row(row)?;
        }
        Ok(r)
    }

    /// The column header.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row, checking arity.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(AdmError::ArityMismatch {
                expected: self.columns.len(),
                found: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Resolves a column reference: exact match first, then unique dotted
    /// suffix (`Name` matches `ProfPage.Name`), with ambiguity detection.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.columns.iter().position(|c| c == name) {
            return Ok(i);
        }
        let suffix = format!(".{name}");
        let hits: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ends_with(&suffix))
            .map(|(i, _)| i)
            .collect();
        match hits.len() {
            1 => Ok(hits[0]),
            0 => Err(AdmError::UnknownAttribute {
                attr: name.to_string(),
                within: format!("relation [{}]", self.columns.join(", ")),
            }),
            _ => Err(AdmError::AmbiguousAttribute {
                attr: name.to_string(),
                candidates: hits.iter().map(|&i| self.columns[i].clone()).collect(),
            }),
        }
    }

    /// Returns the value at `(row, column-name)`.
    pub fn value(&self, row: usize, name: &str) -> Result<&Value> {
        let i = self.resolve(name)?;
        Ok(&self.rows[row][i])
    }

    /// Selection with an arbitrary predicate over rows.
    pub fn select<F: FnMut(&[Value]) -> bool>(&self, mut pred: F) -> Relation {
        Relation {
            columns: self.columns.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Selection `column = constant`.
    pub fn select_eq(&self, column: &str, value: &Value) -> Result<Relation> {
        let i = self.resolve(column)?;
        Ok(self.select(|r| &r[i] == value))
    }

    /// Projection onto the named columns, with set-semantics deduplication.
    pub fn project(&self, cols: &[&str]) -> Result<Relation> {
        let idx: Vec<usize> = cols
            .iter()
            .map(|c| self.resolve(c))
            .collect::<Result<_>>()?;
        let columns: Vec<String> = idx.iter().map(|&i| self.columns[i].clone()).collect();
        let mut seen = HashSet::new();
        let mut rows = Vec::new();
        for row in &self.rows {
            let out: Vec<Value> = idx.iter().map(|&i| row[i].clone()).collect();
            if seen.insert(out.clone()) {
                rows.push(out);
            }
        }
        Ok(Relation { columns, rows })
    }

    /// Removes duplicate rows.
    pub fn distinct(&self) -> Relation {
        let mut seen = HashSet::new();
        Relation {
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| seen.insert((*r).clone()))
                .cloned()
                .collect(),
        }
    }

    /// Number of distinct values in a column (nulls excluded).
    pub fn distinct_count(&self, column: &str) -> Result<usize> {
        let i = self.resolve(column)?;
        let set: HashSet<&Value> = self
            .rows
            .iter()
            .map(|r| &r[i])
            .filter(|v| !v.is_null())
            .collect();
        Ok(set.len())
    }

    /// Equi-join on pairs of columns (hash join on the left). Column names
    /// from both sides are preserved; the header must stay unambiguous, so
    /// callers qualify columns before joining.
    pub fn join(&self, other: &Relation, on: &[(&str, &str)]) -> Result<Relation> {
        let left_keys: Vec<usize> = on
            .iter()
            .map(|(l, _)| self.resolve(l))
            .collect::<Result<_>>()?;
        let right_keys: Vec<usize> = on
            .iter()
            .map(|(_, r)| other.resolve(r))
            .collect::<Result<_>>()?;
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        // Hash the smaller side? Keep it simple: hash the right side.
        let mut table: HashMap<Vec<&Value>, Vec<usize>> = HashMap::new();
        for (ri, row) in other.rows.iter().enumerate() {
            let key: Vec<&Value> = right_keys.iter().map(|&i| &row[i]).collect();
            if key.iter().any(|v| v.is_null()) {
                continue; // nulls never join
            }
            table.entry(key).or_default().push(ri);
        }
        let mut rows = Vec::new();
        for lrow in &self.rows {
            let key: Vec<&Value> = left_keys.iter().map(|&i| &lrow[i]).collect();
            if key.iter().any(|v| v.is_null()) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    let mut out = lrow.clone();
                    out.extend(other.rows[ri].iter().cloned());
                    rows.push(out);
                }
            }
        }
        Ok(Relation { columns, rows })
    }

    /// Unnests a list column: each inner tuple produces an output row; the
    /// list column is replaced by columns `{col}.{field}` for the given
    /// inner field names. Rows whose list is empty produce no output (μ
    /// semantics on PNF relations).
    pub fn unnest(&self, column: &str, inner_fields: &[String]) -> Result<Relation> {
        let ci = self.resolve(column)?;
        let col_name = self.columns[ci].clone();
        let mut columns: Vec<String> =
            Vec::with_capacity(self.columns.len() - 1 + inner_fields.len());
        for (i, c) in self.columns.iter().enumerate() {
            if i != ci {
                columns.push(c.clone());
            }
        }
        for f in inner_fields {
            columns.push(format!("{col_name}.{f}"));
        }
        let mut rows = Vec::new();
        for row in &self.rows {
            let Value::List(inner) = &row[ci] else {
                if row[ci].is_null() {
                    continue; // null list ≡ empty list
                }
                return Err(AdmError::TypeMismatch {
                    attr: col_name.clone(),
                    expected: "list",
                    found: format!("{:?}", row[ci]),
                });
            };
            for t in inner {
                let mut out: Vec<Value> = Vec::with_capacity(columns.len());
                for (i, v) in row.iter().enumerate() {
                    if i != ci {
                        out.push(v.clone());
                    }
                }
                for f in inner_fields {
                    out.push(t.get(f).cloned().unwrap_or(Value::Null));
                }
                rows.push(out);
            }
        }
        Ok(Relation { columns, rows })
    }

    /// Unnests, inferring inner field names from the first non-empty list.
    pub fn unnest_infer(&self, column: &str) -> Result<Relation> {
        let ci = self.resolve(column)?;
        let fields: Vec<String> = self
            .rows
            .iter()
            .find_map(|r| match &r[ci] {
                Value::List(ts) if !ts.is_empty() => {
                    Some(ts[0].names().map(str::to_string).collect())
                }
                _ => None,
            })
            .unwrap_or_default();
        self.unnest(column, &fields)
    }

    /// Renames a column (exact name required).
    pub fn rename(&self, from: &str, to: &str) -> Result<Relation> {
        let i = self.resolve(from)?;
        let mut columns = self.columns.clone();
        columns[i] = to.to_string();
        Ok(Relation {
            columns,
            rows: self.rows.clone(),
        })
    }

    /// Prefixes every column with `prefix.` (used when aliasing a scheme).
    pub fn qualify(&self, prefix: &str) -> Relation {
        Relation {
            columns: self
                .columns
                .iter()
                .map(|c| format!("{prefix}.{c}"))
                .collect(),
            rows: self.rows.clone(),
        }
    }

    /// Set union (headers must match exactly).
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        if self.columns != other.columns {
            return Err(AdmError::ArityMismatch {
                expected: self.columns.len(),
                found: other.columns.len(),
            });
        }
        let mut out = self.clone();
        out.rows.extend(other.rows.iter().cloned());
        Ok(out.distinct())
    }

    /// Set difference `self − other` (headers must match exactly).
    pub fn minus(&self, other: &Relation) -> Result<Relation> {
        if self.columns != other.columns {
            return Err(AdmError::ArityMismatch {
                expected: self.columns.len(),
                found: other.columns.len(),
            });
        }
        let exclude: HashSet<&Vec<Value>> = other.rows.iter().collect();
        Ok(Relation {
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| !exclude.contains(r))
                .cloned()
                .collect(),
        })
    }

    /// Rows sorted deterministically (for stable output and tests).
    pub fn sorted(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                match x.total_cmp(y) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        Relation {
            columns: self.columns.clone(),
            rows,
        }
    }

    /// Converts each row to a [`Tuple`] over the column names.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.rows
            .iter()
            .map(|r| {
                Tuple::from_pairs(
                    self.columns
                        .iter()
                        .cloned()
                        .zip(r.iter().cloned())
                        .collect(),
                )
            })
            .collect()
    }

    /// Renders an ASCII table (sorted rows) — handy in examples and tests.
    pub fn to_table(&self) -> String {
        let sorted = self.sorted();
        let mut cells = Vec::with_capacity(sorted.rows.len() * sorted.columns.len());
        for row in &sorted.rows {
            cells.extend(row.iter().map(|v| v.to_string()));
        }
        crate::display::render_ascii_table(&sorted.columns, sorted.rows.len(), &cells)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profs() -> Relation {
        Relation::from_rows(
            vec!["ProfPage.URL", "ProfPage.PName", "ProfPage.Rank"],
            vec![
                vec![Value::link("/p1"), Value::text("Codd"), Value::text("Full")],
                vec![Value::link("/p2"), Value::text("Gray"), Value::text("Full")],
                vec![
                    Value::link("/p3"),
                    Value::text("Kim"),
                    Value::text("Assistant"),
                ],
            ],
        )
        .unwrap()
    }

    fn courses() -> Relation {
        Relation::from_rows(
            vec!["CoursePage.URL", "CoursePage.CName", "CoursePage.ToProf"],
            vec![
                vec![Value::link("/c1"), Value::text("DB"), Value::link("/p1")],
                vec![Value::link("/c2"), Value::text("OS"), Value::link("/p3")],
                vec![Value::link("/c3"), Value::text("AI"), Value::link("/p1")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn resolve_exact_and_suffix() {
        let r = profs();
        assert_eq!(r.resolve("ProfPage.PName").unwrap(), 1);
        assert_eq!(r.resolve("PName").unwrap(), 1);
        assert!(matches!(
            r.resolve("Nope"),
            Err(AdmError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn resolve_ambiguous() {
        let r = Relation::new(vec!["A.Name", "B.Name"]);
        assert!(matches!(
            r.resolve("Name"),
            Err(AdmError::AmbiguousAttribute { .. })
        ));
        // exact qualified still works
        assert_eq!(r.resolve("A.Name").unwrap(), 0);
    }

    #[test]
    fn arity_checked() {
        let mut r = Relation::new(vec!["A"]);
        assert!(r
            .push_row(vec![Value::text("x"), Value::text("y")])
            .is_err());
        assert!(r.push_row(vec![Value::text("x")]).is_ok());
    }

    #[test]
    fn select_eq_filters() {
        let r = profs().select_eq("Rank", &Value::text("Full")).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn project_dedups() {
        let r = profs().project(&["Rank"]).unwrap();
        assert_eq!(r.len(), 2); // Full, Assistant
        assert_eq!(r.columns(), &["ProfPage.Rank".to_string()]);
    }

    #[test]
    fn join_on_link() {
        let j = courses()
            .join(&profs(), &[("CoursePage.ToProf", "ProfPage.URL")])
            .unwrap();
        assert_eq!(j.len(), 3);
        assert_eq!(j.columns().len(), 6);
        // every joined row's link matches its URL
        for i in 0..j.len() {
            assert_eq!(
                j.value(i, "CoursePage.ToProf").unwrap(),
                j.value(i, "ProfPage.URL").unwrap()
            );
        }
    }

    #[test]
    fn join_skips_nulls() {
        let mut c = courses();
        c.push_row(vec![Value::link("/c4"), Value::text("ML"), Value::Null])
            .unwrap();
        let j = c.join(&profs(), &[("ToProf", "URL")]).unwrap();
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn unnest_expands_lists() {
        let r = Relation::from_rows(
            vec!["DeptPage.URL", "DeptPage.ProfList"],
            vec![
                vec![
                    Value::link("/d1"),
                    Value::List(vec![
                        Tuple::new()
                            .with("PName", "Codd")
                            .with("ToProf", Value::link("/p1")),
                        Tuple::new()
                            .with("PName", "Gray")
                            .with("ToProf", Value::link("/p2")),
                    ]),
                ],
                vec![Value::link("/d2"), Value::List(vec![])],
            ],
        )
        .unwrap();
        let u = r
            .unnest("ProfList", &["PName".into(), "ToProf".into()])
            .unwrap();
        assert_eq!(u.len(), 2); // empty list row vanishes
        assert_eq!(
            u.columns(),
            &[
                "DeptPage.URL".to_string(),
                "DeptPage.ProfList.PName".to_string(),
                "DeptPage.ProfList.ToProf".to_string(),
            ]
        );
        assert_eq!(u.value(0, "PName").unwrap().as_text(), Some("Codd"));
    }

    #[test]
    fn unnest_null_list_is_empty() {
        let r = Relation::from_rows(
            vec!["P.URL", "P.L"],
            vec![vec![Value::link("/x"), Value::Null]],
        )
        .unwrap();
        let u = r.unnest("L", &["A".into()]).unwrap();
        assert!(u.is_empty());
    }

    #[test]
    fn unnest_missing_inner_field_yields_null() {
        let r = Relation::from_rows(
            vec!["P.L"],
            vec![vec![Value::List(vec![Tuple::new().with("A", "x")])]],
        )
        .unwrap();
        let u = r.unnest("L", &["A".into(), "B".into()]).unwrap();
        assert!(u.value(0, "P.L.B").unwrap().is_null());
    }

    #[test]
    fn unnest_infer_takes_fields_from_data() {
        let r = Relation::from_rows(
            vec!["P.L"],
            vec![vec![Value::List(vec![Tuple::new()
                .with("A", "x")
                .with("B", "y")])]],
        )
        .unwrap();
        let u = r.unnest_infer("L").unwrap();
        assert_eq!(u.columns(), &["P.L.A".to_string(), "P.L.B".to_string()]);
    }

    #[test]
    fn unnest_type_error_on_mono() {
        let r = profs();
        assert!(matches!(
            r.unnest("PName", &[]),
            Err(AdmError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn union_and_minus() {
        let a = Relation::from_rows(
            vec!["X"],
            vec![vec![Value::text("1")], vec![Value::text("2")]],
        )
        .unwrap();
        let b = Relation::from_rows(
            vec!["X"],
            vec![vec![Value::text("2")], vec![Value::text("3")]],
        )
        .unwrap();
        assert_eq!(a.union(&b).unwrap().len(), 3);
        let d = a.minus(&b).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.value(0, "X").unwrap().as_text(), Some("1"));
        let c = Relation::new(vec!["Y"]);
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn distinct_count_ignores_nulls() {
        let mut r = profs();
        r.push_row(vec![Value::link("/p4"), Value::Null, Value::text("Full")])
            .unwrap();
        assert_eq!(r.distinct_count("PName").unwrap(), 3);
        assert_eq!(r.distinct_count("Rank").unwrap(), 2);
    }

    #[test]
    fn rename_and_qualify() {
        let r = profs().rename("ProfPage.Rank", "R").unwrap();
        assert!(r.resolve("R").is_ok());
        let q = profs().qualify("X");
        assert!(q.resolve("X.ProfPage.PName").is_ok());
    }

    #[test]
    fn table_render_is_stable() {
        let t1 = profs().to_table();
        let t2 = profs().to_table();
        assert_eq!(t1, t2);
        assert!(t1.contains("Codd"));
        assert!(t1.contains("ProfPage.PName"));
    }

    #[test]
    fn to_tuples_round_trip_names() {
        let ts = profs().to_tuples();
        assert_eq!(ts.len(), 3);
        assert!(ts[0].get("ProfPage.PName").is_some());
    }
}
