//! Error type shared by the data-model layer.

use std::fmt;

/// Errors raised while building schemes, resolving attributes, or
/// manipulating page-relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmError {
    /// A page-scheme name was referenced but is not part of the web scheme.
    UnknownScheme(String),
    /// An attribute path did not resolve inside a page-scheme or relation.
    UnknownAttribute {
        /// The attribute (or dotted path) that failed to resolve.
        attr: String,
        /// Where resolution was attempted (scheme or relation description).
        within: String,
    },
    /// An attribute name matched more than one column of a relation.
    AmbiguousAttribute {
        /// The ambiguous suffix.
        attr: String,
        /// The columns it matched.
        candidates: Vec<String>,
    },
    /// An operation expected an attribute of a different type
    /// (e.g. unnest on a non-list attribute, follow on a non-link).
    TypeMismatch {
        /// The offending attribute.
        attr: String,
        /// What the operation required.
        expected: &'static str,
        /// What was found.
        found: String,
    },
    /// A scheme failed validation (dangling link target, bad constraint, …).
    InvalidScheme(String),
    /// A tuple did not conform to its page-scheme.
    SchemaViolation(String),
    /// Two relations/rows had incompatible shapes for the attempted operation.
    ArityMismatch {
        /// Expected column count.
        expected: usize,
        /// Found column count.
        found: usize,
    },
    /// A duplicate name was introduced where names must be unique.
    DuplicateName(String),
}

impl fmt::Display for AdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmError::UnknownScheme(name) => write!(f, "unknown page-scheme `{name}`"),
            AdmError::UnknownAttribute { attr, within } => {
                write!(f, "attribute `{attr}` not found in {within}")
            }
            AdmError::AmbiguousAttribute { attr, candidates } => write!(
                f,
                "attribute `{attr}` is ambiguous; candidates: {}",
                candidates.join(", ")
            ),
            AdmError::TypeMismatch {
                attr,
                expected,
                found,
            } => write!(
                f,
                "attribute `{attr}` has wrong type: expected {expected}, found {found}"
            ),
            AdmError::InvalidScheme(msg) => write!(f, "invalid web scheme: {msg}"),
            AdmError::SchemaViolation(msg) => write!(f, "schema violation: {msg}"),
            AdmError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} columns, found {found}"
                )
            }
            AdmError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
        }
    }
}

impl std::error::Error for AdmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_scheme() {
        let e = AdmError::UnknownScheme("ProfPage".into());
        assert_eq!(e.to_string(), "unknown page-scheme `ProfPage`");
    }

    #[test]
    fn display_ambiguous() {
        let e = AdmError::AmbiguousAttribute {
            attr: "Name".into(),
            candidates: vec!["ProfPage.Name".into(), "DeptPage.Name".into()],
        };
        assert!(e.to_string().contains("ProfPage.Name, DeptPage.Name"));
    }

    #[test]
    fn display_type_mismatch() {
        let e = AdmError::TypeMismatch {
            attr: "CourseList".into(),
            expected: "link",
            found: "list".into(),
        };
        assert!(e.to_string().contains("expected link"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(AdmError::DuplicateName("x".into()));
        assert!(e.to_string().contains('x'));
    }
}
