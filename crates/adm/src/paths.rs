//! Navigation paths through a web scheme.
//!
//! A navigation path starts at an entry point and alternates unnesting
//! (descending into lists inside a page) with following links (moving to
//! another page-relation). Computable NALG expressions are exactly those
//! whose leaves are entry points (Section 4), so enumerating paths from
//! entry points to a target scheme enumerates the candidate *default
//! navigations* for external relations over that scheme.

use crate::schema::WebScheme;
use std::fmt;

/// One hop of a navigation path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathStep {
    /// Unnest a list attribute of the current page-scheme
    /// (the attribute's name at the current nesting level).
    Unnest(String),
    /// Follow a currently visible link attribute to its target scheme.
    Follow {
        /// The link attribute name at the current nesting level.
        link: String,
        /// The target page-scheme.
        target: String,
    },
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStep::Unnest(a) => write!(f, "∘ {a}"),
            PathStep::Follow { link, target } => write!(f, "–{link}→ {target}"),
        }
    }
}

/// A navigation path: an entry-point scheme plus a sequence of steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NavPath {
    /// The entry-point page-scheme the path starts from.
    pub entry: String,
    /// The steps, in order.
    pub steps: Vec<PathStep>,
}

impl NavPath {
    /// A path that stays at the entry point.
    pub fn at(entry: impl Into<String>) -> Self {
        NavPath {
            entry: entry.into(),
            steps: Vec::new(),
        }
    }

    /// Appends an unnest step; builder style.
    pub fn unnest(mut self, attr: impl Into<String>) -> Self {
        self.steps.push(PathStep::Unnest(attr.into()));
        self
    }

    /// Appends a follow step; builder style.
    pub fn follow(mut self, link: impl Into<String>, target: impl Into<String>) -> Self {
        self.steps.push(PathStep::Follow {
            link: link.into(),
            target: target.into(),
        });
        self
    }

    /// The page-scheme the path ends on.
    pub fn final_scheme(&self) -> &str {
        self.steps
            .iter()
            .rev()
            .find_map(|s| match s {
                PathStep::Follow { target, .. } => Some(target.as_str()),
                _ => None,
            })
            .unwrap_or(&self.entry)
    }

    /// Number of link traversals.
    pub fn hops(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, PathStep::Follow { .. }))
            .count()
    }

    /// The sequence of page-schemes visited (entry first).
    pub fn schemes_visited(&self) -> Vec<&str> {
        let mut out = vec![self.entry.as_str()];
        for s in &self.steps {
            if let PathStep::Follow { target, .. } = s {
                out.push(target);
            }
        }
        out
    }
}

impl fmt::Display for NavPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.entry)?;
        for s in &self.steps {
            write!(f, " {s}")?;
        }
        Ok(())
    }
}

/// Enumerates all acyclic navigation paths from any entry point to
/// `target`, visiting each page-scheme at most once per path and following
/// at most `max_hops` links. Paths are returned shortest-first.
pub fn enumerate_paths(ws: &WebScheme, target: &str, max_hops: usize) -> Vec<NavPath> {
    let mut out = Vec::new();
    let mut queue: std::collections::VecDeque<(NavPath, Vec<String>)> =
        std::collections::VecDeque::new();
    for ep in ws.entry_points() {
        queue.push_back((NavPath::at(ep.scheme.clone()), vec![ep.scheme.clone()]));
    }
    while let Some((path, visited)) = queue.pop_front() {
        let current = path.final_scheme().to_string();
        if current == target {
            out.push(path.clone());
            // A path may continue through the target to reach it again only
            // in cyclic schemes; we stop at first arrival.
            continue;
        }
        if path.hops() >= max_hops {
            continue;
        }
        let Ok(scheme) = ws.scheme(&current) else {
            continue;
        };
        for (link_path, link_target) in scheme.link_paths() {
            if visited.iter().any(|v| v == &link_target) {
                continue;
            }
            let mut p = path.clone();
            // Unnest every enclosing list, then follow the leaf link.
            for seg in &link_path[..link_path.len() - 1] {
                p.steps.push(PathStep::Unnest(seg.clone()));
            }
            p.steps.push(PathStep::Follow {
                link: link_path.last().unwrap().clone(),
                target: link_target.clone(),
            });
            let mut v = visited.clone();
            v.push(link_target.clone());
            queue.push_back((p, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::PageScheme;
    use crate::types::Field;

    /// ListPage →ToItem ItemPage →ToDetail DetailPage, plus a direct
    /// entry-point link HomePage →ToDetail DetailPage.
    fn scheme() -> WebScheme {
        let home = PageScheme::new(
            "HomePage",
            vec![
                Field::link("ToList", "ListPage"),
                Field::link("ToDetail", "DetailPage"),
            ],
        )
        .unwrap();
        let list = PageScheme::new(
            "ListPage",
            vec![Field::list(
                "Items",
                vec![Field::text("Name"), Field::link("ToItem", "ItemPage")],
            )],
        )
        .unwrap();
        let item = PageScheme::new(
            "ItemPage",
            vec![Field::text("Name"), Field::link("ToDetail", "DetailPage")],
        )
        .unwrap();
        let detail = PageScheme::new("DetailPage", vec![Field::text("Info")]).unwrap();
        WebScheme::builder()
            .scheme(home)
            .scheme(list)
            .scheme(item)
            .scheme(detail)
            .entry_point("HomePage", "/index.html")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_display() {
        let p = NavPath::at("ListPage")
            .unnest("Items")
            .follow("ToItem", "ItemPage");
        assert_eq!(p.to_string(), "ListPage ∘ Items –ToItem→ ItemPage");
        assert_eq!(p.final_scheme(), "ItemPage");
        assert_eq!(p.hops(), 1);
        assert_eq!(p.schemes_visited(), vec!["ListPage", "ItemPage"]);
    }

    #[test]
    fn enumerate_finds_both_routes() {
        let ws = scheme();
        let paths = enumerate_paths(&ws, "DetailPage", 4);
        // direct: Home –ToDetail→ Detail
        // indirect: Home –ToList→ List ∘ Items –ToItem→ Item –ToDetail→ Detail
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].hops(), 1); // shortest first
        assert_eq!(paths[1].hops(), 3);
        assert!(paths[1]
            .steps
            .iter()
            .any(|s| matches!(s, PathStep::Unnest(a) if a == "Items")));
    }

    #[test]
    fn enumerate_respects_hop_limit() {
        let ws = scheme();
        let paths = enumerate_paths(&ws, "DetailPage", 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops(), 1);
    }

    #[test]
    fn enumerate_target_is_entry() {
        let ws = scheme();
        let paths = enumerate_paths(&ws, "HomePage", 3);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].steps.is_empty());
    }

    #[test]
    fn enumerate_unreachable() {
        let ws = scheme();
        assert!(enumerate_paths(&ws, "NoSuchPage", 3).is_empty());
    }
}
