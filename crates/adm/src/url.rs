//! Universal Resource Locators.
//!
//! The paper treats a link as a pair *(reference, anchor)* and models the
//! anchor as an independent attribute, so a link value reduces to a URL.
//! URLs here are site-relative paths (e.g. `/prof/12.html`): the simulated
//! web (`websim`) is a single site, which mirrors the paper's setting of one
//! scheme per site.

use std::borrow::Borrow;
use std::fmt;

/// A normalized URL. Cheap to clone, ordered, hashable — URLs form the key
/// of every page-relation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Url(String);

impl Url {
    /// Creates a URL from a path, normalizing to a leading `/`.
    pub fn new(path: impl Into<String>) -> Self {
        let p: String = path.into();
        if p.starts_with('/') {
            Url(p)
        } else {
            Url(format!("/{p}"))
        }
    }

    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the final path segment (the "file name"), if any.
    pub fn file_name(&self) -> Option<&str> {
        self.0.rsplit('/').next().filter(|s| !s.is_empty())
    }

    /// Returns the parent directory path, always ending in `/`.
    pub fn parent(&self) -> &str {
        match self.0.rfind('/') {
            Some(i) => &self.0[..=i],
            None => "/",
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Url({})", self.0)
    }
}

impl From<&str> for Url {
    fn from(s: &str) -> Self {
        Url::new(s)
    }
}

impl From<String> for Url {
    fn from(s: String) -> Self {
        Url::new(s)
    }
}

impl Borrow<str> for Url {
    fn borrow(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn normalizes_leading_slash() {
        assert_eq!(Url::new("a/b.html").as_str(), "/a/b.html");
        assert_eq!(Url::new("/a/b.html").as_str(), "/a/b.html");
    }

    #[test]
    fn file_name_and_parent() {
        let u = Url::new("/dept/cs/index.html");
        assert_eq!(u.file_name(), Some("index.html"));
        assert_eq!(u.parent(), "/dept/cs/");
        let root = Url::new("/");
        assert_eq!(root.file_name(), None);
        assert_eq!(root.parent(), "/");
    }

    #[test]
    fn hashable_and_borrowable() {
        let mut set = HashSet::new();
        set.insert(Url::new("/x.html"));
        assert!(set.contains("/x.html"));
        assert!(!set.contains("/y.html"));
    }

    #[test]
    fn display_round_trip() {
        let u = Url::new("p.html");
        assert_eq!(Url::new(u.to_string()), u);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Url::new("/a") < Url::new("/b"));
    }
}
