//! Columnar page-relations with chunk-at-a-time kernels.
//!
//! [`ColumnRel`] is the evaluator's internal representation of a
//! [`Relation`]: one typed vector per attribute (interned text ids, interned
//! link ids, nested relations as child columns plus an offset list) with
//! validity bitmaps for nulls. [`Value`]/[`Tuple`] remain the public
//! boundary type — `to_relation`/`from_relation` convert at the edges.
//!
//! The kernels mirror the row-at-a-time operators of [`Relation`] exactly:
//! selection produces index vectors, projection deduplicates by hashing
//! token-encoded column slices, the equi-join probes a hash table of
//! interned ids in batches, and unnest expands offset ranges. Output *order*
//! is identical to the row path (selection preserves input order, projection
//! keeps first appearance, join emits left order × right match order), so
//! results are byte-identical, not merely set-equal.
//!
//! # Null vs empty list
//!
//! A nested column's validity bitmap distinguishes `Null` from `List([])` —
//! both produce zero child rows, but they are different values and must
//! round-trip exactly.
//!
//! # Heterogeneous columns
//!
//! Page data is schema-driven and always columnarizes into typed vectors.
//! Hand-built relations (tests, external sources) can mix types within a
//! column or nest tuples with differing field names; such columns degrade to
//! a [`ColumnData::Values`] fallback that stores boundary values directly
//! and keeps row-compatible semantics.

use crate::error::AdmError;
use crate::intern::Symbol;
use crate::relation::Relation;
use crate::value::{Tuple, Value};
use crate::Result;
use std::collections::{HashMap, HashSet};

/// A validity bitmap: bit *i* set ⇔ row *i* is non-null.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Appends one bit.
    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if valid {
            self.bits[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends `n` valid bits.
    pub fn push_valid_n(&mut self, n: usize) {
        for _ in 0..n {
            self.push(true);
        }
    }

    /// The bit at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set (valid) bits.
    pub fn count_valid(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The typed payload of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Interned text ids; entries at invalid rows are placeholders.
    Text(Vec<Symbol>),
    /// Interned link (URL) ids; entries at invalid rows are placeholders.
    Link(Vec<Symbol>),
    /// Nested relation: row *i* spans child rows `offsets[i]..offsets[i+1]`.
    Nested {
        /// `len + 1` monotone offsets into the child relation.
        offsets: Vec<u32>,
        /// The child columns (inner tuple fields, unqualified names).
        child: Box<ColumnRel>,
    },
    /// Fallback for heterogeneous columns: boundary values stored directly.
    Values(Vec<Value>),
}

/// One column: typed data plus a validity bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    /// The typed payload.
    pub data: ColumnData,
    /// Validity: set ⇔ non-null. (For [`ColumnData::Values`] the stored
    /// value is authoritative; the bitmap is kept consistent anyway.)
    pub validity: Bitmap,
}

/// A columnar relation: named typed columns of equal length.
#[derive(Debug, Clone)]
pub struct ColumnRel {
    names: Vec<Symbol>,
    cols: Vec<Column>,
    len: usize,
}

fn placeholder() -> Symbol {
    Symbol::intern("")
}

impl ColumnRel {
    /// An empty relation with the given header.
    pub fn empty<S: AsRef<str>>(names: &[S]) -> Self {
        ColumnRel {
            names: names.iter().map(|n| Symbol::intern(n.as_ref())).collect(),
            cols: names
                .iter()
                .map(|_| Column {
                    data: ColumnData::Values(Vec::new()),
                    validity: Bitmap::new(),
                })
                .collect(),
            len: 0,
        }
    }

    /// Column header symbols.
    pub fn names(&self) -> &[Symbol] {
        &self.names
    }

    /// Column header as strings (allocates).
    pub fn column_strings(&self) -> Vec<String> {
        self.names.iter().map(|s| s.as_str().to_string()).collect()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resolves a column reference: exact match first, then unique dotted
    /// suffix, mirroring [`Relation::resolve`] including its errors.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.names.iter().position(|c| c.as_str() == name) {
            return Ok(i);
        }
        let suffix = format!(".{name}");
        let hits: Vec<usize> = self
            .names
            .iter()
            .enumerate()
            .filter(|(_, c)| c.as_str().ends_with(&suffix))
            .map(|(i, _)| i)
            .collect();
        match hits.len() {
            1 => Ok(hits[0]),
            0 => Err(AdmError::UnknownAttribute {
                attr: name.to_string(),
                within: format!(
                    "relation [{}]",
                    self.names
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            }),
            _ => Err(AdmError::AmbiguousAttribute {
                attr: name.to_string(),
                candidates: hits
                    .iter()
                    .map(|&i| self.names[i].as_str().to_string())
                    .collect(),
            }),
        }
    }

    /// True if the cell at `(row, col)` is null.
    #[inline]
    pub fn is_null_at(&self, row: usize, col: usize) -> bool {
        match &self.cols[col].data {
            ColumnData::Values(vs) => vs[row].is_null(),
            _ => !self.cols[col].validity.get(row),
        }
    }

    /// Materializes the cell at `(row, col)` as a boundary [`Value`].
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        let c = &self.cols[col];
        match &c.data {
            ColumnData::Text(ids) => {
                if c.validity.get(row) {
                    Value::Text(ids[row].as_str().to_string())
                } else {
                    Value::Null
                }
            }
            ColumnData::Link(ids) => {
                if c.validity.get(row) {
                    Value::Link(ids[row].to_url())
                } else {
                    Value::Null
                }
            }
            ColumnData::Nested { offsets, child } => {
                if c.validity.get(row) {
                    let lo = offsets[row] as usize;
                    let hi = offsets[row + 1] as usize;
                    Value::List((lo..hi).map(|r| child.tuple_at(r)).collect())
                } else {
                    Value::Null
                }
            }
            ColumnData::Values(vs) => vs[row].clone(),
        }
    }

    /// Materializes row `r` as a [`Tuple`] over the column names.
    pub fn tuple_at(&self, row: usize) -> Tuple {
        Tuple::from_pairs(
            (0..self.cols.len())
                .map(|c| (self.names[c].as_str().to_string(), self.value_at(row, c)))
                .collect(),
        )
    }

    /// The interned link id at `(row, col)`, or `None` for null. Errors with
    /// the same `TypeMismatch` as the row path when the cell holds a
    /// non-link, non-null value.
    pub fn link_at(&self, row: usize, col: usize) -> Result<Option<Symbol>> {
        let c = &self.cols[col];
        let type_err = |found: String| AdmError::TypeMismatch {
            attr: self.names[col].as_str().to_string(),
            expected: "link",
            found,
        };
        match &c.data {
            ColumnData::Link(ids) => Ok(c.validity.get(row).then(|| ids[row])),
            ColumnData::Text(ids) => {
                if c.validity.get(row) {
                    Err(type_err(format!(
                        "{:?}",
                        Value::Text(ids[row].as_str().to_string())
                    )))
                } else {
                    Ok(None)
                }
            }
            ColumnData::Nested { .. } => {
                if c.validity.get(row) {
                    Err(type_err(format!("{:?}", self.value_at(row, col))))
                } else {
                    Ok(None)
                }
            }
            ColumnData::Values(vs) => match &vs[row] {
                Value::Link(u) => Ok(Some(Symbol::from_url(u))),
                Value::Null => Ok(None),
                other => Err(type_err(format!("{other:?}"))),
            },
        }
    }

    // ---- token encoding (equality keys for dedup / join) ----------------

    /// Appends a prefix-free token encoding of the cell to `out`. Two cells
    /// encode identically iff their boundary [`Value`]s are equal, so token
    /// vectors are exact hash/equality keys for dedup and join.
    fn encode_cell(&self, row: usize, col: usize, out: &mut Vec<u64>) {
        let c = &self.cols[col];
        match &c.data {
            ColumnData::Text(ids) => {
                if c.validity.get(row) {
                    out.push(1);
                    out.push(ids[row].id() as u64);
                } else {
                    out.push(0);
                }
            }
            ColumnData::Link(ids) => {
                if c.validity.get(row) {
                    out.push(2);
                    out.push(ids[row].id() as u64);
                } else {
                    out.push(0);
                }
            }
            ColumnData::Nested { offsets, child } => {
                if c.validity.get(row) {
                    let lo = offsets[row] as usize;
                    let hi = offsets[row + 1] as usize;
                    out.push(3);
                    out.push((hi - lo) as u64);
                    for r in lo..hi {
                        out.push(4);
                        out.push(child.cols.len() as u64);
                        for (ci, name) in child.names.iter().enumerate() {
                            out.push(name.id() as u64);
                            child.encode_cell(r, ci, out);
                        }
                    }
                } else {
                    out.push(0);
                }
            }
            ColumnData::Values(vs) => encode_value(&vs[row], out),
        }
    }
}

/// Token-encodes a boundary [`Value`] with the same scheme as
/// [`ColumnRel::encode_cell`], interning text as needed.
fn encode_value(v: &Value, out: &mut Vec<u64>) {
    match v {
        Value::Null => out.push(0),
        Value::Text(s) => {
            out.push(1);
            out.push(Symbol::intern(s).id() as u64);
        }
        Value::Link(u) => {
            out.push(2);
            out.push(Symbol::from_url(u).id() as u64);
        }
        Value::List(ts) => {
            out.push(3);
            out.push(ts.len() as u64);
            for t in ts {
                out.push(4);
                out.push(t.len() as u64);
                for (n, v) in t.iter() {
                    out.push(Symbol::intern(n).id() as u64);
                    encode_value(v, out);
                }
            }
        }
    }
}

fn take_bitmap(b: &Bitmap, idx: &[u32]) -> Bitmap {
    let mut out = Bitmap::new();
    for &i in idx {
        out.push(b.get(i as usize));
    }
    out
}

fn take_column(col: &Column, idx: &[u32]) -> Column {
    match &col.data {
        ColumnData::Text(ids) => Column {
            data: ColumnData::Text(idx.iter().map(|&i| ids[i as usize]).collect()),
            validity: take_bitmap(&col.validity, idx),
        },
        ColumnData::Link(ids) => Column {
            data: ColumnData::Link(idx.iter().map(|&i| ids[i as usize]).collect()),
            validity: take_bitmap(&col.validity, idx),
        },
        ColumnData::Nested { offsets, child } => {
            let mut new_offsets = Vec::with_capacity(idx.len() + 1);
            let mut child_idx: Vec<u32> = Vec::new();
            new_offsets.push(0u32);
            for &i in idx {
                let lo = offsets[i as usize];
                let hi = offsets[i as usize + 1];
                child_idx.extend(lo..hi);
                new_offsets.push(child_idx.len() as u32);
            }
            Column {
                data: ColumnData::Nested {
                    offsets: new_offsets,
                    child: Box::new(child.take(&child_idx)),
                },
                validity: take_bitmap(&col.validity, idx),
            }
        }
        ColumnData::Values(vs) => Column {
            data: ColumnData::Values(idx.iter().map(|&i| vs[i as usize].clone()).collect()),
            validity: take_bitmap(&col.validity, idx),
        },
    }
}

impl ColumnRel {
    // ---- kernels ---------------------------------------------------------

    /// Gathers the rows named by `idx` (in that order).
    pub fn take(&self, idx: &[u32]) -> ColumnRel {
        ColumnRel {
            names: self.names.clone(),
            cols: self.cols.iter().map(|c| take_column(c, idx)).collect(),
            len: idx.len(),
        }
    }

    /// Selection `column = constant`: returns matching row indices in input
    /// order. `Null` constants match null cells (as in the row path, where
    /// `Value::Null == Value::Null`).
    pub fn select_eq_const(&self, col: usize, value: &Value) -> Vec<u32> {
        let c = &self.cols[col];
        match (&c.data, value) {
            (ColumnData::Text(ids), Value::Text(s)) => match Symbol::lookup(s) {
                None => Vec::new(),
                Some(want) => (0..self.len)
                    .filter(|&i| c.validity.get(i) && ids[i] == want)
                    .map(|i| i as u32)
                    .collect(),
            },
            (ColumnData::Link(ids), Value::Link(u)) => match Symbol::lookup(u.as_str()) {
                None => Vec::new(),
                Some(want) => (0..self.len)
                    .filter(|&i| c.validity.get(i) && ids[i] == want)
                    .map(|i| i as u32)
                    .collect(),
            },
            (_, Value::Null) => (0..self.len)
                .filter(|&i| self.is_null_at(i, col))
                .map(|i| i as u32)
                .collect(),
            (ColumnData::Values(vs), v) => (0..self.len)
                .filter(|&i| &vs[i] == v)
                .map(|i| i as u32)
                .collect(),
            (ColumnData::Nested { .. }, Value::List(_)) => (0..self.len)
                .filter(|&i| &self.value_at(i, col) == value)
                .map(|i| i as u32)
                .collect(),
            // typed column vs mismatched constant type: never equal
            _ => Vec::new(),
        }
    }

    /// Selection `column_a = column_b` (null never equal): matching row
    /// indices in input order.
    pub fn select_eq_cols(&self, a: usize, b: usize) -> Vec<u32> {
        let (ca, cb) = (&self.cols[a], &self.cols[b]);
        match (&ca.data, &cb.data) {
            (ColumnData::Text(x), ColumnData::Text(y))
            | (ColumnData::Link(x), ColumnData::Link(y)) => (0..self.len)
                .filter(|&i| ca.validity.get(i) && cb.validity.get(i) && x[i] == y[i])
                .map(|i| i as u32)
                .collect(),
            (ColumnData::Text(_), ColumnData::Link(_))
            | (ColumnData::Link(_), ColumnData::Text(_)) => Vec::new(),
            _ => (0..self.len)
                .filter(|&i| !self.is_null_at(i, a) && self.value_at(i, a) == self.value_at(i, b))
                .map(|i| i as u32)
                .collect(),
        }
    }

    /// Projection onto columns `idx` with set-semantics dedup (first
    /// appearance wins), hashing token-encoded column slices.
    pub fn project_cols(&self, idx: &[usize]) -> ColumnRel {
        // Single interned column: the whole cell packs into one u64
        // (tag ≪ 32 | symbol id, 0 = null), so dedup needs no key vectors
        // at all — this is the hot shape (π onto a key or URL column).
        let keep: Vec<u32> = if let [c] = idx {
            let col = &self.cols[*c];
            match &col.data {
                ColumnData::Text(ids) | ColumnData::Link(ids) => {
                    let tag: u64 = match &col.data {
                        ColumnData::Text(_) => 1,
                        _ => 2,
                    };
                    let mut seen: HashSet<u64> = HashSet::with_capacity(self.len.min(1024));
                    (0..self.len)
                        .filter(|&row| {
                            let token = if col.validity.get(row) {
                                (tag << 32) | ids[row].id() as u64
                            } else {
                                0
                            };
                            seen.insert(token)
                        })
                        .map(|row| row as u32)
                        .collect()
                }
                _ => self.dedup_rows(idx),
            }
        } else {
            self.dedup_rows(idx)
        };
        ColumnRel {
            names: idx.iter().map(|&i| self.names[i]).collect(),
            cols: idx
                .iter()
                .map(|&i| take_column(&self.cols[i], &keep))
                .collect(),
            len: keep.len(),
        }
    }

    /// General dedup over token-encoded multi-column keys: rows whose key
    /// is new, in input order. The key buffer is reused; the set only
    /// clones a key the first time it appears.
    fn dedup_rows(&self, idx: &[usize]) -> Vec<u32> {
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        let mut keep: Vec<u32> = Vec::new();
        let mut key: Vec<u64> = Vec::new();
        for row in 0..self.len {
            key.clear();
            for &c in idx {
                self.encode_cell(row, c, &mut key);
            }
            if !seen.contains(&key) {
                seen.insert(key.clone());
                keep.push(row as u32);
            }
        }
        keep
    }

    /// Projection by column names (resolution as in the row path).
    pub fn project(&self, cols: &[&str]) -> Result<ColumnRel> {
        let idx: Vec<usize> = cols
            .iter()
            .map(|c| self.resolve(c))
            .collect::<Result<_>>()?;
        Ok(self.project_cols(&idx))
    }

    /// Removes duplicate rows (first appearance wins).
    pub fn distinct(&self) -> ColumnRel {
        self.project_cols(&(0..self.cols.len()).collect::<Vec<_>>())
    }

    /// Glues two relations of equal length side by side.
    pub fn hstack(mut self, other: ColumnRel) -> ColumnRel {
        assert_eq!(self.len, other.len, "hstack length mismatch");
        self.names.extend(other.names);
        self.cols.extend(other.cols);
        self
    }

    /// Equi-join on column index pairs: hashes the right side on token-
    /// encoded keys (null keys never join), probes left rows in order.
    /// Output rows are left order × right match order, columns are
    /// `self ++ other` — exactly the row path.
    pub fn join_on(&self, other: &ColumnRel, on: &[(usize, usize)]) -> ColumnRel {
        let mut table: HashMap<Vec<u64>, Vec<u32>> = HashMap::new();
        let mut key: Vec<u64> = Vec::new();
        'right: for row in 0..other.len {
            key.clear();
            for &(_, rc) in on {
                if other.is_null_at(row, rc) {
                    continue 'right;
                }
                other.encode_cell(row, rc, &mut key);
            }
            // clone the key only on first appearance — the buffer is reused
            match table.get_mut(&key) {
                Some(rows) => rows.push(row as u32),
                None => {
                    table.insert(key.clone(), vec![row as u32]);
                }
            }
        }
        let mut li: Vec<u32> = Vec::new();
        let mut ri: Vec<u32> = Vec::new();
        'left: for row in 0..self.len {
            key.clear();
            for &(lc, _) in on {
                if self.is_null_at(row, lc) {
                    continue 'left;
                }
                self.encode_cell(row, lc, &mut key);
            }
            if let Some(matches) = table.get(&key) {
                for &m in matches {
                    li.push(row as u32);
                    ri.push(m);
                }
            }
        }
        self.take(&li).hstack(other.take(&ri))
    }

    /// Equi-join on named column pairs (see [`ColumnRel::join_on`]).
    pub fn join(&self, other: &ColumnRel, on: &[(&str, &str)]) -> Result<ColumnRel> {
        let idx: Vec<(usize, usize)> = on
            .iter()
            .map(|(l, r)| Ok((self.resolve(l)?, other.resolve(r)?)))
            .collect::<Result<_>>()?;
        Ok(self.join_on(other, &idx))
    }

    /// Unnests a list column: child rows expand via the offset list, the
    /// remaining parent columns gather through a repeat-index vector, and
    /// each requested inner field becomes `{col}.{field}` (null where the
    /// child lacks the field). Null lists produce no rows; a non-list cell
    /// is a `TypeMismatch`, as in the row path.
    pub fn unnest(&self, column: &str, inner_fields: &[String]) -> Result<ColumnRel> {
        let ci = self.resolve(column)?;
        let col_name = self.names[ci].as_str();
        let mut names: Vec<Symbol> = Vec::with_capacity(self.names.len() - 1 + inner_fields.len());
        for (i, n) in self.names.iter().enumerate() {
            if i != ci {
                names.push(*n);
            }
        }
        for f in inner_fields {
            names.push(Symbol::intern(&format!("{col_name}.{f}")));
        }

        match &self.cols[ci].data {
            ColumnData::Nested { offsets, child } => {
                let mut repeat: Vec<u32> = Vec::new();
                let mut child_idx: Vec<u32> = Vec::new();
                for row in 0..self.len {
                    let lo = offsets[row];
                    let hi = offsets[row + 1];
                    for c in lo..hi {
                        repeat.push(row as u32);
                        child_idx.push(c);
                    }
                }
                let mut cols: Vec<Column> = Vec::with_capacity(names.len());
                for (i, c) in self.cols.iter().enumerate() {
                    if i != ci {
                        cols.push(take_column(c, &repeat));
                    }
                }
                for f in inner_fields {
                    match child.names.iter().position(|n| n.as_str() == f) {
                        Some(cc) => cols.push(take_column(&child.cols[cc], &child_idx)),
                        None => cols.push(Column {
                            data: ColumnData::Values(vec![Value::Null; child_idx.len()]),
                            validity: {
                                let mut b = Bitmap::new();
                                for _ in 0..child_idx.len() {
                                    b.push(false);
                                }
                                b
                            },
                        }),
                    }
                }
                Ok(ColumnRel {
                    names,
                    cols,
                    len: child_idx.len(),
                })
            }
            _ => {
                // Row-wise fallback, preserving the row path's semantics:
                // null ≡ empty list, anything else is a type error.
                let mut b = ColumnRelBuilder::from_symbols(names);
                for row in 0..self.len {
                    let v = self.value_at(row, ci);
                    let Value::List(inner) = v else {
                        if v.is_null() {
                            continue;
                        }
                        return Err(AdmError::TypeMismatch {
                            attr: col_name.to_string(),
                            expected: "list",
                            found: format!("{v:?}"),
                        });
                    };
                    for t in &inner {
                        let mut out: Vec<Value> =
                            Vec::with_capacity(self.cols.len() - 1 + inner_fields.len());
                        for i in 0..self.cols.len() {
                            if i != ci {
                                out.push(self.value_at(row, i));
                            }
                        }
                        for f in inner_fields {
                            out.push(t.get(f).cloned().unwrap_or(Value::Null));
                        }
                        b.push_row(&out)?;
                    }
                }
                Ok(b.finish())
            }
        }
    }

    // ---- boundary conversion --------------------------------------------

    /// Columnarizes a boundary [`Relation`]. Text/link payloads are interned
    /// (no string clones beyond first interning); heterogeneous columns
    /// degrade to [`ColumnData::Values`].
    pub fn from_relation(r: &Relation) -> ColumnRel {
        let mut b = ColumnRelBuilder::new(r.columns());
        for row in r.rows() {
            b.push_row(row).expect("arity checked by Relation");
        }
        b.finish()
    }

    /// Materializes back into a boundary [`Relation`] (row order preserved).
    pub fn to_relation(&self) -> Relation {
        let mut out = Relation::new(self.column_strings());
        for row in 0..self.len {
            out.push_row(
                (0..self.cols.len())
                    .map(|c| self.value_at(row, c))
                    .collect(),
            )
            .expect("arity by construction");
        }
        out
    }

    // ---- rendering -------------------------------------------------------

    /// Compares two cells of the same column with [`Value::total_cmp`]'s
    /// total order, without materializing values for typed columns.
    fn cmp_cells(&self, a: usize, b: usize, col: usize) -> std::cmp::Ordering {
        let c = &self.cols[col];
        match &c.data {
            // Null ranks below any value; interned ids resolve to the very
            // strings Text/Url ordering compares.
            ColumnData::Text(ids) | ColumnData::Link(ids) => {
                match (c.validity.get(a), c.validity.get(b)) {
                    (true, true) => ids[a].as_str().cmp(ids[b].as_str()),
                    (va, vb) => va.cmp(&vb),
                }
            }
            ColumnData::Values(vs) => vs[a].total_cmp(&vs[b]),
            ColumnData::Nested { .. } => self.value_at(a, col).total_cmp(&self.value_at(b, col)),
        }
    }

    /// Row indices in the deterministic order of [`Relation::sorted`].
    fn sorted_indices(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.len as u32).collect();
        order.sort_by(|&a, &b| {
            for col in 0..self.cols.len() {
                match self.cmp_cells(a as usize, b as usize, col) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        order
    }

    /// The display text of one cell, straight from the typed column —
    /// identical to `Value::to_string` of the materialized cell.
    fn cell_string(&self, row: usize, col: usize) -> String {
        let c = &self.cols[col];
        match &c.data {
            ColumnData::Text(ids) | ColumnData::Link(ids) => {
                if c.validity.get(row) {
                    ids[row].as_str().to_string()
                } else {
                    Value::Null.to_string()
                }
            }
            ColumnData::Values(vs) => vs[row].to_string(),
            ColumnData::Nested { .. } => self.value_at(row, col).to_string(),
        }
    }

    /// Renders the same ASCII table as [`Relation::to_table`] — sorted rows,
    /// byte-identical output — streaming cells out of the typed columns
    /// without materializing row tuples.
    pub fn to_table(&self) -> String {
        let order = self.sorted_indices();
        let columns = self.column_strings();
        let mut cells = Vec::with_capacity(self.len * self.cols.len());
        for &r in &order {
            for c in 0..self.cols.len() {
                cells.push(self.cell_string(r as usize, c));
            }
        }
        crate::display::render_ascii_table(&columns, self.len, &cells)
    }
}

impl std::fmt::Display for ColumnRel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_table())
    }
}

// ---- builder -------------------------------------------------------------

/// Builds a [`ColumnRel`] row by row, specializing column types on first
/// non-null observation and degrading to [`ColumnData::Values`] on conflict.
#[derive(Debug)]
pub struct ColumnRelBuilder {
    names: Vec<Symbol>,
    cols: Vec<BuildCol>,
    len: usize,
}

#[derive(Debug)]
enum BuildCol {
    /// Only nulls so far.
    Empty {
        nulls: usize,
    },
    Text {
        ids: Vec<Symbol>,
        validity: Bitmap,
    },
    Link {
        ids: Vec<Symbol>,
        validity: Bitmap,
    },
    Nested {
        offsets: Vec<u32>,
        validity: Bitmap,
        /// Set when the first inner tuple fixes the child schema.
        child: Option<Box<ColumnRelBuilder>>,
    },
    Values(Vec<Value>),
}

impl BuildCol {
    fn new() -> Self {
        BuildCol::Empty { nulls: 0 }
    }

    /// Materializes the column built so far into boundary values (degrade
    /// path — cold).
    fn into_values(self) -> Vec<Value> {
        match self {
            BuildCol::Empty { nulls } => vec![Value::Null; nulls],
            BuildCol::Text { ids, validity } => ids
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    if validity.get(i) {
                        Value::Text(s.as_str().to_string())
                    } else {
                        Value::Null
                    }
                })
                .collect(),
            BuildCol::Link { ids, validity } => ids
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    if validity.get(i) {
                        Value::Link(s.to_url())
                    } else {
                        Value::Null
                    }
                })
                .collect(),
            BuildCol::Nested {
                offsets,
                validity,
                child,
            } => {
                let child = match child {
                    Some(b) => b.finish(),
                    None => ColumnRel::empty::<&str>(&[]),
                };
                (0..offsets.len() - 1)
                    .map(|i| {
                        if validity.get(i) {
                            let lo = offsets[i] as usize;
                            let hi = offsets[i + 1] as usize;
                            Value::List((lo..hi).map(|r| child.tuple_at(r)).collect())
                        } else {
                            Value::Null
                        }
                    })
                    .collect()
            }
            BuildCol::Values(vs) => vs,
        }
    }

    fn degrade(&mut self) -> &mut Vec<Value> {
        let old = std::mem::replace(self, BuildCol::Values(Vec::new()));
        *self = BuildCol::Values(old.into_values());
        match self {
            BuildCol::Values(vs) => vs,
            _ => unreachable!(),
        }
    }

    fn push(&mut self, v: &Value) {
        // Specialize an all-null column on its first non-null value.
        if let BuildCol::Empty { nulls } = self {
            let nulls = *nulls;
            match v {
                Value::Null => {
                    *self = BuildCol::Empty { nulls: nulls + 1 };
                    return;
                }
                Value::Text(_) => {
                    let mut validity = Bitmap::new();
                    let mut ids = Vec::with_capacity(nulls + 1);
                    for _ in 0..nulls {
                        validity.push(false);
                        ids.push(placeholder());
                    }
                    *self = BuildCol::Text { ids, validity };
                }
                Value::Link(_) => {
                    let mut validity = Bitmap::new();
                    let mut ids = Vec::with_capacity(nulls + 1);
                    for _ in 0..nulls {
                        validity.push(false);
                        ids.push(placeholder());
                    }
                    *self = BuildCol::Link { ids, validity };
                }
                Value::List(_) => {
                    let mut validity = Bitmap::new();
                    let mut offsets = vec![0u32; nulls + 1];
                    offsets.reserve(1);
                    for _ in 0..nulls {
                        validity.push(false);
                    }
                    *self = BuildCol::Nested {
                        offsets,
                        validity,
                        child: None,
                    };
                }
            }
        }
        match (&mut *self, v) {
            (BuildCol::Text { ids, validity }, Value::Text(s)) => {
                ids.push(Symbol::intern(s));
                validity.push(true);
            }
            (BuildCol::Text { ids, validity }, Value::Null) => {
                ids.push(placeholder());
                validity.push(false);
            }
            (BuildCol::Link { ids, validity }, Value::Link(u)) => {
                ids.push(Symbol::from_url(u));
                validity.push(true);
            }
            (BuildCol::Link { ids, validity }, Value::Null) => {
                ids.push(placeholder());
                validity.push(false);
            }
            (
                BuildCol::Nested {
                    offsets,
                    validity,
                    child,
                },
                Value::List(ts),
            ) => {
                // The child schema is fixed by the first inner tuple; any
                // tuple with different field names degrades the column.
                let compatible = match child {
                    None => true,
                    Some(cb) => ts.iter().all(|t| {
                        t.len() == cb.names.len()
                            && t.names().zip(cb.names.iter()).all(|(n, s)| n == s.as_str())
                    }),
                };
                if !compatible {
                    self.degrade().push(v.clone());
                    return;
                }
                if child.is_none() {
                    if let Some(first) = ts.first() {
                        let names: Vec<Symbol> = first.names().map(Symbol::intern).collect();
                        // Re-check remaining tuples against the new schema.
                        if !ts.iter().all(|t| {
                            t.len() == names.len()
                                && t.names().zip(names.iter()).all(|(n, s)| n == s.as_str())
                        }) {
                            self.degrade().push(v.clone());
                            return;
                        }
                        *child = Some(Box::new(ColumnRelBuilder::from_symbols(names)));
                    }
                }
                if let Some(cb) = child {
                    let mut buf: Vec<Value> = Vec::with_capacity(cb.names.len());
                    for t in ts {
                        buf.clear();
                        buf.extend(t.iter().map(|(_, v)| v.clone()));
                        cb.push_row(&buf).expect("checked arity");
                    }
                }
                offsets.push(match child {
                    Some(cb) => cb.len as u32,
                    None => *offsets.last().unwrap(),
                });
                validity.push(true);
            }
            (
                BuildCol::Nested {
                    offsets, validity, ..
                },
                Value::Null,
            ) => {
                offsets.push(*offsets.last().unwrap());
                validity.push(false);
            }
            (BuildCol::Values(vs), v) => vs.push(v.clone()),
            // type conflict: degrade and retry
            (_, v) => self.degrade().push(v.clone()),
        }
    }

    fn finish_col(self_col: BuildCol, len: usize) -> Column {
        match self_col {
            BuildCol::Empty { nulls } => {
                debug_assert_eq!(nulls, len);
                let mut validity = Bitmap::new();
                for _ in 0..nulls {
                    validity.push(false);
                }
                Column {
                    data: ColumnData::Values(vec![Value::Null; nulls]),
                    validity,
                }
            }
            BuildCol::Text { ids, validity } => Column {
                data: ColumnData::Text(ids),
                validity,
            },
            BuildCol::Link { ids, validity } => Column {
                data: ColumnData::Link(ids),
                validity,
            },
            BuildCol::Nested {
                offsets,
                validity,
                child,
            } => Column {
                data: ColumnData::Nested {
                    offsets,
                    child: Box::new(match child {
                        Some(b) => b.finish(),
                        None => ColumnRel::empty::<&str>(&[]),
                    }),
                },
                validity,
            },
            BuildCol::Values(vs) => {
                let mut validity = Bitmap::new();
                for v in &vs {
                    validity.push(!v.is_null());
                }
                Column {
                    data: ColumnData::Values(vs),
                    validity,
                }
            }
        }
    }
}

impl ColumnRelBuilder {
    /// A builder over string column names.
    pub fn new<S: AsRef<str>>(names: &[S]) -> Self {
        ColumnRelBuilder::from_symbols(names.iter().map(|n| Symbol::intern(n.as_ref())).collect())
    }

    /// A builder over pre-interned column names.
    pub fn from_symbols(names: Vec<Symbol>) -> Self {
        let cols = names.iter().map(|_| BuildCol::new()).collect();
        ColumnRelBuilder {
            names,
            cols,
            len: 0,
        }
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no rows pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one row (arity-checked). Values are read by reference: text
    /// and link payloads are interned, not cloned.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.cols.len() {
            return Err(AdmError::ArityMismatch {
                expected: self.cols.len(),
                found: row.len(),
            });
        }
        for (c, v) in self.cols.iter_mut().zip(row.iter()) {
            c.push(v);
        }
        self.len += 1;
        Ok(())
    }

    /// Finishes into a [`ColumnRel`].
    pub fn finish(self) -> ColumnRel {
        let len = self.len;
        ColumnRel {
            names: self.names,
            cols: self
                .cols
                .into_iter()
                .map(|c| BuildCol::finish_col(c, len))
                .collect(),
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;

    fn profs() -> Relation {
        Relation::from_rows(
            vec!["ProfPage.URL", "ProfPage.PName", "ProfPage.Rank"],
            vec![
                vec![Value::link("/p1"), Value::text("Codd"), Value::text("Full")],
                vec![Value::link("/p2"), Value::text("Gray"), Value::text("Full")],
                vec![
                    Value::link("/p3"),
                    Value::text("Kim"),
                    Value::text("Assistant"),
                ],
                vec![Value::link("/p4"), Value::Null, Value::text("Full")],
            ],
        )
        .unwrap()
    }

    fn depts() -> Relation {
        Relation::from_rows(
            vec!["DeptPage.URL", "DeptPage.ProfList"],
            vec![
                vec![
                    Value::link("/d1"),
                    Value::List(vec![
                        Tuple::new()
                            .with("PName", "Codd")
                            .with("ToProf", Value::link("/p1")),
                        Tuple::new()
                            .with("PName", "Gray")
                            .with("ToProf", Value::link("/p2")),
                    ]),
                ],
                vec![Value::link("/d2"), Value::List(vec![])],
                vec![Value::link("/d3"), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_byte_identical() {
        for r in [profs(), depts()] {
            let c = ColumnRel::from_relation(&r);
            assert_eq!(c.to_relation(), r);
        }
    }

    #[test]
    fn round_trip_preserves_null_vs_empty_list() {
        let r = depts();
        let c = ColumnRel::from_relation(&r);
        let back = c.to_relation();
        assert_eq!(back.rows()[1][1], Value::List(vec![])); // empty list stays
        assert_eq!(back.rows()[2][1], Value::Null); // null stays
    }

    #[test]
    fn typed_columns_for_schema_driven_data() {
        let c = ColumnRel::from_relation(&profs());
        assert!(matches!(c.columns()[0].data, ColumnData::Link(_)));
        assert!(matches!(c.columns()[1].data, ColumnData::Text(_)));
        let d = ColumnRel::from_relation(&depts());
        assert!(matches!(d.columns()[1].data, ColumnData::Nested { .. }));
    }

    #[test]
    fn heterogeneous_column_degrades() {
        let r = Relation::from_rows(
            vec!["X"],
            vec![
                vec![Value::text("a")],
                vec![Value::link("/b")],
                vec![Value::Null],
            ],
        )
        .unwrap();
        let c = ColumnRel::from_relation(&r);
        assert!(matches!(c.columns()[0].data, ColumnData::Values(_)));
        assert_eq!(c.to_relation(), r);
    }

    #[test]
    fn mismatched_inner_tuples_degrade() {
        let r = Relation::from_rows(
            vec!["L"],
            vec![
                vec![Value::List(vec![Tuple::new().with("A", "x")])],
                vec![Value::List(vec![Tuple::new().with("B", "y")])],
            ],
        )
        .unwrap();
        let c = ColumnRel::from_relation(&r);
        assert!(matches!(c.columns()[0].data, ColumnData::Values(_)));
        assert_eq!(c.to_relation(), r);
    }

    #[test]
    fn select_eq_const_matches_row_path() {
        let r = profs();
        let c = ColumnRel::from_relation(&r);
        let idx = c.select_eq_const(2, &Value::text("Full"));
        assert_eq!(idx, vec![0, 1, 3]);
        assert_eq!(
            c.take(&idx).to_relation(),
            r.select_eq("Rank", &Value::text("Full")).unwrap()
        );
        // unknown constant: no matches, nothing interned
        assert!(c
            .select_eq_const(2, &Value::text("no-such-rank-xyzzy"))
            .is_empty());
        // null constant matches null cells
        assert_eq!(c.select_eq_const(1, &Value::Null), vec![3]);
    }

    #[test]
    fn select_eq_cols_matches_row_path() {
        let r = Relation::from_rows(
            vec!["A", "B"],
            vec![
                vec![Value::text("x"), Value::text("x")],
                vec![Value::text("x"), Value::text("y")],
                vec![Value::Null, Value::Null],
                vec![Value::link("/u"), Value::link("/u")],
            ],
        )
        .unwrap();
        let c = ColumnRel::from_relation(&r);
        // heterogeneous columns → Values fallback; nulls never equal
        assert_eq!(c.select_eq_cols(0, 1), vec![0, 3]);
    }

    #[test]
    fn project_dedups_in_first_appearance_order() {
        let r = profs();
        let c = ColumnRel::from_relation(&r);
        let p = c.project(&["Rank"]).unwrap();
        assert_eq!(p.to_relation(), r.project(&["Rank"]).unwrap());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn join_matches_row_path() {
        let courses = Relation::from_rows(
            vec!["CoursePage.URL", "CoursePage.CName", "CoursePage.ToProf"],
            vec![
                vec![Value::link("/c1"), Value::text("DB"), Value::link("/p1")],
                vec![Value::link("/c2"), Value::text("OS"), Value::link("/p3")],
                vec![Value::link("/c3"), Value::text("AI"), Value::link("/p1")],
                vec![Value::link("/c4"), Value::text("ML"), Value::Null],
            ],
        )
        .unwrap();
        let profs_r = profs();
        let cc = ColumnRel::from_relation(&courses);
        let cp = ColumnRel::from_relation(&profs_r);
        let j = cc.join(&cp, &[("ToProf", "ProfPage.URL")]).unwrap();
        let jr = courses
            .join(&profs_r, &[("ToProf", "ProfPage.URL")])
            .unwrap();
        assert_eq!(j.to_relation(), jr);
    }

    #[test]
    fn unnest_matches_row_path() {
        let r = depts();
        let c = ColumnRel::from_relation(&r);
        let fields = vec!["PName".to_string(), "ToProf".to_string()];
        let u = c.unnest("ProfList", &fields).unwrap();
        assert_eq!(u.to_relation(), r.unnest("ProfList", &fields).unwrap());
    }

    #[test]
    fn unnest_missing_inner_field_yields_null() {
        let r = Relation::from_rows(
            vec!["P.L"],
            vec![vec![Value::List(vec![Tuple::new().with("A", "x")])]],
        )
        .unwrap();
        let c = ColumnRel::from_relation(&r);
        let fields = vec!["A".to_string(), "B".to_string()];
        let u = c.unnest("L", &fields).unwrap();
        assert_eq!(u.to_relation(), r.unnest("L", &fields).unwrap());
    }

    #[test]
    fn unnest_type_error_on_mono() {
        let c = ColumnRel::from_relation(&profs());
        assert!(matches!(
            c.unnest("PName", &[]),
            Err(AdmError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn resolve_suffix_and_ambiguity() {
        let c = ColumnRel::from_relation(&profs());
        assert_eq!(c.resolve("PName").unwrap(), 1);
        assert!(c.resolve("Nope").is_err());
        let amb = ColumnRel::empty(&["A.Name", "B.Name"]);
        assert!(matches!(
            amb.resolve("Name"),
            Err(AdmError::AmbiguousAttribute { .. })
        ));
    }

    #[test]
    fn link_at_reads_ids_without_alloc() {
        let c = ColumnRel::from_relation(&profs());
        let s = c.link_at(0, 0).unwrap().unwrap();
        assert_eq!(s.as_str(), "/p1");
        assert!(c.link_at(0, 1).is_err()); // text column
        let d = ColumnRel::from_relation(
            &Relation::from_rows(vec!["A"], vec![vec![Value::Null]]).unwrap(),
        );
        assert_eq!(d.link_at(0, 0).unwrap(), None);
    }

    #[test]
    fn hstack_and_take_compose() {
        let c = ColumnRel::from_relation(&profs());
        let left = c.take(&[0, 2]);
        let right = c.take(&[1, 3]);
        let wide = left.hstack(right);
        assert_eq!(wide.len(), 2);
        assert_eq!(wide.names().len(), 6);
    }

    #[test]
    fn distinct_first_appearance() {
        let r = Relation::from_rows(
            vec!["X"],
            vec![
                vec![Value::text("b")],
                vec![Value::text("a")],
                vec![Value::text("b")],
            ],
        )
        .unwrap();
        let c = ColumnRel::from_relation(&r);
        assert_eq!(c.distinct().to_relation(), r.distinct());
    }

    #[test]
    fn empty_projection_keeps_single_row() {
        let r = profs();
        let c = ColumnRel::from_relation(&r);
        let p = c.project_cols(&[]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.names().len(), 0);
        // row path agrees
        assert_eq!(r.project(&[]).unwrap().len(), 1);
    }

    #[test]
    fn to_table_matches_row_path_byte_for_byte() {
        for r in [profs(), depts()] {
            let c = ColumnRel::from_relation(&r);
            assert_eq!(c.to_table(), r.to_table());
            assert_eq!(format!("{c}"), r.to_table());
        }
        // heterogeneous (Values fallback) columns render identically too
        let r = Relation::from_rows(
            vec!["X", "Y"],
            vec![
                vec![Value::text("b"), Value::link("/u")],
                vec![Value::Null, Value::text("t")],
                vec![Value::link("/a"), Value::Null],
            ],
        )
        .unwrap();
        let c = ColumnRel::from_relation(&r);
        assert_eq!(c.to_table(), r.to_table());
    }

    #[test]
    fn url_symbols_round_trip() {
        let u = Url::new("/dept/42");
        let s = Symbol::from_url(&u);
        assert_eq!(s.to_url(), u);
    }
}
