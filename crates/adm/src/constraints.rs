//! Link and inclusion constraints (Section 3.2).
//!
//! * A **link constraint** `A = B`, attached to a link `L` from `P1` to
//!   `P2`, documents that attribute `A` of the source replicates attribute
//!   `B` of the target: for tuples `t1 ∈ P1`, `t2 ∈ P2`,
//!   `t1.L = t2.URL  ⇔  t1.A = t2.B`.
//! * An **inclusion constraint** `P1.L1 ⊆ P2.L2` documents that every page
//!   reachable via `L1` is also reachable via `L2`.
//!
//! Both kinds capture site redundancy and license the optimizer's rewrite
//! rules (selection pushing via link constraints, pointer-chase via
//! inclusion constraints). This module also provides instance-level
//! verification used by the site generators' self-checks and by tests.

use crate::schema::AttrRef;
use crate::url::Url;
use crate::value::{Tuple, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A link constraint: `link`'s source attribute `source_attr` equals the
/// target page's `target_attr`. `source_attr` lives in the same page-scheme
/// as `link` (at the same or an enclosing nesting level); `target_attr` is a
/// top-level mono-valued attribute of the link's target scheme.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkConstraint {
    /// The link attribute the constraint is attached to.
    pub link: AttrRef,
    /// The replicated attribute on the source side.
    pub source_attr: AttrRef,
    /// The replicated attribute on the target side.
    pub target_attr: AttrRef,
}

impl LinkConstraint {
    /// Creates a link constraint.
    pub fn new(link: AttrRef, source_attr: AttrRef, target_attr: AttrRef) -> Self {
        LinkConstraint {
            link,
            source_attr,
            target_attr,
        }
    }

    /// Convenience parser: `LinkConstraint::parse("P1.L", "P1.A", "P2.B")`.
    pub fn parse(link: &str, source: &str, target: &str) -> crate::Result<Self> {
        Ok(LinkConstraint::new(
            AttrRef::parse(link)?,
            AttrRef::parse(source)?,
            AttrRef::parse(target)?,
        ))
    }
}

impl fmt::Display for LinkConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {}  (via {})",
            self.source_attr, self.target_attr, self.link
        )
    }
}

/// An inclusion constraint `sub ⊆ sup` between two link attributes that
/// point to the same page-scheme.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InclusionConstraint {
    /// The contained link set.
    pub sub: AttrRef,
    /// The containing link set.
    pub sup: AttrRef,
}

impl InclusionConstraint {
    /// Creates an inclusion constraint `sub ⊆ sup`.
    pub fn new(sub: AttrRef, sup: AttrRef) -> Self {
        InclusionConstraint { sub, sup }
    }

    /// Convenience parser: `InclusionConstraint::parse("P1.L1", "P2.L2")`.
    pub fn parse(sub: &str, sup: &str) -> crate::Result<Self> {
        Ok(InclusionConstraint::new(
            AttrRef::parse(sub)?,
            AttrRef::parse(sup)?,
        ))
    }
}

impl fmt::Display for InclusionConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⊆ {}", self.sub, self.sup)
    }
}

/// A page-relation instance handed to the verification routines: for each
/// page of the scheme, its URL and nested tuple.
pub type Instance<'a> = &'a [(Url, Tuple)];

/// Collects the values at `path` from a tuple, flattening through lists.
/// Returns every occurrence (one per inner row for nested paths).
pub fn collect_values<'a>(tuple: &'a Tuple, path: &[String]) -> Vec<&'a Value> {
    fn walk<'a>(t: &'a Tuple, path: &[String], out: &mut Vec<&'a Value>) {
        let Some((first, rest)) = path.split_first() else {
            return;
        };
        let Some(v) = t.get(first) else { return };
        if rest.is_empty() {
            out.push(v);
        } else if let Value::List(rows) = v {
            for row in rows {
                walk(row, rest, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(tuple, path, &mut out);
    out
}

/// Collects `(source_attr value, link value)` pairs co-located at the link's
/// nesting level. `attr_path` must be visible at the link's level (same list
/// ancestry prefix), which schema validation guarantees for link
/// constraints.
pub fn collect_pairs<'a>(
    tuple: &'a Tuple,
    attr_path: &[String],
    link_path: &[String],
) -> Vec<(&'a Value, &'a Value)> {
    // Walk down the link path; at each level remember the most recent value
    // of the attribute path if it branches off here.
    fn walk<'a>(
        t: &'a Tuple,
        attr_path: &[String],
        link_path: &[String],
        inherited: Option<&'a Value>,
        out: &mut Vec<(&'a Value, &'a Value)>,
    ) {
        // Does the attribute live at this level?
        let attr_here = if attr_path.len() == 1 {
            t.get(&attr_path[0])
        } else {
            None
        };
        let current = attr_here.or(inherited);
        let Some((l_first, l_rest)) = link_path.split_first() else {
            return;
        };
        let Some(lv) = t.get(l_first) else { return };
        if l_rest.is_empty() {
            if let Some(av) = current {
                out.push((av, lv));
            }
            return;
        }
        // Descend into the list; if the attribute path also descends through
        // the same list, strip the shared head.
        let next_attr: &[String] = if attr_path.len() > 1 && attr_path[0] == *l_first {
            &attr_path[1..]
        } else {
            attr_path
        };
        if let Value::List(rows) = lv {
            for row in rows {
                walk(row, next_attr, l_rest, current, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(tuple, attr_path, link_path, None, &mut out);
    out
}

/// Result of verifying a constraint against instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Human-readable description of the violated condition.
    pub detail: String,
}

/// Verifies a link constraint on instances of its source and target
/// schemes. Checks both directions of the iff:
/// 1. every followed link lands on a page whose `target_attr` equals the
///    co-located `source_attr` value;
/// 2. whenever `source_attr` equals some page's `target_attr`, the link
///    points at (one of) the page(s) with that value.
pub fn verify_link_constraint(
    c: &LinkConstraint,
    source: Instance<'_>,
    target: Instance<'_>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut by_url: HashMap<&str, &Value> = HashMap::new();
    let mut urls_by_value: HashMap<&Value, HashSet<&str>> = HashMap::new();
    for (url, t) in target {
        if let Some(v) = t.get(c.target_attr.leaf()) {
            by_url.insert(url.as_str(), v);
            urls_by_value.entry(v).or_default().insert(url.as_str());
        }
    }
    for (src_url, t) in source {
        for (a, l) in collect_pairs(t, &c.source_attr.path, &c.link.path) {
            let Value::Link(u) = l else {
                if !l.is_null() {
                    violations.push(Violation {
                        detail: format!("{}: link value is not a URL in {src_url}", c.link),
                    });
                }
                continue;
            };
            match by_url.get(u.as_str()) {
                Some(b) if *b == a => {}
                Some(b) => violations.push(Violation {
                    detail: format!("{c}: page {src_url} links to {u} but {a} ≠ {b}"),
                }),
                None => violations.push(Violation {
                    detail: format!("{c}: page {src_url} links to unknown target {u}"),
                }),
            }
            // Only-if direction: the link must point into the set of pages
            // carrying this attribute value.
            if let Some(urls) = urls_by_value.get(a) {
                if !urls.contains(u.as_str()) {
                    violations.push(Violation {
                        detail: format!(
                            "{c}: page {src_url} has value {a} but links outside its page set"
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Verifies an inclusion constraint `sub ⊆ sup` given the instances of the
/// two source schemes: every URL occurring at `sub` must occur at `sup`.
pub fn verify_inclusion_constraint(
    c: &InclusionConstraint,
    sub_instance: Instance<'_>,
    sup_instance: Instance<'_>,
) -> Vec<Violation> {
    let mut sup_urls: HashSet<&str> = HashSet::new();
    for (_, t) in sup_instance {
        for v in collect_values(t, &c.sup.path) {
            if let Value::Link(u) = v {
                sup_urls.insert(u.as_str());
            }
        }
    }
    let mut violations = Vec::new();
    for (page_url, t) in sub_instance {
        for v in collect_values(t, &c.sub.path) {
            if let Value::Link(u) = v {
                if !sup_urls.contains(u.as_str()) {
                    violations.push(Violation {
                        detail: format!(
                            "{c}: URL {u} (reached from {page_url}) not reachable via {}",
                            c.sup
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Audit-oriented variant of [`verify_link_constraint`] for *partially
/// fetched* instances, as produced by runtime constraint auditing: checks
/// only the value-equality direction, and only for pairs whose link target
/// is present in `target`. A page the query never fetched can neither raise
/// nor mask a violation, so the check is sound under incomplete knowledge.
/// Returns the number of pairs checked together with the violations found.
pub fn verify_link_constraint_partial(
    c: &LinkConstraint,
    source: Instance<'_>,
    target: Instance<'_>,
) -> (u64, Vec<Violation>) {
    let mut by_url: HashMap<&str, &Value> = HashMap::new();
    for (url, t) in target {
        if let Some(v) = t.get(c.target_attr.leaf()) {
            by_url.insert(url.as_str(), v);
        }
    }
    let mut checks = 0u64;
    let mut violations = Vec::new();
    for (src_url, t) in source {
        for (a, l) in collect_pairs(t, &c.source_attr.path, &c.link.path) {
            let Value::Link(u) = l else { continue };
            let Some(b) = by_url.get(u.as_str()) else {
                // Target page not fetched: the pair is undecidable.
                continue;
            };
            checks += 1;
            if *b != a {
                violations.push(Violation {
                    detail: format!("{c}: page {src_url} links to {u} but {a} ≠ {b}"),
                });
            }
        }
    }
    (checks, violations)
}

/// Audit-oriented variant of [`verify_inclusion_constraint`] for partially
/// fetched instances. With an empty `sup` instance nothing is decidable
/// (0 checks, no violations); otherwise every `sub` link is checked against
/// the link set of the fetched `sup` pages. Unlike the link-constraint
/// audit this can report a false violation when the query fetched only part
/// of the `sup` collection — which is quarantine-conservative: at worst an
/// optimization is disabled, an answer is never corrupted.
pub fn verify_inclusion_constraint_partial(
    c: &InclusionConstraint,
    sub_instance: Instance<'_>,
    sup_instance: Instance<'_>,
) -> (u64, Vec<Violation>) {
    if sup_instance.is_empty() {
        return (0, Vec::new());
    }
    let mut sup_urls: HashSet<&str> = HashSet::new();
    for (_, t) in sup_instance {
        for v in collect_values(t, &c.sup.path) {
            if let Value::Link(u) = v {
                sup_urls.insert(u.as_str());
            }
        }
    }
    let mut checks = 0u64;
    let mut violations = Vec::new();
    for (page_url, t) in sub_instance {
        for v in collect_values(t, &c.sub.path) {
            if let Value::Link(u) = v {
                checks += 1;
                if !sup_urls.contains(u.as_str()) {
                    violations.push(Violation {
                        detail: format!(
                            "{c}: URL {u} (reached from {page_url}) not reachable via {}",
                            c.sup
                        ),
                    });
                }
            }
        }
    }
    (checks, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dept_tuple(dname: &str, profs: &[(&str, &str)]) -> Tuple {
        Tuple::new().with("DName", dname).with_list(
            "ProfList",
            profs
                .iter()
                .map(|(n, u)| {
                    Tuple::new()
                        .with("PName", *n)
                        .with("ToProf", Value::link(*u))
                })
                .collect(),
        )
    }

    fn prof_tuple(pname: &str) -> Tuple {
        Tuple::new().with("PName", pname)
    }

    fn link_c() -> LinkConstraint {
        LinkConstraint::parse(
            "DeptPage.ProfList.ToProf",
            "DeptPage.ProfList.PName",
            "ProfPage.PName",
        )
        .unwrap()
    }

    #[test]
    fn collect_values_flattens_lists() {
        let t = dept_tuple("CS", &[("Codd", "/p1"), ("Gray", "/p2")]);
        let vs = collect_values(&t, &["ProfList".into(), "PName".into()]);
        assert_eq!(vs.len(), 2);
        let vs = collect_values(&t, &["DName".into()]);
        assert_eq!(vs, vec![&Value::text("CS")]);
        assert!(collect_values(&t, &["Nope".into()]).is_empty());
    }

    #[test]
    fn collect_pairs_same_level() {
        let t = dept_tuple("CS", &[("Codd", "/p1"), ("Gray", "/p2")]);
        let pairs = collect_pairs(
            &t,
            &["ProfList".into(), "PName".into()],
            &["ProfList".into(), "ToProf".into()],
        );
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0.as_text(), Some("Codd"));
        assert_eq!(pairs[0].1.as_link().unwrap().as_str(), "/p1");
    }

    #[test]
    fn collect_pairs_outer_attr_inner_link() {
        // ProfPage.DName = DeptPage.DName via ProfPage.ToDept is top-level;
        // here test an outer attr against links inside a list.
        let t = Tuple::new().with("Session", "Fall").with_list(
            "CourseList",
            vec![
                Tuple::new()
                    .with("CName", "DB")
                    .with("ToCourse", Value::link("/c1")),
                Tuple::new()
                    .with("CName", "OS")
                    .with("ToCourse", Value::link("/c2")),
            ],
        );
        let pairs = collect_pairs(
            &t,
            &["Session".into()],
            &["CourseList".into(), "ToCourse".into()],
        );
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|(a, _)| a.as_text() == Some("Fall")));
    }

    #[test]
    fn link_constraint_holds() {
        let depts = vec![(
            Url::new("/d1"),
            dept_tuple("CS", &[("Codd", "/p1"), ("Gray", "/p2")]),
        )];
        let profs = vec![
            (Url::new("/p1"), prof_tuple("Codd")),
            (Url::new("/p2"), prof_tuple("Gray")),
        ];
        assert!(verify_link_constraint(&link_c(), &depts, &profs).is_empty());
    }

    #[test]
    fn link_constraint_detects_mismatch() {
        let depts = vec![(Url::new("/d1"), dept_tuple("CS", &[("Codd", "/p2")]))];
        let profs = vec![
            (Url::new("/p1"), prof_tuple("Codd")),
            (Url::new("/p2"), prof_tuple("Gray")),
        ];
        let v = verify_link_constraint(&link_c(), &depts, &profs);
        assert!(!v.is_empty());
        assert!(v[0].detail.contains("≠") || v.iter().any(|x| x.detail.contains("outside")));
    }

    #[test]
    fn link_constraint_detects_dangling() {
        let depts = vec![(Url::new("/d1"), dept_tuple("CS", &[("Codd", "/nowhere")]))];
        let profs = vec![(Url::new("/p1"), prof_tuple("Codd"))];
        let v = verify_link_constraint(&link_c(), &depts, &profs);
        assert!(v.iter().any(|x| x.detail.contains("unknown target")));
    }

    #[test]
    fn null_links_are_skipped() {
        let t = Tuple::new().with("DName", "CS").with_list(
            "ProfList",
            vec![Tuple::new().with("PName", "Codd").with_null("ToProf")],
        );
        let depts = vec![(Url::new("/d1"), t)];
        let profs = vec![(Url::new("/p1"), prof_tuple("Codd"))];
        // Null link, but the only-if direction doesn't fire because the pair
        // never yields a URL; the constraint verifier skips nulls entirely.
        let v = verify_link_constraint(&link_c(), &depts, &profs);
        assert!(v.is_empty());
    }

    #[test]
    fn inclusion_holds_and_fails() {
        let c = InclusionConstraint::parse("CoursePage.ToProf", "ProfListPage.ProfList.ToProf")
            .unwrap();
        let courses = vec![
            (
                Url::new("/c1"),
                Tuple::new().with("ToProf", Value::link("/p1")),
            ),
            (
                Url::new("/c2"),
                Tuple::new().with("ToProf", Value::link("/p2")),
            ),
        ];
        let lists = vec![(
            Url::new("/profs"),
            Tuple::new().with_list(
                "ProfList",
                vec![
                    Tuple::new().with("ToProf", Value::link("/p1")),
                    Tuple::new().with("ToProf", Value::link("/p2")),
                ],
            ),
        )];
        assert!(verify_inclusion_constraint(&c, &courses, &lists).is_empty());

        let partial_lists = vec![(
            Url::new("/profs"),
            Tuple::new().with_list(
                "ProfList",
                vec![Tuple::new().with("ToProf", Value::link("/p1"))],
            ),
        )];
        let v = verify_inclusion_constraint(&c, &courses, &partial_lists);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("/p2"));
    }

    #[test]
    fn empty_nested_lists_yield_no_pairs_or_violations() {
        let depts = vec![(Url::new("/d1"), dept_tuple("CS", &[]))];
        let profs = vec![(Url::new("/p1"), prof_tuple("Codd"))];
        assert!(collect_pairs(
            &depts[0].1,
            &["ProfList".into(), "PName".into()],
            &["ProfList".into(), "ToProf".into()],
        )
        .is_empty());
        assert!(verify_link_constraint(&link_c(), &depts, &profs).is_empty());
        let c =
            InclusionConstraint::parse("DeptPage.ProfList.ToProf", "Idx.ProfList.ToProf").unwrap();
        assert!(verify_inclusion_constraint(&c, &depts, &[]).is_empty());
    }

    #[test]
    fn missing_attributes_are_skipped_not_errors() {
        // Source rows without the replicated attribute produce no pairs;
        // target pages without the target attribute are treated as unknown.
        let t = Tuple::new().with("DName", "CS").with_list(
            "ProfList",
            vec![Tuple::new().with("ToProf", Value::link("/p1"))],
        );
        let depts = vec![(Url::new("/d1"), t)];
        let profs = vec![(Url::new("/p1"), Tuple::new().with("Office", "B12"))];
        let v = verify_link_constraint(&link_c(), &depts, &profs);
        // No PName on the source row → no pair → no violation about values;
        // /p1 lacks PName → it is an unknown target for the constraint.
        assert!(v.is_empty(), "{v:?}");
        let both = vec![(Url::new("/d2"), dept_tuple("CS", &[("Codd", "/p1")]))];
        let v = verify_link_constraint(&link_c(), &both, &profs);
        assert!(v.iter().any(|x| x.detail.contains("unknown target")));
    }

    #[test]
    fn duplicate_values_share_a_page_set() {
        // Two professors named Codd: a link to either page satisfies the
        // only-if direction, because the page *set* for the value has both.
        let depts = vec![(
            Url::new("/d1"),
            dept_tuple("CS", &[("Codd", "/p1"), ("Codd", "/p2")]),
        )];
        let profs = vec![
            (Url::new("/p1"), prof_tuple("Codd")),
            (Url::new("/p2"), prof_tuple("Codd")),
        ];
        assert!(verify_link_constraint(&link_c(), &depts, &profs).is_empty());
        // Duplicate links in the sub instance each count, and stay legal
        // as long as the sup side mentions the URL at least once.
        let c = InclusionConstraint::parse("A.To", "B.To").unwrap();
        let sub = vec![
            (Url::new("/a1"), Tuple::new().with("To", Value::link("/x"))),
            (Url::new("/a2"), Tuple::new().with("To", Value::link("/x"))),
        ];
        let sup = vec![(Url::new("/b1"), Tuple::new().with("To", Value::link("/x")))];
        assert!(verify_inclusion_constraint(&c, &sub, &sup).is_empty());
    }

    #[test]
    fn partial_link_check_skips_unfetched_targets() {
        let depts = vec![(
            Url::new("/d1"),
            dept_tuple("CS", &[("Codd", "/p1"), ("Gray", "/p2"), ("Liu", "/p3")]),
        )];
        // Only /p1 and /p2 were fetched; /p2 drifted. /p3 is undecidable.
        let fetched = vec![
            (Url::new("/p1"), prof_tuple("Codd")),
            (Url::new("/p2"), prof_tuple("Gray [drift]")),
        ];
        let (checks, v) = verify_link_constraint_partial(&link_c(), &depts, &fetched);
        assert_eq!(checks, 2);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("/p2"));
        // The full verifier would (rightly, over a full instance) also
        // complain about the unknown target — the partial one must not.
        assert!(v.iter().all(|x| !x.detail.contains("unknown target")));
    }

    #[test]
    fn partial_inclusion_check_needs_a_sup_instance() {
        let c = InclusionConstraint::parse("A.To", "B.To").unwrap();
        let sub = vec![(Url::new("/a1"), Tuple::new().with("To", Value::link("/x")))];
        assert_eq!(
            verify_inclusion_constraint_partial(&c, &sub, &[]),
            (0, vec![])
        );
        let sup = vec![(Url::new("/b1"), Tuple::new().with("To", Value::link("/y")))];
        let (checks, v) = verify_inclusion_constraint_partial(&c, &sub, &sup);
        assert_eq!(checks, 1);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("/x"));
    }

    #[test]
    fn constraints_order_deterministically() {
        let a = LinkConstraint::parse("P.L", "P.A", "Q.B").unwrap();
        let b = LinkConstraint::parse("P.L", "P.A", "Q.C").unwrap();
        assert!(a < b);
        let i = InclusionConstraint::parse("A.L1", "B.L2").unwrap();
        let j = InclusionConstraint::parse("A.L1", "C.L2").unwrap();
        assert!(i < j);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            link_c().to_string(),
            "DeptPage.ProfList.PName = ProfPage.PName  (via DeptPage.ProfList.ToProf)"
        );
        let i = InclusionConstraint::parse("A.L1", "B.L2").unwrap();
        assert_eq!(i.to_string(), "A.L1 ⊆ B.L2");
    }
}
