//! Streaming ASCII table rendering.
//!
//! [`crate::Relation::to_table`] and [`crate::ColumnRel::to_table`] both
//! funnel through [`render_ascii_table`]: cell text is measured once for
//! column widths, then the table is streamed into a single output buffer.
//! The previous writer built a `Vec<String>` per row plus a joined line
//! `String` per row, so wide results (the E7/E8 experiments produce dozens
//! of columns) re-allocated every line several times over; the streaming
//! writer allocates once for the output (plus the flat cell vector the
//! caller already produced for width measurement).

/// Renders the classic `a | b` / `--+--` ASCII table from a header and a
/// flat row-major cell vector (`cells.len() == nrows * columns.len()`).
///
/// Widths are measured in bytes but padding is applied per character,
/// matching `format!("{:w$}")` on the same widths — output is byte-identical
/// to the historical per-row writer.
pub fn render_ascii_table(columns: &[String], nrows: usize, cells: &[String]) -> String {
    let ncols = columns.len();
    debug_assert_eq!(cells.len(), nrows * ncols);
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for (i, c) in cells.iter().enumerate() {
        let w = &mut widths[i % ncols.max(1)];
        *w = (*w).max(c.len());
    }

    // One line: header + separator + rows, each padded to its column width.
    let line_width: usize = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1) + 1;
    let mut out = String::with_capacity(line_width * (nrows + 2));
    let emit_row = |out: &mut String, row: &[String]| {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(cell);
            let pad = widths[i].saturating_sub(cell.chars().count());
            for _ in 0..pad {
                out.push(' ');
            }
        }
        out.push('\n');
    };
    emit_row(&mut out, columns);
    for (i, w) in widths.iter().enumerate() {
        if i > 0 {
            out.push_str("-+-");
        }
        for _ in 0..*w {
            out.push('-');
        }
    }
    out.push('\n');
    if ncols == 0 {
        for _ in 0..nrows {
            out.push('\n');
        }
        return out;
    }
    for row in cells.chunks(ncols) {
        emit_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pads_and_separates() {
        let t = render_ascii_table(
            &["A".into(), "Long".into()],
            2,
            &["xx".into(), "y".into(), "⊥".into(), "zzzzz".into()],
        );
        let lines: Vec<&str> = t.lines().collect();
        // column A is 3 wide: "⊥" is measured at its 3-byte length
        assert_eq!(lines[0], "A   | Long ");
        assert_eq!(lines[1], "----+------");
        assert_eq!(lines[2], "xx  | y    ");
        // "⊥" is 3 bytes / 1 char: width counts bytes, padding counts chars,
        // exactly like format!("{:w$}") over byte-measured widths.
        assert_eq!(lines[3], "⊥   | zzzzz");
    }

    #[test]
    fn zero_columns_renders_blank_lines() {
        let t = render_ascii_table(&[], 2, &[]);
        assert_eq!(t, "\n\n\n\n");
    }
}
