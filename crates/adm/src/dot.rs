//! Graphviz (DOT) rendering of web schemes — Figure 1 as a picture.
//!
//! Page-schemes render as record nodes listing their attributes; links
//! render as labeled edges; entry points are drawn double-framed with
//! their URL. Constraints are listed in a legend node so the full scheme
//! of Figure 1 fits one diagram.

use crate::schema::WebScheme;
use crate::types::{Field, WebType};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('{', "\\{")
        .replace('}', "\\}")
        .replace('<', "\\<")
        .replace('>', "\\>")
        .replace('|', "\\|")
}

fn field_lines(fields: &[Field], indent: usize, out: &mut Vec<String>) {
    for f in fields {
        let pad = "\\ ".repeat(indent * 2);
        match &f.ty {
            WebType::List(inner) => {
                out.push(format!("{pad}{}: list", escape(&f.name)));
                field_lines(inner, indent + 1, out);
            }
            WebType::Link { target } => {
                out.push(format!("{pad}{}: → {}", escape(&f.name), escape(target)));
            }
            other => {
                let opt = if f.optional { "?" } else { "" };
                out.push(format!("{pad}{}: {}{opt}", escape(&f.name), other.kind()));
            }
        }
    }
}

/// Renders a scheme as a DOT digraph.
pub fn scheme_to_dot(ws: &WebScheme) -> String {
    let mut out = String::from("digraph web_scheme {\n");
    out.push_str("  rankdir=LR;\n  node [shape=record, fontsize=10];\n");
    for s in ws.schemes() {
        let mut lines = vec![format!("{}", escape(&s.name))];
        if let Some(ep) = ws.entry_point(&s.name) {
            lines.push(format!("entry: {}", escape(ep.url.as_str())));
        }
        field_lines(&s.fields, 0, &mut lines);
        let peripheries = if ws.is_entry_point(&s.name) { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{{{}}}\", peripheries={}];",
            s.name,
            lines.join("|"),
            peripheries
        );
    }
    for s in ws.schemes() {
        for (path, target) in s.link_paths() {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\", fontsize=9];",
                s.name,
                target,
                escape(&path.join("."))
            );
        }
    }
    // constraint legend
    let mut legend: Vec<String> = Vec::new();
    for c in ws.link_constraints() {
        legend.push(escape(&c.to_string()));
    }
    for c in ws.inclusion_constraints() {
        legend.push(escape(&c.to_string()));
    }
    if !legend.is_empty() {
        let _ = writeln!(
            out,
            "  constraints [shape=note, fontsize=8, label=\"{}\"];",
            legend.join("\\l")
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::PageScheme;
    use crate::types::Field;

    fn mini() -> WebScheme {
        let list = PageScheme::new(
            "ListPage",
            vec![Field::list(
                "Items",
                vec![Field::text("Name"), Field::link("ToItem", "ItemPage")],
            )],
        )
        .unwrap();
        let item = PageScheme::new("ItemPage", vec![Field::text("Name")]).unwrap();
        WebScheme::builder()
            .scheme(list)
            .scheme(item)
            .entry_point("ListPage", "/list.html")
            .link_constraint(
                crate::LinkConstraint::parse(
                    "ListPage.Items.ToItem",
                    "ListPage.Items.Name",
                    "ItemPage.Name",
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn dot_contains_nodes_edges_and_legend() {
        let dot = scheme_to_dot(&mini());
        assert!(dot.starts_with("digraph web_scheme {"));
        assert!(dot.contains("\"ListPage\" [label="));
        assert!(dot.contains("\"ListPage\" -> \"ItemPage\""));
        assert!(dot.contains("Items.ToItem"));
        assert!(dot.contains("entry: /list.html"));
        assert!(dot.contains("constraints [shape=note"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn entry_points_double_framed() {
        let dot = scheme_to_dot(&mini());
        let list_line = dot.lines().find(|l| l.contains("\"ListPage\" [")).unwrap();
        assert!(list_line.contains("peripheries=2"));
        let item_line = dot.lines().find(|l| l.contains("\"ItemPage\" [")).unwrap();
        assert!(item_line.contains("peripheries=1"));
    }

    #[test]
    fn special_characters_escaped() {
        let s = PageScheme::new("P", vec![Field::text("A<B>|{}")]).unwrap();
        let ws = WebScheme::builder().scheme(s).build().unwrap();
        let dot = scheme_to_dot(&ws);
        assert!(dot.contains("A\\<B\\>\\|\\{\\}"));
    }
}
