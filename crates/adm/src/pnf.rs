//! Partitioned Normal Form: nest, full unnest, and flat decomposition.
//!
//! The paper assumes page-relations are nested relations in PNF
//! (footnote 5, citing Roth–Korth–Silberschatz): at every nesting level the
//! mono-valued attributes form a key. Section 8 uses the classical
//! consequence: a PNF nested relation "can be easily decomposed in flat
//! relations and stored in a relational DBMS". This module provides that
//! machinery:
//!
//! * [`Relation::nest`] — the inverse of unnest ν (on PNF inputs);
//! * [`fully_unnest`] — flatten a page-relation completely;
//! * [`decompose`] — one flat table per nesting level, keyed by the URL
//!   plus the ancestor levels' mono attributes;
//! * [`is_pnf`] — check the PNF key property on an instance.

use crate::error::AdmError;
use crate::relation::Relation;
use crate::schema::PageScheme;
use crate::types::{Field, WebType};
use crate::url::Url;
use crate::value::{Tuple, Value};
use crate::Result;
use std::collections::BTreeMap;

impl Relation {
    /// Nest ν: groups rows by all columns *not* listed in `nested_cols`,
    /// collecting the listed columns into a new list column `new_col`.
    /// Inner field names strip the `"{new_col}."` prefix when present (the
    /// convention `unnest` uses), so `nest` inverts `unnest` on PNF data.
    pub fn nest(&self, nested_cols: &[&str], new_col: &str) -> Result<Relation> {
        let nested_idx: Vec<usize> = nested_cols
            .iter()
            .map(|c| self.resolve(c))
            .collect::<Result<_>>()?;
        let keep_idx: Vec<usize> = (0..self.columns().len())
            .filter(|i| !nested_idx.contains(i))
            .collect();
        let inner_names: Vec<String> = nested_idx
            .iter()
            .map(|&i| {
                let full = &self.columns()[i];
                full.strip_prefix(&format!("{new_col}."))
                    .unwrap_or_else(|| full.rsplit('.').next().unwrap_or(full))
                    .to_string()
            })
            .collect();
        let mut columns: Vec<String> = keep_idx
            .iter()
            .map(|&i| self.columns()[i].clone())
            .collect();
        columns.push(new_col.to_string());
        // group, preserving first-appearance order
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: BTreeMap<usize, Vec<Tuple>> = BTreeMap::new();
        let mut index: std::collections::HashMap<Vec<Value>, usize> =
            std::collections::HashMap::new();
        for row in self.rows() {
            let key: Vec<Value> = keep_idx.iter().map(|&i| row[i].clone()).collect();
            let gi = *index.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                order.len() - 1
            });
            let inner = Tuple::from_pairs(
                inner_names
                    .iter()
                    .cloned()
                    .zip(nested_idx.iter().map(|&i| row[i].clone()))
                    .collect(),
            );
            groups.entry(gi).or_default().push(inner);
        }
        let mut out = Relation::new(columns);
        for (gi, key) in order.into_iter().enumerate() {
            let mut row = key;
            row.push(Value::List(groups.remove(&gi).unwrap_or_default()));
            out.push_row(row)?;
        }
        Ok(out)
    }
}

/// True if an instance satisfies PNF: at every level, the mono-valued
/// attributes (plus the page URL at the top level) form a key.
pub fn is_pnf(scheme: &PageScheme, instance: &[(Url, Tuple)]) -> bool {
    fn level_ok(fields: &[Field], rows: &[&Tuple]) -> bool {
        let mono: Vec<&Field> = fields.iter().filter(|f| f.ty.is_mono_valued()).collect();
        let mut seen = std::collections::HashSet::new();
        for t in rows {
            let key: Vec<Option<&Value>> = mono.iter().map(|f| t.get(&f.name)).collect();
            if !seen.insert(format!("{key:?}")) {
                return false;
            }
        }
        // recurse into each list attribute
        for f in fields {
            if let WebType::List(inner) = &f.ty {
                for t in rows {
                    if let Some(Value::List(items)) = t.get(&f.name) {
                        let refs: Vec<&Tuple> = items.iter().collect();
                        if !level_ok(inner, &refs) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
    // URLs are unique by construction (map keys); check attribute levels
    // within every page.
    instance.iter().all(|(_, t)| {
        let refs = [t];
        level_ok(&scheme.fields, &refs)
    })
}

/// Fully unnests a page-relation into one flat relation (columns:
/// `Scheme.URL`, every mono path, one row per innermost combination).
pub fn fully_unnest(scheme: &PageScheme, instance: &[(Url, Tuple)]) -> Result<Relation> {
    let mut rel = page_relation(scheme, instance)?;
    loop {
        // find a column whose first non-null value is a list
        let mut target: Option<String> = None;
        'outer: for (i, col) in rel.columns().iter().enumerate() {
            for row in rel.rows() {
                match &row[i] {
                    Value::List(_) => {
                        target = Some(col.clone());
                        break 'outer;
                    }
                    Value::Null => continue,
                    _ => continue 'outer,
                }
            }
        }
        match target {
            Some(col) => {
                rel = rel.unnest_infer(&col)?;
            }
            None => return Ok(rel),
        }
    }
}

/// The page-relation of a scheme instance: `Scheme.URL` plus one column
/// per top-level attribute (lists nested).
pub fn page_relation(scheme: &PageScheme, instance: &[(Url, Tuple)]) -> Result<Relation> {
    let mut cols = vec![format!("{}.URL", scheme.name)];
    cols.extend(
        scheme
            .fields
            .iter()
            .map(|f| format!("{}.{}", scheme.name, f.name)),
    );
    let mut rel = Relation::new(cols);
    for (url, t) in instance {
        let mut row = vec![Value::Link(url.clone())];
        for f in &scheme.fields {
            row.push(t.get(&f.name).cloned().unwrap_or(Value::Null));
        }
        rel.push_row(row)?;
    }
    Ok(rel)
}

/// Decomposes a page-relation into flat tables, one per nesting level:
/// the top table `Scheme` holds URL + mono attributes; each list attribute
/// `Scheme.Path.To.List` becomes a table keyed by the URL plus the mono
/// attributes of every enclosing level (the PNF keys).
pub fn decompose(
    scheme: &PageScheme,
    instance: &[(Url, Tuple)],
) -> Result<BTreeMap<String, Relation>> {
    let mut tables: BTreeMap<String, Relation> = BTreeMap::new();

    fn table_for(
        tables: &mut BTreeMap<String, Relation>,
        name: &str,
        cols: &[String],
    ) -> Result<()> {
        if !tables.contains_key(name) {
            tables.insert(name.to_string(), Relation::new(cols.to_vec()));
        } else if tables[name].columns() != cols {
            return Err(AdmError::SchemaViolation(format!(
                "inconsistent decomposition columns for {name}"
            )));
        }
        Ok(())
    }

    fn walk(
        tables: &mut BTreeMap<String, Relation>,
        table_name: &str,
        fields: &[Field],
        key_cols: &[String],
        key_vals: &[Value],
        rows: &[&Tuple],
    ) -> Result<()> {
        let mono: Vec<&Field> = fields.iter().filter(|f| f.ty.is_mono_valued()).collect();
        let mut cols: Vec<String> = key_cols.to_vec();
        cols.extend(mono.iter().map(|f| format!("{table_name}.{}", f.name)));
        table_for(tables, table_name, &cols)?;
        for t in rows {
            let mut row = key_vals.to_vec();
            for f in &mono {
                row.push(t.get(&f.name).cloned().unwrap_or(Value::Null));
            }
            // this level's key = parent key + own mono attributes
            let child_key_cols = cols.clone();
            let child_key_vals = row.clone();
            tables
                .get_mut(table_name)
                .expect("inserted above")
                .push_row(row)?;
            for f in fields {
                if let WebType::List(inner) = &f.ty {
                    if let Some(Value::List(items)) = t.get(&f.name) {
                        let child_name = format!("{table_name}.{}", f.name);
                        let refs: Vec<&Tuple> = items.iter().collect();
                        walk(
                            tables,
                            &child_name,
                            inner,
                            &child_key_cols,
                            &child_key_vals,
                            &refs,
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    for (url, t) in instance {
        let key_cols = vec![format!("{}.URL", scheme.name)];
        let key_vals = vec![Value::Link(url.clone())];
        walk(
            &mut tables,
            &scheme.name,
            &scheme.fields,
            &key_cols,
            &key_vals,
            &[t],
        )?;
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Field;

    fn prof_scheme() -> PageScheme {
        PageScheme::new(
            "ProfPage",
            vec![
                Field::text("PName"),
                Field::text("Rank"),
                Field::list(
                    "CourseList",
                    vec![Field::text("CName"), Field::link("ToCourse", "ProfPage")],
                ),
            ],
        )
        .unwrap()
    }

    fn instance() -> Vec<(Url, Tuple)> {
        vec![
            (
                Url::new("/p1"),
                Tuple::new()
                    .with("PName", "Codd")
                    .with("Rank", "Full")
                    .with_list(
                        "CourseList",
                        vec![
                            Tuple::new()
                                .with("CName", "DB")
                                .with("ToCourse", Value::link("/c1")),
                            Tuple::new()
                                .with("CName", "OS")
                                .with("ToCourse", Value::link("/c2")),
                        ],
                    ),
            ),
            (
                Url::new("/p2"),
                Tuple::new()
                    .with("PName", "Gray")
                    .with("Rank", "Full")
                    .with_list("CourseList", vec![]),
            ),
        ]
    }

    #[test]
    fn nest_inverts_unnest() {
        let rel = page_relation(&prof_scheme(), &instance()).unwrap();
        let un = rel
            .unnest("CourseList", &["CName".into(), "ToCourse".into()])
            .unwrap();
        let re = un
            .nest(
                &["ProfPage.CourseList.CName", "ProfPage.CourseList.ToCourse"],
                "ProfPage.CourseList",
            )
            .unwrap();
        // unnest drops rows with empty lists, so compare against the
        // original minus those rows
        let nonempty = rel.select(|row| matches!(&row[3], Value::List(ts) if !ts.is_empty()));
        assert_eq!(re.sorted(), nonempty.sorted());
    }

    #[test]
    fn nest_groups_by_remaining_columns() {
        let rel = Relation::from_rows(
            vec!["A", "B"],
            vec![
                vec![Value::text("x"), Value::text("1")],
                vec![Value::text("x"), Value::text("2")],
                vec![Value::text("y"), Value::text("3")],
            ],
        )
        .unwrap();
        let n = rel.nest(&["B"], "Bs").unwrap();
        assert_eq!(n.len(), 2);
        let x_row = n.select_eq("A", &Value::text("x")).unwrap();
        assert_eq!(x_row.rows()[0][1].as_list().unwrap().len(), 2);
    }

    #[test]
    fn pnf_holds_on_proper_instance() {
        assert!(is_pnf(&prof_scheme(), &instance()));
    }

    #[test]
    fn pnf_detects_duplicate_inner_keys() {
        let bad = vec![(
            Url::new("/p1"),
            Tuple::new()
                .with("PName", "Codd")
                .with("Rank", "Full")
                .with_list(
                    "CourseList",
                    vec![
                        Tuple::new()
                            .with("CName", "DB")
                            .with("ToCourse", Value::link("/c1")),
                        Tuple::new()
                            .with("CName", "DB")
                            .with("ToCourse", Value::link("/c1")),
                    ],
                ),
        )];
        assert!(!is_pnf(&prof_scheme(), &bad));
    }

    #[test]
    fn fully_unnest_flattens_everything() {
        let flat = fully_unnest(&prof_scheme(), &instance()).unwrap();
        // /p1 contributes 2 rows; /p2 vanishes (empty list)
        assert_eq!(flat.len(), 2);
        assert!(flat.resolve("ProfPage.CourseList.CName").is_ok());
        assert!(flat
            .rows()
            .iter()
            .all(|r| r.iter().all(|v| !matches!(v, Value::List(_)))));
    }

    #[test]
    fn decompose_produces_keyed_tables() {
        let tables = decompose(&prof_scheme(), &instance()).unwrap();
        assert_eq!(tables.len(), 2);
        let top = &tables["ProfPage"];
        assert_eq!(top.len(), 2);
        assert_eq!(
            top.columns(),
            &[
                "ProfPage.URL".to_string(),
                "ProfPage.PName".to_string(),
                "ProfPage.Rank".to_string(),
            ]
        );
        let child = &tables["ProfPage.CourseList"];
        assert_eq!(child.len(), 2); // two courses, both of /p1
        assert!(child.resolve("ProfPage.URL").is_ok());
        assert!(child.resolve("ProfPage.CourseList.CName").is_ok());
    }

    #[test]
    fn decomposition_joins_back_to_full_unnest() {
        let tables = decompose(&prof_scheme(), &instance()).unwrap();
        let joined = tables["ProfPage"]
            .join(
                &rename_parent_key(&tables["ProfPage.CourseList"]),
                &[("ProfPage.URL", "PK.URL")],
            )
            .unwrap()
            .project(&[
                "ProfPage.URL",
                "ProfPage.PName",
                "ProfPage.Rank",
                "ProfPage.CourseList.CName",
                "ProfPage.CourseList.ToCourse",
            ])
            .unwrap();
        let flat = fully_unnest(&prof_scheme(), &instance()).unwrap();
        let flat = flat
            .project(&[
                "ProfPage.URL",
                "ProfPage.PName",
                "ProfPage.Rank",
                "ProfPage.CourseList.CName",
                "ProfPage.CourseList.ToCourse",
            ])
            .unwrap();
        assert_eq!(joined.sorted(), flat.sorted());
    }

    /// Renames the child table's parent-key columns so the join header
    /// stays unambiguous.
    fn rename_parent_key(child: &Relation) -> Relation {
        child
            .rename("ProfPage.URL", "PK.URL")
            .unwrap()
            .rename("ProfPage.PName", "PK.PName")
            .unwrap()
            .rename("ProfPage.Rank", "PK.Rank")
            .unwrap()
    }
}
