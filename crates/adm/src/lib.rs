//! # adm — the Araneus Data Model (subset)
//!
//! This crate implements the data model of *Efficient Queries over Web
//! Views* (Mecca, Mendelzon, Merialdo, 1998): a subset of the Araneus Data
//! Model (ADM) in which a portion of the Web is described by
//!
//! * **page-schemes** — nested-relation descriptions of sets of structurally
//!   homogeneous pages ([`PageScheme`]),
//! * **entry points** — page-schemes whose instance is a single page with a
//!   known URL ([`EntryPoint`]),
//! * **link constraints** — `P1.A = P2.B` predicates attached to a link,
//!   documenting attribute replication across pages ([`LinkConstraint`]),
//! * **inclusion constraints** — `P1.L1 ⊆ P2.L2` containments between sets
//!   of links, documenting multiple navigation paths to the same pages
//!   ([`InclusionConstraint`]).
//!
//! Instances are **page-relations**: sets of nested tuples in Partitioned
//! Normal Form, one tuple per page, keyed by URL ([`Relation`], [`Tuple`],
//! [`Value`]).
//!
//! The companion crates build on this model: `websim` generates sites whose
//! pages are instances of these schemes, `wrapper` parses HTML back into
//! [`Tuple`]s, `nalg` evaluates the navigational algebra over
//! [`Relation`]s, and `wv-core` reasons about the constraints to optimize
//! queries.

pub mod columnar;
pub mod constraints;
pub mod display;
pub mod dot;
pub mod error;
pub mod intern;
pub mod paths;
pub mod pnf;
pub mod relation;
pub mod schema;
pub mod types;
pub mod url;
pub mod value;

pub use columnar::{Bitmap, Column, ColumnData, ColumnRel, ColumnRelBuilder};
pub use constraints::{InclusionConstraint, LinkConstraint};
pub use error::AdmError;
pub use intern::Symbol;
pub use paths::{NavPath, PathStep};
pub use relation::Relation;
pub use schema::{AttrRef, EntryPoint, PageScheme, WebScheme, WebSchemeBuilder};
pub use types::{Field, WebType};
pub use url::Url;
pub use value::{Tuple, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AdmError>;
