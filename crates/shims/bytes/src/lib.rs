//! Offline stand-in for the `bytes` crate: an immutable, reference-counted
//! byte buffer. Cloning is O(1) (an `Arc` bump), which is the property the
//! virtual server relies on when handing the same body to many readers.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_derefs() {
        let b: Bytes = "hello".into();
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(c, b);
        let s: Bytes = String::from("x").into();
        assert_eq!(s.as_ref(), b"x");
    }
}
