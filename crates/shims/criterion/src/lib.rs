//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark for a fixed number of timed iterations and prints a
//! mean/min/max summary line per benchmark. No statistical analysis, HTML
//! reports, or warm-up calibration — just enough to execute the workspace's
//! `cargo bench` targets and produce comparable wall-clock numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Whether the bench binary was invoked with `--test` (the flag real
/// criterion honors under `cargo bench -- --test`): every benchmark runs
/// exactly once, so CI can smoke-test bench targets without paying for
/// timed samples.
fn test_mode_from_args() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Timing callback handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{label:<48} mean {mean:>10.3?}   min {min:>10.3?}   max {max:>10.3?}   ({} samples)",
        samples.len()
    );
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark records. Ignored in
    /// `--test` mode, which pins every benchmark to a single iteration.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if self.test_mode { 1 } else { n.max(1) };
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::with_test_mode(test_mode_from_args())
    }
}

impl Criterion {
    /// A driver with `--test` mode set explicitly (the default detects it
    /// from the process arguments). In test mode every benchmark runs one
    /// iteration regardless of any requested sample size.
    pub fn with_test_mode(test_mode: bool) -> Self {
        Criterion {
            default_sample_size: if test_mode { 1 } else { 10 },
            test_mode,
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            test_mode: self.test_mode,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
        };
        f(&mut b);
        report(&id.to_string(), &b.samples);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn test_mode_pins_one_sample() {
        let mut c = Criterion::with_test_mode(true);
        let mut group = c.benchmark_group("fast");
        group.sample_size(50); // ignored in test mode
        let mut runs = 0usize;
        group.bench_function("once", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
