//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses, implemented over
//! `std::sync`. Semantics match parking_lot where it matters to callers:
//! lock methods return guards directly (no poisoning — a poisoned std lock
//! is unwrapped, since a panic while holding a lock is already a bug).

use std::fmt;
use std::sync::{self, Condvar as StdCondvar};
use std::time::Duration;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable with parking_lot's guard-taking API.
#[derive(Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety of the dance: we temporarily move the std guard out to
        // hand it to std's wait, then put the reacquired one back.
        replace_with(guard, |g| {
            self.0.wait(g.0).unwrap_or_else(|e| e.into_inner())
        });
    }

    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        replace_with(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g.0, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        timed_out
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

fn replace_with<'a, T: ?Sized>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // MutexGuard is a newtype over std's guard; swap through a raw read.
    // This is the standard guard-replacement pattern: `f` consumes the old
    // guard (releasing the lock inside `wait`) and returns the reacquired
    // one, which we write back without running the old destructor twice.
    unsafe {
        let old = std::ptr::read(guard);
        let new = MutexGuard(f(old));
        std::ptr::write(guard, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
        assert_eq!(rw.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
