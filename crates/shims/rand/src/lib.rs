//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}` — over xoshiro256++ seeded via
//! splitmix64. Streams are deterministic per seed (the property every site
//! generator and experiment relies on) but are *not* bit-compatible with
//! upstream rand; all in-repo tests assert structural properties, not
//! literal streams.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types samplable from ranges. The single generic
/// `SampleRange` impl below keeps upstream rand's inference behaviour:
/// `rng.gen_range(0..100) < some_u32` unifies the literal with `u32`.
pub trait SampleUniform: Copy + PartialOrd {
    fn from_i128(v: i128) -> Self;
    fn to_i128(self) -> i128;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_i128(v: i128) -> $t {
                v as $t
            }
            fn to_i128(self) -> i128 {
                self as i128
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        let v = ((rng.next_u64() as u128) % span) as i128;
        T::from_i128(self.start.to_i128() + v)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = (end.to_i128() - start.to_i128()) as u128 + 1;
        let v = ((rng.next_u64() as u128) % span) as i128;
        T::from_i128(start.to_i128() + v)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start at the all-zero state
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random-order helpers on slices (Fisher–Yates shuffle).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }
}
