//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace uses:
//! regex-like string literals, integer ranges, tuples,
//! [`collection::vec`], [`Just`], [`any`] (for `bool` and
//! [`sample::Index`]), `prop_map`, [`prop_oneof!`], and the [`proptest!`]
//! test macro with `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! no shrinking (a failing case panics with the standard assert message),
//! and a fixed deterministic seed per test name, so failures reproduce
//! across runs.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic generator state for one property test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds deterministically from the test's name (FNV-1a), so each
        /// property gets its own reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }

        pub fn in_range(&mut self, min: usize, max: usize) -> usize {
            min + self.below(max - min + 1)
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration. Only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of an output type.
pub trait Strategy {
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> strategy::BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        strategy::BoxedStrategy(Box::new(self))
    }
}

pub mod strategy {
    use super::{Strategy, TestRng};

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Object-safe strategy core (the `Strategy` trait itself has generic
    /// methods).
    pub trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among alternative strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

/// The canonical strategy for a type.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a not-yet-known collection: stores raw entropy,
    /// reduced modulo the length at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this index into `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// ── integer-range strategies ───────────────────────────────────────────

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ── tuple strategies ───────────────────────────────────────────────────

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// ── collections ────────────────────────────────────────────────────────

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range(self.size.min, self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ── regex-like string strategies ───────────────────────────────────────

/// One parsed pattern element.
enum Atom {
    /// `.` — any "interesting" character.
    Any,
    /// `[...]` — character class; `(lo, hi)` inclusive member ranges.
    Class {
        neg: bool,
        members: Vec<(char, char)>,
    },
    /// A literal character.
    Lit(char),
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Characters `.` draws from beyond plain ASCII — enough variety to rattle
/// parsers (multi-byte UTF-8, controls, markup metacharacters).
const SPICE: &[char] = &[
    '\n', '\t', '\u{0}', '\u{7f}', '<', '>', '&', '"', '\'', 'é', 'ß', '漢', '🦀', '\u{202e}',
];

fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let neg = i < chars.len() && chars[i] == '^';
                if neg {
                    i += 1;
                }
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let mut c = chars[i];
                    if c == '\\' && i + 1 < chars.len() {
                        i += 1;
                        c = chars[i];
                    }
                    // range `a-z` when a `-` sits between two members
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        members.push((c, hi));
                        i += 3;
                    } else {
                        members.push((c, c));
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                Atom::Class { neg, members }
            }
            '\\' if i + 1 < chars.len() => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // quantifier
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '*' => {
                    i += 1;
                    (0, 32)
                }
                '+' => {
                    i += 1;
                    (1, 32)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unclosed {} quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad quantifier"),
                            n.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        out.push(Quantified { atom, min, max });
    }
    out
}

fn gen_any_char(rng: &mut TestRng) -> char {
    if rng.below(10) == 0 {
        SPICE[rng.below(SPICE.len())]
    } else {
        // printable ASCII
        char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap()
    }
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Any => gen_any_char(rng),
        Atom::Lit(c) => *c,
        Atom::Class {
            neg: false,
            members,
        } => {
            let total: u32 = members
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.below(total.max(1) as usize) as u32;
            for &(lo, hi) in members {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick).unwrap_or(lo);
                }
                pick -= span;
            }
            members.first().map(|&(lo, _)| lo).unwrap_or('a')
        }
        Atom::Class { neg: true, members } => {
            for _ in 0..64 {
                let c = gen_any_char(rng);
                let inside = members.iter().any(|&(lo, hi)| (lo..=hi).contains(&c));
                if !inside {
                    return c;
                }
            }
            'a'
        }
    }
}

fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for q in parse_pattern(pattern) {
        let n = rng.in_range(q.min, q.max);
        for _ in 0..n {
            out.push(gen_atom(&q.atom, rng));
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

// ── macros ─────────────────────────────────────────────────────────────

/// Boxes a strategy (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> strategy::BoxedStrategy<S::Value> {
    s.boxed()
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( #[test] fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Union};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace mirror (`prop::sample::Index`, `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn pattern_generation_respects_classes() {
        let mut rng = TestRng::for_test("classes");
        for _ in 0..200 {
            let s = super::gen_from_pattern("[a-z]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        for _ in 0..200 {
            let s = super::gen_from_pattern("[^<>]{0,8}", &mut rng);
            assert!(!s.contains('<') && !s.contains('>'), "{s:?}");
        }
        for _ in 0..50 {
            let s = super::gen_from_pattern("[a-zA-Z0-9/._-]{1,30}", &mut rng);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "/._-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn ranges_tuples_vec_and_oneof() {
        let mut rng = TestRng::for_test("combos");
        let strat = (0usize..10, prop_oneof![Just(1u8), Just(2u8)]);
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!(b == 1 || b == 2);
        }
        let v = crate::collection::vec(0u64..5, 2..6).generate(&mut rng);
        assert!((2..=5).contains(&v.len()));
        let idx = any::<prop::sample::Index>().generate(&mut rng);
        assert!(idx.index(7) < 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_arguments(x in 0usize..50, s in "[0-9]{1,3}") {
            prop_assert!(x < 50);
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert_eq!(s.parse::<u32>().is_ok(), true);
        }
    }
}
