//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities the workspace uses:
//!
//! * [`scope`] — crossbeam-style scoped threads (the spawn closure receives
//!   the scope, so workers can spawn siblings), implemented over
//!   `std::thread::scope`;
//! * [`channel`] — multi-producer **multi-consumer** channels (std's mpsc
//!   receiver is not cloneable; the fetch worker pool needs work-stealing
//!   consumption), implemented with a mutex-guarded deque and condvars.

use std::any::Any;

/// Scoped threads; the closure receives a [`Scope`] handle usable from
/// inside spawned threads.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // std::thread::scope propagates panics from unjoined spawned threads by
    // panicking itself, which matches how every caller here uses
    // crossbeam's Result (immediate .expect).
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Handle for spawning threads inside a [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'s> FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Capacity bound; usize::MAX for unbounded channels.
        cap: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Signalled when an item arrives or the last sender leaves.
        not_empty: Condvar,
        /// Signalled when space frees up or the last receiver leaves.
        not_full: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// The channel is closed and empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// All receivers are gone; the unsent value is returned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Nothing available right now.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Why a bounded-wait receive returned without a value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with the channel still empty.
        Timeout,
        /// The channel is closed and empty.
        Disconnected,
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    /// A channel holding at most `cap` queued items; sends block when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(cap.max(1))
    }

    fn with_capacity<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // disconnection. The notify must happen with the queue
                // lock held: a receiver that already loaded `senders > 0`
                // holds the lock right up until `wait()` parks it, so
                // locking here delays the notify until that receiver is
                // parked (and can hear it). Notifying without the lock
                // races that check-then-park window and a receiver parks
                // forever on a channel nobody will ever signal again.
                let _queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Same check-then-park race as the Sender drop, for
                // senders blocked on a full bounded channel.
                let _queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.0.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                if queue.len() < self.0.cap {
                    queue.push_back(value);
                    drop(queue);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                queue = self
                    .0
                    .not_full
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .0
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks for the next value at most `timeout`; distinguishes an
        /// elapsed wait from a closed-and-drained channel so pollers can
        /// keep deadlines without busy-spinning.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = self
                    .0
                    .not_empty
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator until the channel is closed and drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_fan_out_fan_in() {
            let (tx, rx) = unbounded::<usize>();
            let (out_tx, out_rx) = unbounded::<usize>();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let rx = rx.clone();
                    let out = out_tx.clone();
                    s.spawn(move || {
                        while let Ok(v) = rx.recv() {
                            out.send(v * 2).unwrap();
                        }
                    });
                }
                drop(out_tx);
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                drop(rx);
                let mut got: Vec<usize> = out_rx.iter().collect();
                got.sort_unstable();
                assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            });
        }

        #[test]
        fn bounded_blocks_then_drains() {
            let (tx, rx) = bounded::<u32>(2);
            let h = std::thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            h.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            let t0 = std::time::Instant::now();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_wakes_on_send_before_deadline() {
            let (tx, rx) = unbounded::<u8>();
            std::thread::scope(|s| {
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    tx.send(1).unwrap();
                });
                assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(1));
            });
        }

        #[test]
        fn recv_fails_when_closed_and_empty() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        /// Regression stress for the disconnect lost-wakeup: the last
        /// sender's drop must not slip its notify into the window between
        /// a receiver's `senders > 0` check and its condvar park (the
        /// notify must be issued under the queue lock). On the buggy
        /// ordering a receiver parks forever, so the stress runs in a
        /// detached thread under a watchdog: a hang fails the test
        /// instead of wedging the suite.
        #[test]
        fn last_sender_drop_always_wakes_parked_receivers() {
            use std::sync::atomic::AtomicBool;
            use std::sync::Arc;

            let done = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&done);
            std::thread::spawn(move || {
                for i in 0..4000u32 {
                    let (tx, rx) = unbounded::<u8>();
                    let workers: Vec<_> = (0..3)
                        .map(|_| {
                            let rx = rx.clone();
                            std::thread::spawn(move || while rx.recv().is_ok() {})
                        })
                        .collect();
                    drop(rx);
                    // A burst keeps every receiver cycling pop → check →
                    // park while the disconnect lands; the drop is
                    // jittered so across iterations it hits every phase
                    // of that cycle, including the fatal check-then-park
                    // gap.
                    for _ in 0..24 {
                        tx.send(1).unwrap();
                    }
                    for _ in 0..(i % 61) {
                        std::hint::spin_loop();
                    }
                    drop(tx);
                    for w in workers {
                        w.join().unwrap();
                    }
                }
                flag.store(true, Ordering::SeqCst);
            });
            for _ in 0..600 {
                if done.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            panic!("a receiver missed the last-sender disconnect and parked forever");
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawns_and_joins() {
        let data = [1, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn nested_spawn_from_worker() {
        let n = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
