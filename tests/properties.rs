//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use webviews::prelude::*;

// ── generators ─────────────────────────────────────────────────────────

fn arb_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 <>&'\"]{0,24}"
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        arb_text().prop_map(Value::Text),
        "[a-z0-9/.]{1,20}".prop_map(|s| Value::Link(Url::new(s))),
        Just(Value::Null),
    ]
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    let cols = vec!["P.A".to_string(), "P.B".to_string(), "P.C".to_string()];
    proptest::collection::vec(proptest::collection::vec(arb_value(), 3), 0..12)
        .prop_map(move |rows| Relation::from_rows(cols.clone(), rows).unwrap())
}

// ── relation algebra laws ──────────────────────────────────────────────

proptest! {
    #[test]
    fn projection_is_idempotent(r in arb_relation()) {
        let p1 = r.project(&["P.A", "P.B"]).unwrap();
        let p2 = p1.project(&["P.A", "P.B"]).unwrap();
        prop_assert_eq!(p1.sorted(), p2.sorted());
    }

    #[test]
    fn selection_commutes(r in arb_relation(), x in arb_text(), y in arb_text()) {
        let vx = Value::text(x);
        let vy = Value::text(y);
        let ab = r.select_eq("P.A", &vx).unwrap().select_eq("P.B", &vy).unwrap();
        let ba = r.select_eq("P.B", &vy).unwrap().select_eq("P.A", &vx).unwrap();
        prop_assert_eq!(ab.sorted(), ba.sorted());
    }

    #[test]
    fn distinct_is_idempotent(r in arb_relation()) {
        let d = r.distinct();
        prop_assert_eq!(d.clone().distinct(), d);
    }

    #[test]
    fn union_is_commutative_after_sort(a in arb_relation(), b in arb_relation()) {
        let ab = a.union(&b).unwrap().sorted();
        let ba = b.union(&a).unwrap().sorted();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn minus_then_union_never_grows(a in arb_relation(), b in arb_relation()) {
        let diff = a.minus(&b).unwrap();
        prop_assert!(diff.len() <= a.len());
        // every row of the difference is a row of a
        for row in diff.rows() {
            prop_assert!(a.rows().contains(row));
        }
    }

    #[test]
    fn join_with_self_on_all_columns_is_dedup(r in arb_relation()) {
        // r ⋈ r on every column = distinct rows of r without nulls
        let r2 = Relation::from_rows(
            vec!["Q.A", "Q.B", "Q.C"],
            r.rows().to_vec(),
        ).unwrap();
        let j = r
            .join(&r2, &[("P.A", "Q.A"), ("P.B", "Q.B"), ("P.C", "Q.C")])
            .unwrap();
        let expected: std::collections::HashSet<&Vec<Value>> = r
            .rows()
            .iter()
            .filter(|row| row.iter().all(|v| !v.is_null()))
            .collect();
        let got: std::collections::HashSet<Vec<Value>> = j
            .rows()
            .iter()
            .map(|row| row[..3].to_vec())
            .collect();
        prop_assert_eq!(got.len(), expected.len());
    }
}

// ── wrapper round-trip on arbitrary flat pages ─────────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn wrapper_roundtrips_arbitrary_flat_pages(
        texts in proptest::collection::vec(arb_text(), 3)
    ) {
        let scheme = PageScheme::new(
            "P",
            vec![
                adm::Field::text("A"),
                adm::Field::text("B"),
                adm::Field::text("C"),
            ],
        ).unwrap();
        let tuple = Tuple::new()
            .with("A", texts[0].clone())
            .with("B", texts[1].clone())
            .with("C", texts[2].clone());
        let html = websim::page::render_page(&scheme, &tuple, "Arbitrary");
        let wrapped = wrap_page(&scheme, &html).unwrap();
        // rendering trims leading/trailing whitespace (as browsers do)
        for name in ["A", "B", "C"] {
            let original = tuple.get(name).unwrap().as_text().unwrap().trim();
            let got = wrapped.get(name).unwrap().as_text().unwrap();
            // internal whitespace runs may collapse through the DOM's
            // text-node handling; compare with normalized spaces
            let norm = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
            prop_assert_eq!(norm(original), norm(got));
        }
    }

    #[test]
    fn wrapper_roundtrips_lists(
        rows in proptest::collection::vec(arb_text(), 0..8)
    ) {
        let scheme = PageScheme::new(
            "P",
            vec![adm::Field::list("Items", vec![adm::Field::text("Name")])],
        ).unwrap();
        let tuple = Tuple::new().with_list(
            "Items",
            rows.iter().map(|t| Tuple::new().with("Name", t.clone())).collect(),
        );
        let html = websim::page::render_page(&scheme, &tuple, "List");
        let wrapped = wrap_page(&scheme, &html).unwrap();
        prop_assert_eq!(
            wrapped.get("Items").unwrap().as_list().unwrap().len(),
            rows.len()
        );
    }
}

// ── site-level invariants across random configurations ────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn generated_sites_always_satisfy_their_constraints(
        departments in 1usize..5,
        extra_profs in 0usize..12,
        courses in 1usize..30,
        seed in 0u64..1000,
    ) {
        let professors = departments + extra_profs;
        let u = University::generate(UniversityConfig {
            departments,
            professors,
            courses,
            seed,
            ..UniversityConfig::default()
        }).unwrap();
        prop_assert!(u.site.verify_constraints().is_empty());
        prop_assert_eq!(u.site.cardinality("CoursePage"), courses);
    }

    #[test]
    fn evaluation_cost_never_exceeds_site_size(
        seed in 0u64..500,
    ) {
        // with the page cache, downloads are bounded by the page count
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 12,
            seed,
            ..UniversityConfig::default()
        }).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let q = ConjunctiveQuery::new("q")
            .atom("CourseInstructor")
            .project((0, "PName"))
            .project((0, "CName"));
        let outcome = session.run(&q).unwrap();
        prop_assert!(outcome.downloads() as usize <= u.site.total_pages());
    }
}

// ── URL invariants ─────────────────────────────────────────────────────

proptest! {
    #[test]
    fn url_normalization_is_idempotent(s in "[a-zA-Z0-9/._-]{1,30}") {
        let u1 = Url::new(s);
        let u2 = Url::new(u1.as_str());
        prop_assert_eq!(u1, u2);
    }

    #[test]
    fn url_always_starts_with_slash(s in "[a-zA-Z0-9/._-]{0,30}") {
        prop_assert!(Url::new(s).as_str().starts_with('/'));
    }
}
