//! Observability invariants: tracing and EXPLAIN ANALYZE must be pure
//! observers. Attaching a sink — or running the fully-instrumented
//! `run_analyzed` path — may never change a query's answer, its page
//! accounting, or the plan the optimizer picks, sequentially or under a
//! concurrent fetch pool. Traces themselves must be deterministic: the
//! same seed over the same site yields the same span ids in the same
//! order, so CI can diff exported traces across runs.

use proptest::prelude::*;
use webviews::prelude::*;

// ── fixture workload ───────────────────────────────────────────────────
// The university queries mirror the E4/E6 harness workload; the
// bibliography queries mirror the E1 fixtures.

fn university_queries() -> Vec<ConjunctiveQuery> {
    vec![
        ConjunctiveQuery::new("full professors")
            .atom("Professor")
            .select((0, "Rank"), "Full")
            .project((0, "PName")),
        ConjunctiveQuery::new("fall graduate courses")
            .atom("Course")
            .select((0, "Session"), "Fall")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"))
            .project((0, "Description")),
        ConjunctiveQuery::new("who teaches what")
            .atom("CourseInstructor")
            .project((0, "PName"))
            .project((0, "CName")),
        ConjunctiveQuery::new("departments")
            .atom("Dept")
            .project((0, "DName"))
            .project((0, "Address")),
    ]
}

fn bibliography_queries() -> Vec<ConjunctiveQuery> {
    vec![
        ConjunctiveQuery::new("all conferences")
            .atom("Conference")
            .project((0, "ConfName")),
        ConjunctiveQuery::new("editors of VLDB 1996")
            .atom("ConfEdition")
            .select((0, "ConfName"), "VLDB")
            .select((0, "Year"), "1996")
            .project((0, "Editors")),
    ]
}

fn university(seed: u64, departments: usize, professors: usize, courses: usize) -> University {
    University::generate(UniversityConfig {
        departments,
        professors,
        courses,
        seed,
        ..UniversityConfig::default()
    })
    .expect("site generation")
}

/// Asserts that an analyzed (traced) outcome is byte-identical to a plain
/// untraced one: same rows, same counters, same per-operator accounting.
fn assert_counter_identical(plain: &QueryOutcome, analyzed: &AnalyzedOutcome) {
    let (p, a) = (&plain.report, &analyzed.outcome.report);
    assert_eq!(p.relation.clone().sorted(), a.relation.clone().sorted());
    assert_eq!(p.page_accesses, a.page_accesses);
    assert_eq!(p.cache_hits, a.cache_hits);
    assert_eq!(p.shared_cache_hits, a.shared_cache_hits);
    assert_eq!(p.broken_links, a.broken_links);
    assert_eq!(p.accesses_by_operator, a.accesses_by_operator);
    // and the join is total: observed pages re-derive the cost-model count
    assert_eq!(analyzed.analysis.observed_pages, a.cost_model_accesses());
    assert_eq!(
        analyzed.analysis.ops.len(),
        analyzed.outcome.explain.best().estimate.nodes.len()
    );
}

// ── traced ≡ untraced (property) ───────────────────────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Over arbitrary sites and workload queries, `run_analyzed` returns
    // the same relation and the same counters as `run` — sequentially
    // and under a 3-worker fetch pool.
    #[test]
    fn traced_equals_untraced_sequential_and_pooled(
        seed in 0u64..10_000,
        departments in 1usize..=3,
        professors in 3usize..=9,
        courses in 5usize..=15,
        qi in 0usize..4,
    ) {
        let u = university(seed, departments, professors, courses);
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let q = &university_queries()[qi];

        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let plain = session.run(q).unwrap();
        let analyzed = session.run_analyzed(q).unwrap();
        assert_counter_identical(&plain, &analyzed);

        let pooled = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .with_concurrent_fetch(3);
        let plain_pooled = pooled.run(q).unwrap();
        let analyzed_pooled = pooled.run_analyzed(q).unwrap();
        assert_counter_identical(&plain_pooled, &analyzed_pooled);

        // pooling itself is also answer- and accounting-preserving
        prop_assert_eq!(
            plain.report.relation.clone().sorted(),
            plain_pooled.report.relation.clone().sorted()
        );
        prop_assert_eq!(plain.report.page_accesses, plain_pooled.report.page_accesses);
    }
}

// ── trace determinism ──────────────────────────────────────────────────

#[test]
fn same_seed_traces_are_byte_identical_sequential() {
    for q in &university_queries() {
        let exports: Vec<String> = (0..2)
            .map(|_| {
                let u = university(11, 2, 6, 10);
                let stats = SiteStatistics::from_site(&u.site);
                let catalog = university_catalog();
                let source = LiveSource::for_site(&u.site);
                let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
                session.run_analyzed(q).unwrap().trace.export_jsonl()
            })
            .collect();
        assert!(!exports[0].is_empty());
        assert_eq!(exports[0], exports[1], "trace drift for {:?}", q.name);
    }
}

#[test]
fn same_seed_traces_are_deterministic_pooled() {
    // Under a pool, which worker lands each job is a scheduling race, so
    // the per-worker `jobs` split may differ run to run — but nothing
    // else may: span ids, ordering, operator counters, worker terminal
    // reasons, and the *total* job count are all pinned.
    let blank_jobs = |export: &str| -> (String, u64) {
        let mut total = 0;
        let blanked = export
            .lines()
            .map(|line| match line.find("\"jobs\":") {
                None => line.to_string(),
                Some(i) => {
                    let rest = &line[i + 7..];
                    let end = rest.find(',').unwrap_or(rest.len());
                    total += rest[..end].parse::<u64>().unwrap();
                    format!("{}\"jobs\":_{}", &line[..i], &rest[end..])
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        (blanked, total)
    };
    let q = &university_queries()[2]; // the join query exercises the pool most
    let exports: Vec<(String, u64)> = (0..2)
        .map(|_| {
            let u = university(11, 2, 6, 10);
            let stats = SiteStatistics::from_site(&u.site);
            let catalog = university_catalog();
            let source = LiveSource::for_site(&u.site);
            let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
                .with_concurrent_fetch(3);
            blank_jobs(&session.run_analyzed(q).unwrap().trace.export_jsonl())
        })
        .collect();
    assert!(!exports[0].0.is_empty());
    assert_eq!(exports[0].0, exports[1].0);
    assert_eq!(exports[0].1, exports[1].1, "total pooled jobs drifted");
}

// ── EXPLAIN ANALYZE over the fixture workloads ─────────────────────────

#[test]
fn explain_analyze_matches_untraced_runs_on_both_fixture_sites() {
    // university fixtures (E2–E6 shapes)
    let u = university(7, 3, 9, 15);
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    for q in &university_queries() {
        let plain = session.run(q).unwrap();
        let analyzed = session.run_analyzed(q).unwrap();
        assert_counter_identical(&plain, &analyzed);
        let render = analyzed.analysis.render();
        assert!(render.contains("operator"), "header missing:\n{render}");
        assert!(render.contains("total"), "total line missing:\n{render}");
        assert!(analyzed.analysis.worst_pages_ratio() >= 1.0);
    }

    // bibliography fixtures (E1 shapes)
    let b = Bibliography::generate(BibConfig {
        authors: 40,
        seed: 5,
        ..BibConfig::default()
    })
    .expect("bibliography site");
    let stats = SiteStatistics::from_site(&b.site);
    let catalog = bibliography_catalog();
    let source = LiveSource::for_site(&b.site);
    let session = QuerySession::new(&b.site.scheme, &catalog, &stats, &source);
    for q in &bibliography_queries() {
        let plain = session.run(q).unwrap();
        let analyzed = session.run_analyzed(q).unwrap();
        assert_counter_identical(&plain, &analyzed);
        assert!(!plain.report.relation.is_empty(), "{:?} empty", q.name);
    }
}

// ── incremental maintenance tracing ────────────────────────────────────

// Dataflow syncs are observer-pure too: attaching a trace sink to an
// `IncrementalView` changes neither the delta accounting nor the
// maintained answer, and two traced twins with the same sink seed export
// byte-identical `dataflow.sync` traces.
#[test]
fn dataflow_sync_traced_equals_untraced_with_byte_identical_exports() {
    let run = |trace_seed: Option<u64>| {
        let mut site = University::generate(UniversityConfig::default()).unwrap();
        let ws = site.site.scheme.clone();
        let sink = trace_seed.map(TraceSink::with_seed);
        let mut views = IncrementalView::new(&ws);
        if let Some(s) = &sink {
            views = views.with_trace(s.clone());
        }
        views.materialize(&site.site.server).unwrap();
        views.set_cursor(site.site.change_cursor());
        let profs = NalgExpr::entry("DeptListPage")
            .unnest("DeptList")
            .follow("ToDept", "DeptPage")
            .unnest("ProfList")
            .follow("ToProf", "ProfPage")
            .project(vec!["ProfPage.PName", "ProfPage.Rank"]);
        views
            .register("profs", "profs", &profs, &site.site.server)
            .unwrap();
        let plan = MutationPlan::new(5).with_rule(MutationRule::edit_attr("ProfPage", "Rank", 0.4));
        plan.apply_round(&mut site.site, 0).unwrap();
        let report = views.sync(&site.site).unwrap();
        (
            format!("{report:?}"),
            views.answer("profs").unwrap().sorted(),
            sink.map(|s| s.export_jsonl()),
        )
    };

    let plain = run(None);
    let traced = run(Some(31));
    let again = run(Some(31));
    assert_eq!(plain.0, traced.0, "tracing changed the delta accounting");
    assert_eq!(plain.1, traced.1, "tracing changed the maintained answer");
    let (e1, e2) = (traced.2.unwrap(), again.2.unwrap());
    assert!(e1.contains("dataflow.sync"), "sync span missing:\n{e1}");
    assert_eq!(e1, e2, "same-seed dataflow trace exports drifted");
}

// ── materialized sessions ──────────────────────────────────────────────

#[test]
fn matview_run_analyzed_is_counter_identical() {
    let u = university(13, 2, 6, 10);
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let mut store = MatStore::new();
    store.materialize(&u.site.scheme, &u.site.server).unwrap();
    let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
    let q = &university_queries()[0];
    let plain = session.run(&mut store, q).unwrap();
    let analyzed = session.run_analyzed(&mut store, q).unwrap();
    assert_eq!(
        plain.relation.clone().sorted(),
        analyzed.outcome.relation.clone().sorted()
    );
    assert_eq!(plain.counters, analyzed.outcome.counters);
    assert!(!analyzed.analysis.ops.is_empty());
}
