//! Property pin for the columnar evaluator (ISSUE 9): chunk-at-a-time
//! execution must be observationally identical to the row-at-a-time path
//! it replaced — same rows (after the canonical sort), same rendered
//! table bytes, and the same value for **every** access counter, because
//! the page-access counters are the paper's cost-model ground truth.
//!
//! The row path survives behind [`Evaluator::row_path`] exactly so this
//! test can keep pinning the equivalence on arbitrary seeded sites, for
//! the sequential evaluator, the 3-worker pooled evaluator, and both with
//! and without the shared page cache.

use proptest::prelude::*;
use webviews::nalg::SharedPageCache;
use webviews::prelude::*;

/// The three plan shapes the paper's experiments exercise: a pointer
/// chase through the department hierarchy, a pointer join intersecting
/// two navigation frontiers, and a flat scan-select-project.
fn plans() -> Vec<(&'static str, NalgExpr)> {
    let chase = NalgExpr::entry("DeptListPage")
        .unnest("DeptList")
        .select(Pred::eq("DeptListPage.DeptList.DName", "Computer Science"))
        .follow("ToDept", "DeptPage")
        .unnest("DeptPage.ProfList")
        .follow("DeptPage.ProfList.ToProf", "ProfPage")
        .unnest("ProfPage.CourseList")
        .follow("ProfPage.CourseList.ToCourse", "CoursePage")
        .select(Pred::eq("CoursePage.Type", "Graduate"))
        .project(vec!["ProfPage.PName", "ProfPage.Email"]);
    let prof_side = NalgExpr::entry("ProfListPage")
        .unnest("ProfList")
        .follow("ToProf", "ProfPage")
        .select(Pred::eq("ProfPage.Rank", "Full"))
        .unnest("ProfPage.CourseList");
    let session_side = NalgExpr::entry("SessionListPage")
        .unnest("SesList")
        .select(Pred::eq("SessionListPage.SesList.Session", "Fall"))
        .follow("ToSes", "SessionPage")
        .unnest("SessionPage.CourseList");
    let join = session_side
        .join(
            prof_side,
            vec![(
                "SessionPage.CourseList.ToCourse",
                "ProfPage.CourseList.ToCourse",
            )],
        )
        .follow("SessionPage.CourseList.ToCourse", "CoursePage")
        .project(vec!["CoursePage.CName", "CoursePage.Description"]);
    let scan = NalgExpr::entry("DeptListPage")
        .unnest("DeptList")
        .follow("ToDept", "DeptPage")
        .unnest("DeptPage.ProfList")
        .follow("DeptPage.ProfList.ToProf", "ProfPage")
        .project(vec!["ProfPage.PName", "ProfPage.Rank"]);
    vec![("chase", chase), ("join", join), ("scan", scan)]
}

/// Evaluates `expr` twice with identical configuration — columnar
/// (default) and row path — and asserts observational equivalence.
fn assert_paths_agree(
    site: &websim::Site,
    expr: &NalgExpr,
    label: &str,
    workers: usize,
    shared: bool,
) {
    let source = LiveSource::for_site(site);
    // Each path gets its own fresh shared cache: the cache is part of the
    // configuration under test, not state carried between the two runs.
    let col_cache = SharedPageCache::with_byte_budget(1 << 20);
    let row_cache = SharedPageCache::with_byte_budget(1 << 20);
    let mut col_eval = Evaluator::new(&site.scheme, &source).with_concurrent_fetch(workers);
    let mut row_eval = Evaluator::new(&site.scheme, &source)
        .with_concurrent_fetch(workers)
        .row_path();
    if shared {
        col_eval = col_eval.with_shared_cache(&col_cache);
        row_eval = row_eval.with_shared_cache(&row_cache);
    }
    let col = col_eval.eval(expr).expect("columnar eval");
    let row = row_eval.eval(expr).expect("row eval");

    let ctx = format!("{label} (workers={workers}, shared={shared})");
    prop_assert_eq!(
        col.relation.sorted(),
        row.relation.sorted(),
        "{}: rows diverged",
        &ctx
    );
    prop_assert_eq!(
        col.relation.to_table(),
        row.relation.to_table(),
        "{}: rendered tables diverged",
        &ctx
    );
    prop_assert_eq!(
        col.page_accesses,
        row.page_accesses,
        "{}: page_accesses",
        &ctx
    );
    prop_assert_eq!(col.cache_hits, row.cache_hits, "{}: cache_hits", &ctx);
    prop_assert_eq!(
        col.shared_cache_hits,
        row.shared_cache_hits,
        "{}: shared_cache_hits",
        &ctx
    );
    prop_assert_eq!(col.broken_links, row.broken_links, "{}: broken_links", &ctx);
    prop_assert_eq!(
        col.accesses_by_operator.clone(),
        row.accesses_by_operator.clone(),
        "{}: accesses_by_operator",
        &ctx
    );
    let sort_urls = |mut v: Vec<Url>| {
        v.sort();
        v
    };
    prop_assert_eq!(
        sort_urls(col.unreachable.clone()),
        sort_urls(row.unreachable.clone()),
        "{}: unreachable",
        &ctx
    );
}

// Columnar ≡ row on arbitrary seeded sites: every plan shape, the
// sequential and the 3-worker pooled evaluator, with and without the
// shared page cache.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn columnar_matches_row_path_on_seeded_sites(
        departments in 1usize..4,
        extra_profs in 0usize..8,
        courses in 2usize..16,
        seed in 0u64..10_000,
    ) {
        let u = University::generate(UniversityConfig {
            departments,
            professors: departments + extra_profs,
            courses,
            seed,
            ..UniversityConfig::default()
        }).unwrap();
        for (label, expr) in plans() {
            for workers in [1usize, 3] {
                for shared in [false, true] {
                    assert_paths_agree(&u.site, &expr, label, workers, shared);
                }
            }
        }
    }
}

/// The default-config site (the one every experiment uses) gets the same
/// pin deterministically, so a divergence fails fast even under
/// `proptest`-skipping test filters.
#[test]
fn columnar_matches_row_path_on_default_site() {
    let u = University::generate(UniversityConfig::default()).unwrap();
    for (label, expr) in plans() {
        for workers in [1usize, 3] {
            for shared in [false, true] {
                assert_paths_agree(&u.site, &expr, label, workers, shared);
            }
        }
    }
}
