//! Serving-layer equivalence and regression suite.
//!
//! The serving layer's contract is that it is invisible to the paper's
//! accounting: a Zipf-skewed concurrent run through the plan cache and
//! the single-flight fetch coalescer returns byte-identical rows and
//! identical per-session `page_accesses` to a sequential uncached run of
//! the same schedule. Coalescing may only shrink *server GET* counts —
//! never a session's page-access numbers (E1–E8 are coalescing-blind).
//! The drift regression pins the plan-cache/quarantine interaction: a
//! cached plan must never outlive the quarantine of a constraint it
//! depends on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;
use webviews::prelude::*;
use webviews::serve::QueryServer;

fn workload() -> Vec<ConjunctiveQuery> {
    vec![
        ConjunctiveQuery::new("full professors")
            .atom("Professor")
            .select((0, "Rank"), "Full")
            .project((0, "PName")),
        ConjunctiveQuery::new("CS professors")
            .atom("Professor")
            .atom("ProfDept")
            .join((0, "PName"), (1, "PName"))
            .select((1, "DName"), "Computer Science")
            .project((0, "PName"))
            .project((0, "Email")),
        ConjunctiveQuery::new("example 7.1")
            .atom("Professor")
            .atom("CourseInstructor")
            .atom("Course")
            .join((0, "PName"), (1, "PName"))
            .join((1, "CName"), (2, "CName"))
            .select((0, "Rank"), "Full")
            .select((2, "Session"), "Fall")
            .project((2, "CName"))
            .project((2, "Description")),
        ConjunctiveQuery::new("departments")
            .atom("Dept")
            .project((0, "DName"))
            .project((0, "Address")),
        ConjunctiveQuery::new("fall graduate courses")
            .atom("Course")
            .select((0, "Session"), "Fall")
            .select((0, "Type"), "Graduate")
            .project((0, "CName")),
    ]
}

/// One fixed university site + statistics + per-query oracle, shared by
/// every proptest case (generation is deterministic, so sharing is safe).
struct Fixture {
    site: University,
    stats: SiteStatistics,
    catalog: ViewCatalog,
    oracle: Vec<(Relation, u64)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let site = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&site.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&site.site);
        let oracle = workload()
            .iter()
            .map(|q| {
                let out = QuerySession::new(&site.site.scheme, &catalog, &stats, &source)
                    .run(q)
                    .unwrap();
                (out.report.relation.sorted(), out.report.page_accesses)
            })
            .collect();
        Fixture {
            site,
            stats,
            catalog,
            oracle,
        }
    })
}

/// A seeded Zipf-skewed schedule of query indices (rank r weighted 1/r).
fn zipf_schedule(seed: u64, n: usize, count: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 1..=n {
        total += 1.0 / rank as f64;
        cdf.push(total);
    }
    (0..count)
        .map(|_| {
            let x = rng.gen_range(0.0..total);
            cdf.iter().position(|&c| x < c).unwrap_or(n - 1)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Satellite pin: a concurrent, coalesced, plan-cached Zipf run is
    // byte-identical (rows and per-session page accesses) to the
    // sequential uncached oracle, for every schedule seed.
    #[test]
    fn concurrent_coalesced_serving_equals_sequential_uncached(seed in 0u64..500) {
        let f = fixture();
        let queries = workload();
        let schedule = zipf_schedule(seed, queries.len(), 24);
        let live = LiveSource::for_site(&f.site.site);
        let coalesced = nalg::CoalescingSource::new(&live);
        let server = QueryServer::new(&f.site.site.scheme, &f.catalog, &f.stats, &coalesced)
            .with_admission_capacity(4);
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let (server, schedule, queries, f) = (&server, &schedule, &queries, &f);
                scope.spawn(move || {
                    let mut i = w;
                    while i < schedule.len() {
                        let qi = schedule[i];
                        let out = server.serve(&queries[qi]).unwrap().outcome.unwrap();
                        assert_eq!(
                            out.report.relation.sorted(),
                            f.oracle[qi].0,
                            "rows diverged for {:?} (seed {seed})",
                            queries[qi].name
                        );
                        assert_eq!(
                            out.report.page_accesses,
                            f.oracle[qi].1,
                            "page accesses diverged for {:?} (seed {seed})",
                            queries[qi].name
                        );
                        i += 4;
                    }
                });
            }
        });
        let s = server.stats();
        prop_assert_eq!(s.requests, 24);
        prop_assert_eq!(s.shed, 0);
        // 24 requests over 5 distinct plans: the cache must be hitting.
        // (Concurrent cold lookups of one query may each miss, so the
        // floor is requests − queries×workers, not requests − queries.)
        prop_assert!(s.plan_cache.hits >= 24 - (queries.len() * 4) as u64);
        prop_assert_eq!(s.plan_cache.hits + s.plan_cache.misses, 24);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Tentpole pin: request-scoped tracing plus the flight recorder are
    // invisible to the paper's accounting. The same concurrent, coalesced,
    // plan-cached run — now fully observed — still matches the sequential
    // uncached oracle row for row and page for page, every request gets a
    // request id and a phase breakdown, the ids are unique, and every
    // request lands in the recorder's ring.
    #[test]
    fn traced_concurrent_serving_is_oracle_identical(seed in 0u64..500) {
        let f = fixture();
        let queries = workload();
        let schedule = zipf_schedule(seed, queries.len(), 24);
        let live = LiveSource::for_site(&f.site.site);
        let coalesced = nalg::CoalescingSource::new(&live);
        let recorder = FlightRecorder::with_capacity(32, 4);
        let server = QueryServer::new(&f.site.site.scheme, &f.catalog, &f.stats, &coalesced)
            .with_admission_capacity(4)
            .with_trace(seed)
            .with_flight_recorder(&recorder);
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let (server, schedule, queries, f) = (&server, &schedule, &queries, &f);
                scope.spawn(move || {
                    let mut i = w;
                    while i < schedule.len() {
                        let qi = schedule[i];
                        let out = server.serve(&queries[qi]).unwrap();
                        assert!(out.request_id.is_some(), "traced serve lost its id");
                        assert!(out.phases.is_some(), "traced serve lost its phases");
                        let o = out.outcome.unwrap();
                        assert_eq!(
                            o.report.relation.sorted(),
                            f.oracle[qi].0,
                            "rows diverged under tracing for {:?} (seed {seed})",
                            queries[qi].name
                        );
                        assert_eq!(
                            o.report.page_accesses,
                            f.oracle[qi].1,
                            "page accesses diverged under tracing for {:?} (seed {seed})",
                            queries[qi].name
                        );
                        i += 4;
                    }
                });
            }
        });
        let recorded = recorder.recent();
        prop_assert_eq!(recorded.len(), 24);
        let ids: std::collections::HashSet<u64> =
            recorded.iter().map(|t| t.request_id).collect();
        prop_assert_eq!(ids.len(), 24, "request ids must be unique");
    }
}

// Tracing is GET-invisible: the same sequential schedule issues exactly
// the same server GETs traced and untraced, returns the same answers —
// and two traced runs with the same seed export byte-identical causal
// traces (the CI diffable artifact).
#[test]
fn tracing_is_get_invisible_and_same_seed_exports_are_byte_identical() {
    // A private site: this test reads the server's GET counters.
    let u = University::generate(UniversityConfig::default()).unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let queries = workload();
    let schedule = zipf_schedule(9, queries.len(), 12);

    let run = |trace: bool| {
        let live = LiveSource::for_site(&u.site);
        let coalesced = CoalescingSource::new(&live);
        let recorder = FlightRecorder::with_capacity(16, 4);
        let mut server = QueryServer::new(&u.site.scheme, &catalog, &stats, &coalesced);
        if trace {
            server = server.with_trace(77).with_flight_recorder(&recorder);
        }
        u.site.server.reset_stats();
        let answers: Vec<(Relation, u64)> = schedule
            .iter()
            .map(|&qi| {
                let o = server.serve(&queries[qi]).unwrap().outcome.unwrap();
                (o.report.relation.sorted(), o.report.page_accesses)
            })
            .collect();
        let causal: String = recorder.recent().iter().map(|t| t.causal_jsonl()).collect();
        (answers, u.site.server.stats().gets, causal)
    };

    let plain = run(false);
    let traced = run(true);
    let again = run(true);
    assert_eq!(plain.0, traced.0, "tracing changed an answer");
    assert_eq!(plain.1, traced.1, "tracing changed the server GET count");
    assert!(!traced.2.is_empty());
    assert_eq!(traced.2, again.2, "same-seed causal exports drifted");
}

// Concurrent determinism: with the plan cache warmed (so hit/miss is not
// a scheduling race), two same-seed concurrent runs export byte-identical
// causal traces once sorted by request id — the ids are seeded from
// (query, occurrence), not from thread interleaving, and the racy fetch
// attribution lives in the separate `fetch_events` stream.
#[test]
fn concurrent_same_seed_causal_traces_are_byte_identical() {
    let f = fixture();
    let queries = workload();
    let schedule = zipf_schedule(21, queries.len(), 24);

    let export = || {
        let live = LiveSource::for_site(&f.site.site);
        let coalesced = nalg::CoalescingSource::new(&live);
        let recorder = FlightRecorder::with_capacity(64, 4);
        let server = QueryServer::new(&f.site.site.scheme, &f.catalog, &f.stats, &coalesced)
            .with_admission_capacity(4)
            .with_trace(5)
            .with_flight_recorder(&recorder);
        for q in &queries {
            server.serve(q).unwrap();
        }
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let (server, schedule, queries) = (&server, &schedule, &queries);
                scope.spawn(move || {
                    let mut i = w;
                    while i < schedule.len() {
                        server.serve(&queries[schedule[i]]).unwrap();
                        i += 4;
                    }
                });
            }
        });
        let mut traces = recorder.recent();
        traces.sort_by_key(|t| t.request_id);
        traces.iter().map(|t| t.causal_jsonl()).collect::<String>()
    };

    let a = export();
    let b = export();
    assert!(a.contains("serve.request"));
    assert_eq!(a, b, "concurrent same-seed causal exports drifted");
}

// Coalescing-blind pin on one hot query: many concurrent sessions, every
// session's page accesses equal the oracle's, while the server sees at
// most the sequential GET count (single-flight can only remove GETs).
#[test]
fn coalescing_never_changes_page_accesses_and_only_removes_gets() {
    // A private site: this test reads the server's GET counters, which
    // the shared fixture's concurrent tests would pollute.
    let u = University::generate(UniversityConfig::default()).unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let q = &workload()[1]; // CS professors: a multi-page navigation

    let live = LiveSource::for_site(&u.site);
    let oracle = {
        let out = QuerySession::new(&u.site.scheme, &catalog, &stats, &live)
            .run(q)
            .unwrap();
        (out.report.relation.sorted(), out.report.page_accesses)
    };
    u.site.server.reset_stats();
    QuerySession::new(&u.site.scheme, &catalog, &stats, &live)
        .run(q)
        .unwrap();
    let sequential_gets = u.site.server.stats().gets;

    u.site
        .server
        .set_latency(std::time::Duration::from_millis(1));
    u.site.server.reset_stats();
    let coalesced = nalg::CoalescingSource::new(&live);
    let server =
        QueryServer::new(&u.site.scheme, &catalog, &stats, &coalesced).with_admission_capacity(6);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let (server, oracle) = (&server, &oracle);
            scope.spawn(move || {
                let out = server.serve(q).unwrap().outcome.unwrap();
                assert_eq!(out.report.relation.sorted(), oracle.0);
                assert_eq!(out.report.page_accesses, oracle.1);
            });
        }
    });
    u.site.server.set_latency(std::time::Duration::ZERO);
    let served_gets = u.site.server.stats().gets;
    assert!(
        served_gets <= 6 * sequential_gets,
        "coalescing can only remove GETs: {served_gets} > 6×{sequential_gets}"
    );
    let c = coalesced.stats();
    assert_eq!(
        served_gets,
        6 * sequential_gets - c.saved_gets(),
        "every saved GET is an accounted follower"
    );
}

// Drift regression: quarantining a constraint must invalidate every
// cached plan that depended on it — a re-query after drift is detected
// never answers from the stale plan.
#[test]
fn quarantine_invalidates_dependent_cached_plans() {
    let mut site = University::generate(UniversityConfig::default()).unwrap();
    // The optimizer's knowledge predates the drift.
    let stats = SiteStatistics::from_site(&site.site);
    let catalog = university_catalog();
    let q = ConjunctiveQuery::new("cs-dept")
        .atom("Dept")
        .select((0, "DName"), "Computer Science")
        .project((0, "Address"));

    // Pristine phase: the constraint-licensed plan answers and is cached.
    let health = ConstraintHealth::new();
    {
        let source = LiveSource::for_site(&site.site);
        let server = QueryServer::new(&site.site.scheme, &catalog, &stats, &source)
            .with_audit(1.0, 7)
            .with_constraint_health(&health);
        let cold = server.serve(&q).unwrap();
        assert!(!cold.cached_plan && !cold.outcome.as_ref().unwrap().fell_back());
        assert!(
            server.serve(&q).unwrap().cached_plan,
            "plan cached while healthy"
        );
    }

    // The site drifts under the cached plan's feet.
    DriftPlan::new(3)
        .with_rule(DriftRule::perturb_attr("DeptPage", "DName", 1.0))
        .apply(&mut site.site)
        .unwrap();
    let source = LiveSource::for_site(&site.site);
    let server = QueryServer::new(&site.site.scheme, &catalog, &stats, &source)
        .with_audit(1.0, 7)
        .with_constraint_health(&health);

    // Ground truth on the drifted site: the default navigation.
    let naive = QuerySession::new(&site.site.scheme, &catalog, &stats, &source)
        .with_mask(RuleMask::none())
        .run(&q)
        .unwrap();

    // Post-drift serve 1: the audit catches the violation, the answer
    // falls back (correct), and the poisoned plan is dropped — it is
    // NOT left in the cache.
    let caught = server.serve(&q).unwrap();
    let out = caught.outcome.as_ref().unwrap();
    assert!(out.fell_back(), "full audit must catch the drifted anchor");
    assert_eq!(
        out.report.relation.sorted(),
        naive.report.relation.sorted(),
        "fallback answers like the default navigation"
    );
    assert!(!health.quarantined().is_empty(), "violation quarantines");

    // Post-drift serve 2: the quarantine changed the cache key space and
    // bars the constraint, so this is a fresh optimization (never the
    // stale plan) to a constraint-free plan that answers correctly
    // without falling back.
    let clean = server.serve(&q).unwrap();
    assert!(
        !clean.cached_plan,
        "stale pre-quarantine plan must not serve"
    );
    let out = clean.outcome.as_ref().unwrap();
    assert!(
        !out.fell_back(),
        "quarantine steers around the bad constraint"
    );
    assert_eq!(out.report.relation.sorted(), naive.report.relation.sorted());

    // ...and the constraint-free plan is cacheable like any other.
    assert!(server.serve(&q).unwrap().cached_plan);
}

// Statistics recollection on a live server: the epoch bump invalidates
// every cached plan exactly once, and serving continues correctly.
#[test]
fn recollection_is_a_single_epoch_invalidation() {
    let f = fixture();
    let fresh = SiteStatistics::from_site(&f.site.site);
    let live = LiveSource::for_site(&f.site.site);
    let server = QueryServer::new(&f.site.site.scheme, &f.catalog, &f.stats, &live);
    let queries = workload();
    for q in &queries {
        server.serve(q).unwrap();
    }
    assert_eq!(server.stats().plan_cache.entries, queries.len());
    assert_eq!(server.recollect_statistics(&fresh), 1);
    let s = server.stats();
    assert_eq!(s.plan_cache.entries, 0, "every plan belonged to epoch 0");
    assert_eq!(s.plan_cache.invalidations, queries.len() as u64);
    for (i, q) in queries.iter().enumerate() {
        let out = server.serve(q).unwrap();
        assert!(!out.cached_plan);
        let o = out.outcome.unwrap();
        assert_eq!(o.report.relation.sorted(), f.oracle[i].0);
        assert_eq!(o.report.page_accesses, f.oracle[i].1);
    }
}
