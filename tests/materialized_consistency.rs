//! Soak test for lazy materialized-view maintenance: after an arbitrary
//! interleaving of site mutations and queries, answers always match the
//! live-site oracle, and a final full refresh converges the store.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webviews::matview::maintain;
use webviews::prelude::*;

fn grad_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new("grad")
        .atom("Course")
        .select((0, "Type"), "Graduate")
        .project((0, "CName"))
}

fn oracle(u: &University) -> std::collections::BTreeSet<String> {
    u.expected_course()
        .into_iter()
        .filter(|(_, _, _, t)| t == "Graduate")
        .map(|(c, _, _, _)| c)
        .collect()
}

#[test]
fn interleaved_mutations_and_queries_stay_correct() {
    let mut u = University::generate(UniversityConfig {
        departments: 3,
        professors: 9,
        courses: 15,
        seed: 777,
        ..UniversityConfig::default()
    })
    .unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let mut store = MatStore::new();
    store.materialize(&u.site.scheme, &u.site.server).unwrap();

    let mut rng = StdRng::seed_from_u64(42);
    for round in 0..25 {
        // one random mutation
        match rng.gen_range(0..4) {
            0 => {
                let ids = u.course_ids();
                let id = ids[rng.gen_range(0..ids.len())];
                u.update_course_description(id, format!("round {round}"))
                    .unwrap();
            }
            1 => {
                let prof = rng.gen_range(0..u.prof_count());
                let session = ["Fall", "Winter", "Summer"][rng.gen_range(0..3)];
                let ty = if rng.gen_bool(0.5) {
                    "Graduate"
                } else {
                    "Undergraduate"
                };
                u.add_course(prof, session, ty).unwrap();
            }
            2 => {
                let ids = u.course_ids();
                if ids.len() > 3 {
                    let id = ids[rng.gen_range(0..ids.len())];
                    u.remove_course(id).unwrap();
                }
            }
            _ => {
                let prof = rng.gen_range(0..u.prof_count());
                u.update_prof_email(prof, Some(format!("r{round}@uni.example")))
                    .unwrap();
            }
        }
        // query through the materialized view; answer must match the live
        // oracle (Algorithm 3 guarantees correct answers)
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &grad_query()).unwrap();
        let got: std::collections::BTreeSet<String> = out
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(got, oracle(&u), "divergence at round {round}");
    }

    // the off-line sweep plus a periodic full refresh converge the store
    maintain::purge_missing(&mut store, &u.site.server);
    maintain::full_refresh(&mut store, &u.site.scheme, &u.site.server).unwrap();
    assert!(maintain::audit(&store, &u.site).is_empty());
}

#[test]
fn lazy_traffic_is_proportional_to_change() {
    let mut u = University::generate(UniversityConfig::default()).unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let mut store = MatStore::new();
    store.materialize(&u.site.scheme, &u.site.server).unwrap();

    // k updated course pages → exactly k downloads on the next
    // course-touching query
    for k in [0usize, 2, 5] {
        let mut changed = 0;
        for id in u.course_ids().into_iter().take(k) {
            u.update_course_description(id, format!("k={k}")).unwrap();
            changed += 1;
        }
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &grad_query()).unwrap();
        assert_eq!(out.counters.downloads as usize, changed, "k={k}");
    }
}

#[test]
fn queries_against_untouched_schemes_cost_nothing_extra() {
    let mut u = University::generate(UniversityConfig::default()).unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let mut store = MatStore::new();
    store.materialize(&u.site.scheme, &u.site.server).unwrap();

    // mutate professor pages only
    for i in 0..5 {
        u.update_prof_email(i, Some(format!("x{i}@uni.example")))
            .unwrap();
    }
    // a department query never visits professor pages
    let q = ConjunctiveQuery::new("depts")
        .atom("Dept")
        .project((0, "DName"))
        .project((0, "Address"));
    let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
    let out = session.run(&mut store, &q).unwrap();
    assert_eq!(out.counters.downloads, 0);
}
