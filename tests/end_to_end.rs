//! Cross-crate integration: SQL text → parser → optimizer → navigation →
//! wrapped pages → relational answer, verified against generator oracles.

use webviews::prelude::*;

fn university() -> University {
    University::generate(UniversityConfig {
        departments: 3,
        professors: 12,
        courses: 30,
        seed: 2024,
        ..UniversityConfig::default()
    })
    .unwrap()
}

#[test]
fn sql_to_answer_on_university() {
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);

    let q = parse_query(
        "SELECT c.CName FROM Course c WHERE c.Session = 'Winter' AND c.Type = 'Graduate'",
        &catalog,
    )
    .unwrap();
    let outcome = session.run(&q).unwrap();
    let expected: std::collections::HashSet<String> = u
        .expected_course()
        .into_iter()
        .filter(|(_, s, _, t)| s == "Winter" && t == "Graduate")
        .map(|(c, _, _, _)| c)
        .collect();
    let got: std::collections::HashSet<String> = outcome
        .report
        .relation
        .rows()
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn three_way_join_via_sql() {
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);

    let q = parse_query(
        "SELECT c.CName, Description \
         FROM Professor p, CourseInstructor ci, Course c \
         WHERE p.PName = ci.PName AND ci.CName = c.CName \
           AND p.Rank = 'Full' AND c.Session = 'Fall'",
        &catalog,
    )
    .unwrap();
    let outcome = session.run(&q).unwrap();

    let full: std::collections::HashSet<String> = u
        .expected_professor()
        .into_iter()
        .filter(|(_, r, _)| r == "Full")
        .map(|(n, _, _)| n)
        .collect();
    let instr: std::collections::HashMap<String, String> =
        u.expected_course_instructor().into_iter().collect();
    let expected: std::collections::HashSet<String> = u
        .expected_course()
        .into_iter()
        .filter(|(cn, s, _, _)| s == "Fall" && full.contains(&instr[cn]))
        .map(|(cn, _, _, _)| cn)
        .collect();
    let got: std::collections::HashSet<String> = outcome
        .report
        .relation
        .rows()
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn all_plans_agree_on_the_answer() {
    // Every candidate plan, executed, returns the same set of rows for
    // the projected attributes (plans are rewrites of one query).
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    let q = parse_query(
        "SELECT p.PName FROM Professor p, ProfDept d \
         WHERE p.PName = d.PName AND d.DName = 'Mathematics'",
        &catalog,
    )
    .unwrap();
    let explain = session.explain(&q).unwrap();
    assert!(explain.candidates.len() >= 2);
    let mut answers: Vec<std::collections::BTreeSet<String>> = Vec::new();
    for cand in &explain.candidates {
        let report = session.execute(&cand.expr).unwrap();
        // plans may differ in the *name* of the projected column (rule 7
        // rewrites onto anchors) but not in its values
        let ans: std::collections::BTreeSet<String> = report
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        answers.push(ans);
    }
    for a in &answers[1..] {
        assert_eq!(a, &answers[0]);
    }
}

#[test]
fn cheapest_plan_is_also_cheapest_measured() {
    // The optimizer's ranking must be consistent with measured accesses on
    // the default university site for the paper queries.
    let u = University::generate(UniversityConfig::default()).unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    let q = parse_query(
        "SELECT p.PName, p.Email \
         FROM Course c, CourseInstructor ci, Professor p, ProfDept d \
         WHERE c.CName = ci.CName AND ci.PName = p.PName AND p.PName = d.PName \
           AND d.DName = 'Computer Science' AND c.Type = 'Graduate'",
        &catalog,
    )
    .unwrap();
    let explain = session.explain(&q).unwrap();
    let best_measured = session
        .execute(&explain.best().expr)
        .unwrap()
        .cost_model_accesses();
    let worst = explain.candidates.last().unwrap();
    let worst_measured = session.execute(&worst.expr).unwrap().cost_model_accesses();
    assert!(
        best_measured <= worst_measured,
        "best {best_measured} vs worst {worst_measured}"
    );
}

#[test]
fn bibliography_sql_round_trip() {
    let bib = Bibliography::generate(BibConfig {
        authors: 50,
        conferences: 8,
        db_conferences: 3,
        featured: 2,
        editions_per_conf: 4,
        papers_per_edition: 6,
        seed: 9,
        ..BibConfig::default()
    })
    .unwrap();
    let stats = SiteStatistics::from_site(&bib.site);
    let catalog = bibliography_catalog();
    let source = LiveSource::for_site(&bib.site);
    let session = QuerySession::new(&bib.site.scheme, &catalog, &stats, &source);
    let q = parse_query(
        "SELECT Editors FROM ConfEdition WHERE ConfName = 'VLDB' AND Year = 1995",
        &catalog,
    )
    .unwrap();
    let outcome = session.run(&q).unwrap();
    assert_eq!(outcome.report.relation.len(), 1);
    assert_eq!(
        outcome.report.relation.rows()[0][0].as_text().unwrap(),
        bib.expected_editors(0, 1995)
    );
    // redundancy exploited: no edition page fetched
    assert!(outcome.measured_pages() <= 3);
}

#[test]
fn incomplete_navigations_excluded_by_default() {
    // AuthorPub has two designer-declared incomplete navigations (via the
    // database-conference list and the featured links). Unless explicitly
    // allowed, no candidate plan may use them — they would silently drop
    // answers for non-database conferences.
    let bib = Bibliography::generate(BibConfig {
        authors: 40,
        conferences: 6,
        db_conferences: 2,
        featured: 1,
        editions_per_conf: 3,
        papers_per_edition: 5,
        seed: 77,
        ..BibConfig::default()
    })
    .unwrap();
    let stats = SiteStatistics::from_site(&bib.site);
    let catalog = bibliography_catalog();
    let source = LiveSource::for_site(&bib.site);
    // a query about a NON-database conference (index ≥ db_conferences)
    let q = ConjunctiveQuery::new("icde authors")
        .atom("AuthorPub")
        .select((0, "ConfName"), "ICDE")
        .select((0, "Year"), "1997")
        .project((0, "AName"));

    let strict = QuerySession::new(&bib.site.scheme, &catalog, &stats, &source);
    let explain = strict.explain(&q).unwrap();
    for c in &explain.candidates {
        let t = nalg::display::tree(&c.expr);
        assert!(
            !t.contains("DBConfListPage") && !t.contains("Featured"),
            "incomplete navigation leaked into a default plan:\n{t}"
        );
    }
    // and the strict answer is complete (ICDE is NOT in the DB list here,
    // conference names order: VLDB, SIGMOD | PODS, ICDE, …)
    let outcome = strict.run(&q).unwrap();
    assert!(!outcome.report.relation.is_empty());

    // with incomplete navigations allowed, the optimizer may choose the
    // cheaper subset path — which would be WRONG for this query; the
    // designer enables them only for queries inside their coverage.
    let lax = QuerySession::new(&bib.site.scheme, &catalog, &stats, &source)
        .allow_incomplete_navigations();
    let lax_outcome = lax.run(&q).unwrap();
    assert!(
        lax_outcome.report.relation.len() <= outcome.report.relation.len(),
        "subset path cannot return more answers"
    );
}

#[test]
fn evaluation_uses_real_http_and_wrapping() {
    // The whole pipeline goes through the virtual server: the GET counter
    // must match the evaluator's download count.
    let u = university();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    u.site.server.reset_stats();
    let q = parse_query("SELECT PName FROM Professor WHERE Rank = 'Full'", &catalog).unwrap();
    let outcome = session.run(&q).unwrap();
    assert_eq!(u.site.server.stats().gets, outcome.downloads());
    assert!(outcome.downloads() > 0);
}
