//! Property pins for deadline propagation and hedged fetches (ISSUE 10):
//! the robustness machinery must be a strict no-op on the paper's
//! numbers whenever it does not fire.
//!
//! Two pins on arbitrary seeded sites:
//!
//! 1. **Inert plumbing** — an evaluator carrying an *infinite* deadline
//!    and a live cancel token (but no hedging) is observationally
//!    identical to the plain evaluator: same rows, same rendered table,
//!    and the same value for every access counter. The budgeted drain
//!    only diverges from the pre-budget submit/recv loop when a finite
//!    deadline or a hedge config is present — this pin holds that door
//!    shut.
//!
//! 2. **Hedge invisibility** — with hedging enabled under latency-only
//!    chaos (seeded slowdowns that never change bytes), the answer and
//!    `page_accesses` still match the chaos-free plain run exactly:
//!    backup GETs are charged to the hedge counters, never to the
//!    paper's cost model, and whichever twin wins carries the same
//!    bytes.

use proptest::prelude::*;
use webviews::nalg::HedgeConfig;
use webviews::obs::{CancelToken, Deadline};
use webviews::prelude::*;

/// The same three plan shapes the columnar pin exercises: a pointer
/// chase, a pointer join, and a flat scan.
fn plans() -> Vec<(&'static str, NalgExpr)> {
    let chase = NalgExpr::entry("DeptListPage")
        .unnest("DeptList")
        .select(Pred::eq("DeptListPage.DeptList.DName", "Computer Science"))
        .follow("ToDept", "DeptPage")
        .unnest("DeptPage.ProfList")
        .follow("DeptPage.ProfList.ToProf", "ProfPage")
        .unnest("ProfPage.CourseList")
        .follow("ProfPage.CourseList.ToCourse", "CoursePage")
        .select(Pred::eq("CoursePage.Type", "Graduate"))
        .project(vec!["ProfPage.PName", "ProfPage.Email"]);
    let prof_side = NalgExpr::entry("ProfListPage")
        .unnest("ProfList")
        .follow("ToProf", "ProfPage")
        .select(Pred::eq("ProfPage.Rank", "Full"))
        .unnest("ProfPage.CourseList");
    let session_side = NalgExpr::entry("SessionListPage")
        .unnest("SesList")
        .select(Pred::eq("SessionListPage.SesList.Session", "Fall"))
        .follow("ToSes", "SessionPage")
        .unnest("SessionPage.CourseList");
    let join = session_side
        .join(
            prof_side,
            vec![(
                "SessionPage.CourseList.ToCourse",
                "ProfPage.CourseList.ToCourse",
            )],
        )
        .follow("SessionPage.CourseList.ToCourse", "CoursePage")
        .project(vec!["CoursePage.CName", "CoursePage.Description"]);
    let scan = NalgExpr::entry("DeptListPage")
        .unnest("DeptList")
        .follow("ToDept", "DeptPage")
        .unnest("DeptPage.ProfList")
        .follow("DeptPage.ProfList.ToProf", "ProfPage")
        .project(vec!["ProfPage.PName", "ProfPage.Rank"]);
    vec![("chase", chase), ("join", join), ("scan", scan)]
}

/// Pin 1 body: plain vs infinite-deadline-plus-token, every counter.
fn assert_inert_budget_is_identity(
    site: &websim::Site,
    expr: &NalgExpr,
    label: &str,
    workers: usize,
) {
    let source = LiveSource::for_site(site);
    let plain = {
        let mut ev = Evaluator::new(&site.scheme, &source);
        if workers > 1 {
            ev = ev.with_concurrent_fetch(workers);
        }
        ev.eval(expr).expect("plain eval")
    };
    let budgeted = {
        let mut ev = Evaluator::new(&site.scheme, &source)
            .with_deadline(Deadline::infinite())
            .with_cancel_token(CancelToken::new());
        if workers > 1 {
            ev = ev.with_concurrent_fetch(workers);
        }
        ev.eval(expr).expect("budgeted eval")
    };
    let ctx = format!("{label} (workers={workers})");
    assert_eq!(
        budgeted.relation.sorted(),
        plain.relation.sorted(),
        "{ctx}: rows diverged"
    );
    assert_eq!(
        budgeted.relation.to_table(),
        plain.relation.to_table(),
        "{ctx}: rendered tables diverged"
    );
    assert_eq!(
        budgeted.page_accesses, plain.page_accesses,
        "{ctx}: page_accesses"
    );
    assert_eq!(budgeted.cache_hits, plain.cache_hits, "{ctx}: cache_hits");
    assert_eq!(
        budgeted.broken_links, plain.broken_links,
        "{ctx}: broken_links"
    );
    assert_eq!(
        budgeted.accesses_by_operator, plain.accesses_by_operator,
        "{ctx}: accesses_by_operator"
    );
    assert_eq!(
        budgeted.unreachable, plain.unreachable,
        "{ctx}: unreachable"
    );
    assert!(!budgeted.deadline_exceeded, "{ctx}: phantom brown-out");
    assert!(budgeted.cancelled.is_empty(), "{ctx}: phantom cancellation");
    assert!(budgeted.is_complete(), "{ctx}: must be complete");
}

/// Pin 2 body: hedging under latency-only chaos vs the chaos-free plain
/// run — rows and the paper's counters must be untouched; only the
/// hedge counters may move.
fn assert_hedging_is_paper_blind(site: &websim::Site, expr: &NalgExpr, label: &str, seed: u64) {
    let source = LiveSource::for_site(site);
    let plain = Evaluator::new(&site.scheme, &source)
        .eval(expr)
        .expect("plain eval");
    site.server.set_latency_profile(websim::LatencyProfile {
        floor_us: 50,
        tail_us: 2_000,
        tail_rate: 0.25,
        seed,
    });
    let cfg = HedgeConfig::new(300);
    let hedged = Evaluator::new(&site.scheme, &source)
        .with_concurrent_fetch(3)
        .with_hedging(cfg.clone())
        .eval(expr)
        .expect("hedged eval");
    site.server.clear_latency_profile();
    let ctx = format!("{label} (seed={seed})");
    assert_eq!(
        hedged.relation.sorted(),
        plain.relation.sorted(),
        "{ctx}: hedging changed rows"
    );
    assert_eq!(
        hedged.page_accesses, plain.page_accesses,
        "{ctx}: a hedge twin was charged to page_accesses"
    );
    assert_eq!(
        hedged.accesses_by_operator, plain.accesses_by_operator,
        "{ctx}: per-operator accesses moved under hedging"
    );
    assert!(hedged.is_complete(), "{ctx}: slowdowns are not failures");
    assert!(
        hedged.unreachable.is_empty() && hedged.cancelled.is_empty(),
        "{ctx}: hedging must not mark pages missing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn inert_budget_plumbing_is_byte_identical(
        departments in 1usize..4,
        extra_profs in 0usize..8,
        courses in 2usize..16,
        seed in 0u64..10_000,
    ) {
        let u = University::generate(UniversityConfig {
            departments,
            professors: departments + extra_profs,
            courses,
            seed,
            ..UniversityConfig::default()
        }).unwrap();
        for (label, expr) in plans() {
            for workers in [1usize, 3] {
                assert_inert_budget_is_identity(&u.site, &expr, label, workers);
            }
        }
    }

    #[test]
    fn hedging_under_latency_chaos_never_changes_rows(
        departments in 1usize..4,
        courses in 2usize..12,
        seed in 0u64..10_000,
    ) {
        let u = University::generate(UniversityConfig {
            departments,
            professors: departments + 3,
            courses,
            seed,
            ..UniversityConfig::default()
        }).unwrap();
        for (label, expr) in plans() {
            assert_hedging_is_paper_blind(&u.site, &expr, label, seed);
        }
    }
}

/// The default-config site gets both pins deterministically, so a
/// divergence fails fast even under proptest-skipping test filters.
#[test]
fn deadline_pins_hold_on_default_site() {
    let u = University::generate(UniversityConfig::default()).unwrap();
    for (label, expr) in plans() {
        for workers in [1usize, 3] {
            assert_inert_budget_is_identity(&u.site, &expr, label, workers);
        }
        assert_hedging_is_paper_blind(&u.site, &expr, label, 7);
    }
}
