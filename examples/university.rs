//! The paper's Section 7 worked examples, end to end: pointer join
//! (Example 7.1) versus pointer chase (Example 7.2).
//!
//! ```sh
//! cargo run --example university
//! ```

use webviews::prelude::*;

fn run_and_report(
    title: &str,
    session: &QuerySession<'_, LiveSource<'_>>,
    server: &VirtualServer,
    q: &ConjunctiveQuery,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("══ {title} ══\n");
    server.reset_stats();
    let outcome = session.run(q)?;
    println!("{}", outcome.explain.report());
    println!(
        "chosen plan: estimated {:.1} pages, measured {} accesses, {} downloads",
        outcome.estimated_pages(),
        outcome.measured_pages(),
        outcome.downloads()
    );
    println!(
        "answer ({} rows):\n{}",
        outcome.report.relation.len(),
        outcome.report.relation.to_table()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's parameters: 50 courses, 20 professors, 3 departments.
    let u = University::generate(UniversityConfig::default())?;
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);

    // Example 7.1 — "Name and Description of courses taught by full
    // professors in the Fall session". Pointer-JOIN wins: intersect the
    // two pointer sets, then navigate only the result.
    let q71 = ConjunctiveQuery::new("Example 7.1")
        .atom("Professor")
        .atom("CourseInstructor")
        .atom("Course")
        .join((0, "PName"), (1, "PName"))
        .join((1, "CName"), (2, "CName"))
        .select((0, "Rank"), "Full")
        .select((2, "Session"), "Fall")
        .project((2, "CName"))
        .project((2, "Description"));
    run_and_report("Example 7.1 (pointer join)", &session, &u.site.server, &q71)?;

    // Example 7.2 — "Name and Email of professors in the Computer Science
    // Department who teach Graduate courses". Pointer-CHASE wins: there is
    // no cheap access structure for graduate courses, but following links
    // from the CS department page is highly selective.
    let q72 = ConjunctiveQuery::new("Example 7.2")
        .atom("Course")
        .atom("CourseInstructor")
        .atom("Professor")
        .atom("ProfDept")
        .join((0, "CName"), (1, "CName"))
        .join((1, "PName"), (2, "PName"))
        .join((2, "PName"), (3, "PName"))
        .select((3, "DName"), "Computer Science")
        .select((0, "Type"), "Graduate")
        .project((2, "PName"))
        .project((2, "Email"));
    run_and_report(
        "Example 7.2 (pointer chase)",
        &session,
        &u.site.server,
        &q72,
    )?;

    // The paper's comparison: the paper's plan (1) derives pointers to
    // instructors of graduate courses by downloading every session and
    // course page, then intersects them with the CS department's pointers.
    // Build it explicitly and show it is "well over 50" page accesses.
    let explain = session.explain(&q72)?;
    let paper_plan_1 = NalgExpr::entry("SessionListPage")
        .unnest("SesList")
        .follow("ToSes", "SessionPage")
        .unnest("SessionPage.CourseList")
        .follow("SessionPage.CourseList.ToCourse", "CoursePage")
        .select(Pred::eq("Type", "Graduate"))
        .join(
            NalgExpr::entry("DeptListPage")
                .unnest("DeptList")
                .select(Pred::eq("DName", "Computer Science"))
                .follow("ToDept", "DeptPage")
                .unnest("DeptPage.ProfList"),
            vec![("CoursePage.ToProf", "DeptPage.ProfList.ToProf")],
        )
        .follow("CoursePage.ToProf", "ProfPage")
        .project(vec!["ProfPage.PName", "ProfPage.Email"]);
    u.site.server.reset_stats();
    let report = session.execute(&paper_plan_1)?;
    println!("══ Example 7.2, the paper's plan (1) for comparison ══\n");
    println!("{}", nalg::display::tree(&paper_plan_1));
    println!(
        "measured {} page accesses — versus ≈{} for the chase plan",
        report.cost_model_accesses(),
        explain.best().estimate.cost.pages.round()
    );
    Ok(())
}
