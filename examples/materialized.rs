//! Materialized views with lazy incremental maintenance (Section 8).
//!
//! The whole site is materialized once; afterwards queries run on the
//! local store, checking freshness with light connections (HEAD) and
//! downloading only the pages that actually changed.
//!
//! ```sh
//! cargo run --example materialized
//! ```

use webviews::matview::maintain;
use webviews::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut u = University::generate(UniversityConfig::default())?;
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();

    // 1. materialize the ADM representation of the site
    let mut store = MatStore::new();
    let downloaded = store.materialize(&u.site.scheme, &u.site.server)?;
    println!("materialized {downloaded} pages locally\n");
    u.site.server.reset_stats();

    let query = ConjunctiveQuery::new("graduate courses")
        .atom("Course")
        .select((0, "Type"), "Graduate")
        .project((0, "CName"))
        .project((0, "Description"));

    // 2. query the unchanged site: light connections only, zero downloads
    {
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &query)?;
        println!(
            "unchanged site → {} light connections, {} downloads, {} rows",
            out.counters.light_connections,
            out.counters.downloads,
            out.relation.len()
        );
    }

    // 3. the autonomous site manager updates a few pages behind our back
    u.update_course_description(7, "Revised syllabus for the new term.")?;
    u.update_course_description(21, "Now includes a project component.")?;
    let new_course = u.add_course(4, "Fall", "Graduate")?;
    println!(
        "\nsite manager edited 2 course pages and added course {new_course} (we were not notified)"
    );

    // 4. the same query now repairs exactly the changed pages
    {
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &query)?;
        println!(
            "after updates  → {} light connections, {} downloads (only changed pages), {} rows",
            out.counters.light_connections,
            out.counters.downloads,
            out.relation.len()
        );
    }

    // 5. deletion: the store notices, skips the page, and defers the
    //    confirmation to the off-line CheckMissing sweep
    let victim = u.course_ids()[0];
    u.remove_course(victim)?;
    {
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &query)?;
        println!(
            "\nafter a deletion → {} downloads, {} broken links, CheckMissing holds {} URL(s)",
            out.counters.downloads,
            out.broken_links,
            store.check_missing.len()
        );
    }
    let purge = maintain::purge_missing(&mut store, &u.site.server);
    println!(
        "off-line sweep: checked {}, confirmed deleted {}, still alive {}",
        purge.checked, purge.confirmed_deleted, purge.still_alive
    );

    // 6. compare with eager maintenance: a full re-crawl
    u.site.server.reset_stats();
    let n = maintain::full_refresh(&mut store, &u.site.scheme, &u.site.server)?;
    println!(
        "\neager alternative (full refresh): {n} downloads — the lazy strategy did the same \
         job with a handful"
    );
    assert!(maintain::audit(&store, &u.site).is_empty());
    println!("audit: store is consistent with the site ✓");
    Ok(())
}
