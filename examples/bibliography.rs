//! The introduction's bibliography example: four ways to find "all authors
//! who had papers in the last three VLDB conferences", with wildly
//! different page-access costs — plus the "editors of VLDB '96" redundancy
//! example (the answer is replicated on the conference page, so the
//! edition page need not be fetched at all).
//!
//! ```sh
//! cargo run --example bibliography
//! ```

use webviews::nalg::display;
use webviews::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small author population and thick editions so the three-edition
    // intersection is non-empty (the real Trier site had >16,000 authors —
    // the harness sweeps that scale).
    let bib = Bibliography::generate(BibConfig {
        authors: 80,
        papers_per_edition: 25,
        ..BibConfig::default()
    })?;
    println!(
        "bibliography site: {} pages, {} authors\n",
        bib.site.total_pages(),
        bib.author_count()
    );
    let stats = SiteStatistics::from_site(&bib.site);
    let catalog = bibliography_catalog();
    let source = LiveSource::for_site(&bib.site);

    // ── the intro query, via the optimizer ────────────────────────────
    // "authors with papers in each of the last three VLDB conferences":
    // three AuthorPub atoms joined on AName. The catalog carries all four
    // navigation strategies; incomplete ones (database-conference list,
    // featured links) are enabled explicitly, as the paper's site designer
    // would for VLDB queries.
    let years = bib.last_three_years();
    let mut q = ConjunctiveQuery::new("authors in last three VLDBs");
    for (i, y) in years.iter().enumerate() {
        q = q
            .atom("AuthorPub")
            .select((i, "ConfName"), "VLDB")
            .select((i, "Year"), y.to_string());
    }
    q = q
        .join((0, "AName"), (1, "AName"))
        .join((1, "AName"), (2, "AName"))
        .project((0, "AName"));

    let session = QuerySession::new(&bib.site.scheme, &catalog, &stats, &source)
        .allow_incomplete_navigations();
    let outcome = session.run(&q)?;
    println!(
        "optimizer chose (estimated {:.1} pages, measured {}):\n{}",
        outcome.estimated_pages(),
        outcome.measured_pages(),
        display::tree(&outcome.explain.best().expr)
    );
    let mut answer: Vec<String> = outcome
        .report
        .relation
        .rows()
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect();
    answer.sort();
    println!("answer ({} authors): {answer:?}", answer.len());
    assert_eq!(answer, bib.expected_authors_last3_vldb());

    // ── the four strategies, spelled out and measured ──────────────────
    println!("\nthe four strategies of the paper's introduction:");
    let edition_branch = |entry: NalgExpr| {
        let mut joined: Option<NalgExpr> = None;
        for (i, y) in years.iter().enumerate() {
            let branch = entry
                .clone()
                .select(Pred::eq("ConfName", "VLDB"))
                .follow_as("ToConf", "ConfPage", format!("Conf{i}"))
                .unnest(format!("Conf{i}.EditionList"))
                .select(Pred::eq(format!("Conf{i}.EditionList.Year"), y.to_string()))
                .follow_as(
                    format!("Conf{i}.EditionList.ToEdition"),
                    "EditionPage",
                    format!("Ed{i}"),
                )
                .unnest(format!("Ed{i}.PaperList"))
                .unnest(format!("Ed{i}.PaperList.Authors"))
                .project(vec![format!("Ed{i}.PaperList.Authors.AName")]);
            joined = Some(match joined {
                None => branch,
                Some(acc) => {
                    let k = i;
                    acc.join(
                        branch,
                        vec![(
                            format!("Ed{}.PaperList.Authors.AName", k - 1),
                            format!("Ed{k}.PaperList.Authors.AName"),
                        )],
                    )
                }
            });
        }
        joined
            .unwrap()
            .project(vec!["Ed0.PaperList.Authors.AName".to_string()])
    };

    let strategies: Vec<(&str, NalgExpr)> = vec![
        (
            "S1: home → all conferences → VLDB → editions",
            edition_branch(
                NalgExpr::entry("BibHomePage")
                    .follow("ToConfList", "ConfListPage")
                    .unnest("ConfList"),
            ),
        ),
        (
            "S2: home → database conferences (smaller page) → VLDB → editions",
            edition_branch(
                NalgExpr::entry("BibHomePage")
                    .follow("ToDBConfList", "DBConfListPage")
                    .unnest("ConfList"),
            ),
        ),
        (
            "S3: home → VLDB directly (featured link) → editions",
            edition_branch(NalgExpr::entry("BibHomePage").unnest("Featured")),
        ),
        ("S4: home → author list → EVERY author page", {
            let mut joined: Option<NalgExpr> = None;
            for (i, y) in years.iter().enumerate() {
                let branch = NalgExpr::entry_as("BibHomePage", format!("H{i}"))
                    .follow_as(
                        format!("H{i}.ToAuthorList"),
                        "AuthorListPage",
                        format!("AL{i}"),
                    )
                    .unnest(format!("AL{i}.AuthorList"))
                    .follow_as(
                        format!("AL{i}.AuthorList.ToAuthor"),
                        "AuthorPage",
                        format!("A{i}"),
                    )
                    .unnest(format!("A{i}.PubList"))
                    .select(Pred::And(vec![
                        Pred::eq(format!("A{i}.PubList.ConfName"), "VLDB"),
                        Pred::eq(format!("A{i}.PubList.Year"), y.to_string()),
                    ]))
                    .project(vec![format!("A{i}.AName")]);
                joined = Some(match joined {
                    None => branch,
                    Some(acc) => acc.join(
                        branch,
                        vec![(format!("A{}.AName", i - 1), format!("A{i}.AName"))],
                    ),
                });
            }
            joined.unwrap().project(vec!["A0.AName".to_string()])
        }),
    ];

    let evaluator_scheme = &bib.site.scheme;
    for (name, plan) in strategies {
        bib.site.server.reset_stats();
        let report = nalg::Evaluator::new(evaluator_scheme, &source).eval(&plan)?;
        let snap = bib.site.server.stats();
        println!(
            "  {name}\n     cost-model accesses: {:>6}   downloads: {:>6}   bytes: {:>9}   rows: {}",
            report.cost_model_accesses(),
            report.page_accesses,
            snap.bytes,
            report.relation.len()
        );
    }

    // ── editors of VLDB '96: rule 5/7 prune the edition navigation ─────
    println!("\neditors of VLDB 1996 (redundancy exploitation):");
    let q = parse_query(
        "SELECT Editors FROM ConfEdition WHERE ConfName = 'VLDB' AND Year = 1996",
        &catalog,
    )?;
    bib.site.server.reset_stats();
    let session = QuerySession::new(&bib.site.scheme, &catalog, &stats, &source);
    let outcome = session.run(&q)?;
    println!("{}", display::tree(&outcome.explain.best().expr));
    println!(
        "measured {} page accesses (the edition page is never fetched)",
        outcome.measured_pages()
    );
    println!("answer:\n{}", outcome.report.relation.to_table());
    assert_eq!(
        outcome.report.relation.rows()[0][0].as_text().unwrap(),
        bib.expected_editors(0, 1996)
    );
    Ok(())
}
