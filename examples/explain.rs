//! A miniature EXPLAIN tool: pass an SQL query over the university view on
//! the command line and see every candidate navigation plan with its
//! estimated cost.
//!
//! ```sh
//! cargo run --example explain -- "SELECT PName FROM Professor WHERE Rank = 'Full'"
//! cargo run --example explain            # uses a default query
//! ```

use webviews::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sql = std::env::args().nth(1).unwrap_or_else(|| {
        "SELECT c.CName, Description \
         FROM Professor p, CourseInstructor ci, Course c \
         WHERE p.PName = ci.PName AND ci.CName = c.CName \
           AND p.Rank = 'Full' AND c.Session = 'Fall'"
            .to_string()
    });

    let u = University::generate(UniversityConfig::default())?;
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();

    println!("external view:");
    for rel in catalog.relations() {
        println!("  {}({})", rel.name, rel.attrs.join(", "));
    }
    println!("\nSQL: {sql}\n");

    let query = parse_query(&sql, &catalog)?;
    let optimizer = Optimizer::new(&u.site.scheme, &catalog, &stats);
    let explain = optimizer.optimize(&query)?;
    println!("{}", explain.report());

    // also show what each rewrite stage contributes, by re-optimizing with
    // parts of the rule set disabled
    println!("ablation (estimated pages of the best plan):");
    let variants: Vec<(&str, RuleMask)> = vec![
        ("full Algorithm 1", RuleMask::all()),
        (
            "no pointer chase (rule 9)",
            RuleMask::all().without_pointer_chase(),
        ),
        (
            "no pointer join (rule 8)",
            RuleMask::all().without_pointer_join(),
        ),
        (
            "no selection pushing (rule 6)",
            RuleMask::all().without_selection_pushing(),
        ),
        ("no rewriting at all", RuleMask::none()),
    ];
    for (name, mask) in variants {
        let opt = Optimizer::new(&u.site.scheme, &catalog, &stats).with_mask(mask);
        match opt.optimize(&query) {
            Ok(e) => println!("  {name:<32} {:>8.1}", e.best().estimate.cost.pages),
            Err(err) => println!("  {name:<32} failed: {err}"),
        }
    }
    Ok(())
}
