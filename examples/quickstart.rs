//! Quickstart: pose an SQL query over a relational view of a web site and
//! let the optimizer navigate for you.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use webviews::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A university web site (the paper's Figure 1), served by an
    // instrumented in-process web server: 3 departments, 20 professors,
    // 50 courses — the exact parameters of the paper's Example 7.2.
    let university = University::generate(UniversityConfig::default())?;
    println!(
        "generated site `{}`: {} pages\n",
        university.site.name,
        university.site.total_pages()
    );

    // The web scheme (Figure 1 as text).
    println!("web scheme:\n{}", university.site.scheme.describe());

    // Site statistics drive the cost model (the paper assumes they are
    // collected by exploring the site).
    let stats = SiteStatistics::from_site(&university.site);

    // The external (relational) view: the paper's five relations.
    let catalog = university_catalog();
    let source = LiveSource::for_site(&university.site);
    let session = QuerySession::new(&university.site.scheme, &catalog, &stats, &source);

    // An SQL query against the view.
    let sql = "SELECT Professor.PName, Email FROM Professor, ProfDept \
               WHERE Professor.PName = ProfDept.PName \
                 AND DName = 'Computer Science'";
    println!("SQL: {sql}\n");
    let query = parse_query(sql, &catalog)?;

    // The optimizer enumerates navigation plans and picks the cheapest.
    let outcome = session.run(&query)?;
    println!("{}", outcome.explain.report());

    println!(
        "estimated {:.1} page accesses — measured {} (downloads: {})\n",
        outcome.estimated_pages(),
        outcome.measured_pages(),
        outcome.downloads(),
    );
    println!("answer:\n{}", outcome.report.relation.to_table());
    Ok(())
}
