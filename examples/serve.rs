//! The serving layer end to end: a multi-tenant [`QueryServer`] over the
//! university site fields a concurrent mix of SQL queries through the
//! plan cache and the single-flight fetch coalescer, then prints the
//! serving counters next to the paper's per-query numbers.
//!
//! ```sh
//! cargo run --example serve
//! cargo run --example serve -- 32 8    # requests, workers
//! ```

use webviews::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let requests: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let u = University::generate(UniversityConfig::default())?;
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = university_catalog();

    // The query mix: a skewed rotation over three SQL queries.
    let mix: Vec<ConjunctiveQuery> = [
        "SELECT PName FROM Professor WHERE Rank = 'Full'",
        "SELECT PName FROM Professor WHERE Rank = 'Full'",
        "SELECT p.PName, Email FROM Professor p, ProfDept pd \
         WHERE p.PName = pd.PName AND pd.DName = 'Computer Science'",
        "SELECT DName, Address FROM Dept",
    ]
    .iter()
    .map(|sql| parse_query(sql, &catalog))
    .collect::<Result<_, _>>()?;

    // The serving stack: live site → single-flight coalescer → server.
    // 2 ms of simulated latency per GET gives the coalescer overlapping
    // fetches to merge.
    u.site
        .server
        .set_latency(std::time::Duration::from_millis(2));
    let live = LiveSource::for_site(&u.site);
    let coalesced = CoalescingSource::new(&live);
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &coalesced)
        .with_admission_capacity(workers);

    println!("serving {requests} requests over {workers} workers...\n");
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (server, mix) = (&server, &mix);
            scope.spawn(move || {
                let mut i = w;
                while i < requests {
                    let q = &mix[i % mix.len()];
                    let out = server.serve(q).expect("serve");
                    let o = out.outcome.expect("not shed");
                    println!(
                        "  [{w}] {:<28} {:>3} rows, {:>3} page accesses, plan {}",
                        q.name,
                        o.report.relation.len(),
                        o.report.page_accesses,
                        if out.cached_plan {
                            "cached"
                        } else {
                            "optimized"
                        },
                    );
                    i += workers;
                }
            });
        }
    });
    let wall = t0.elapsed();
    u.site.server.set_latency(std::time::Duration::ZERO);

    let s = server.stats();
    let c = coalesced.stats();
    println!(
        "\n{requests} requests in {wall:.2?} ({:.0} req/s)",
        requests as f64 / wall.as_secs_f64()
    );
    println!(
        "plan cache: {} hits / {} misses ({:.0}% hit rate), {} entries",
        s.plan_cache.hits,
        s.plan_cache.misses,
        s.plan_cache.hit_rate() * 100.0,
        s.plan_cache.entries,
    );
    println!(
        "coalescing: {} leaders, {} followers — {} server GETs saved",
        c.leaders,
        c.followers,
        c.saved_gets()
    );
    println!(
        "server GETs: {} (admission: {} admitted, {} shed, peak {} concurrent)",
        u.site.server.stats().gets,
        s.admission.admitted,
        s.admission.shed,
        s.admission.peak_active,
    );
    println!("\nmetrics:\n{}", server.metrics().render_prometheus());
    Ok(())
}
