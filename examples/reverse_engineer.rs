//! Reverse-engineering a site, end to end — the paper's footnote 2 ("the
//! description of the Web portion is usually an a posteriori one … with
//! the help of tools which semi-automatically analyze the Web") and the
//! Section 5 alternative ("by inference over inclusion constraints, the
//! system might be able to select default navigations"):
//!
//! 1. crawl the site through the wrapper layer,
//! 2. mine link and inclusion constraints from the instance,
//! 3. extend the scheme with the discovered constraints,
//! 4. infer provably-complete default navigations,
//! 5. build a relational view catalog automatically,
//! 6. answer SQL over it — no hand-written catalog anywhere.
//!
//! ```sh
//! cargo run --example reverse_engineer
//! ```

use webviews::prelude::*;
use webviews::wvcore::{
    auto_catalog, crawl_instance_parallel, discover_constraints, infer_navigations,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let u = University::generate(UniversityConfig::default())?;
    let source = LiveSource::for_site(&u.site);

    // 1. explore the site (parallel crawl through the HTML wrappers)
    let instance = crawl_instance_parallel(&u.site.scheme, &source, 4);
    let pages: usize = instance.values().map(Vec::len).sum();
    println!(
        "crawled {pages} pages across {} page-schemes",
        instance.len()
    );

    // 2. mine constraints from what we saw
    let mined = discover_constraints(&u.site.scheme, &instance);
    println!(
        "discovered {} link constraints and {} inclusion constraints, e.g.:",
        mined.link_constraints.len(),
        mined.inclusion_constraints.len()
    );
    for c in mined.link_constraints.iter().take(3) {
        println!("  {c}");
    }
    for c in mined.inclusion_constraints.iter().take(3) {
        println!("  {c}");
    }

    // 3. extend the scheme with everything we learned
    let enriched = u
        .site
        .scheme
        .extended_with(mined.link_constraints, mined.inclusion_constraints)?;

    // 4. infer complete navigations, e.g. for professors
    println!("\ninferred navigations to ProfPage:");
    for nav in infer_navigations(&enriched, "ProfPage", 3) {
        println!(
            "  [{}] {}",
            if nav.complete {
                "complete  "
            } else {
                "incomplete"
            },
            nav.path
        );
    }

    // 5. an automatic relational view over the whole site
    let catalog = auto_catalog(&enriched, 4);
    println!("\nautomatic external view:");
    for rel in catalog.relations() {
        println!(
            "  {}({}) — {} navigation(s)",
            rel.name,
            rel.attrs.join(", "),
            rel.navigations.len()
        );
    }

    // 6. SQL over the inferred view
    let stats = SiteStatistics::from_instance(&enriched, &instance);
    let session = QuerySession::new(&enriched, &catalog, &stats, &source);
    let q = parse_query(
        "SELECT PName, DName FROM ProfPage WHERE Rank = 'Full'",
        &catalog,
    )?;
    u.site.server.reset_stats();
    let outcome = session.run(&q)?;
    println!(
        "\nSELECT PName, DName FROM ProfPage WHERE Rank = 'Full'  →  {} rows, {} page accesses\n",
        outcome.report.relation.len(),
        outcome.measured_pages()
    );
    println!("{}", outcome.report.relation.to_table());
    Ok(())
}
