//! # webviews — Efficient Queries over Web Views
//!
//! A full reproduction of *Efficient Queries over Web Views*
//! (G. Mecca, A. Mendelzon, P. Merialdo — EDBT 1998) as a Rust workspace:
//! relational views over structured web sites, translated by a
//! constraint-driven optimizer into navigation plans that minimize network
//! page accesses.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`adm`] | the Araneus data model: page-schemes, nested relations, link & inclusion constraints |
//! | [`websim`] | the simulated web: virtual server (GET/HEAD + counters), HTML generation, site generators |
//! | [`wrapper`] | HTML tokenizer, mini-DOM, scheme-driven extraction into nested tuples |
//! | [`nalg`] | the navigational algebra: expressions, plan display, evaluation |
//! | [`wvcore`] | the optimizer: rewrite rules 2–9, statistics, cost model, Algorithm 1 |
//! | [`wvquery`] | the SQL-subset front end |
//! | [`matview`] | materialized views: URLCheck, Algorithm 3 lazy maintenance |
//! | [`resilience`] | fault tolerance: retry policies, circuit breakers, partial-result degradation over a chaos-capable web |
//! | [`obs`] | observability: structured tracing, metrics registry, EXPLAIN ANALYZE plumbing |
//! | [`serve`] | multi-tenant serving: plan cache, admission control, single-flight fetch coalescing |
//! | [`dataflow`] | partially-stateful incremental view maintenance: change feeds, ± delta propagation, byte-budgeted partial state with upqueries |
//!
//! ## Quickstart
//!
//! ```
//! use webviews::prelude::*;
//!
//! // 1. generate the paper's university site (Figure 1)
//! let site = University::generate(UniversityConfig::default()).unwrap();
//!
//! // 2. collect statistics and set up a query session over the live site
//! let stats = SiteStatistics::from_site(&site.site);
//! let catalog = university_catalog();
//! let source = LiveSource::for_site(&site.site);
//! let session = QuerySession::new(&site.site.scheme, &catalog, &stats, &source);
//!
//! // 3. pose an SQL query against the relational view
//! let q = parse_query(
//!     "SELECT PName FROM Professor WHERE Rank = 'Full'",
//!     &catalog,
//! ).unwrap();
//!
//! // 4. the optimizer picks a navigation plan; the evaluator runs it
//! let outcome = session.run(&q).unwrap();
//! assert!(!outcome.report.relation.is_empty());
//! println!("{}", outcome.explain.report());
//! ```

pub use adm;
pub use dataflow;
pub use matview;
pub use nalg;
pub use obs;
pub use resilience;
pub use serve;
pub use websim;
pub use wrapper;
pub use wvcore;
pub use wvquery;

/// Everything needed for typical use, importable in one line.
pub mod prelude {
    pub use adm::{
        AttrRef, Field, InclusionConstraint, LinkConstraint, PageScheme, Relation, Tuple, Url,
        Value, WebScheme, WebType,
    };
    pub use dataflow::{DeltaReport, IncrementalView, PartialStore};
    pub use matview::{MatAnalyzedOutcome, MatOutcome, MatSession, MatStore};
    pub use nalg::{
        CoalescingSource, DegradationMode, EvalReport, Evaluator, HedgeConfig, NalgExpr,
        PageSource, Pred,
    };
    pub use obs::{
        CancelToken, Deadline, EventKind, FixedHistogram, FlightDump, FlightRecorder,
        LatencyObjective, MetricsRegistry, PhaseBreakdown, RequestTrace, SloSnapshot, SloTracker,
        TraceSink, TriggerKind,
    };
    pub use resilience::{
        ConstraintHealth, HedgePolicy, ResilienceSnapshot, ResilientServer, ResilientSource,
        RetryPolicy,
    };
    pub use serve::{PlanCache, QueryServer, ServeOutcome, ServerStats};
    pub use websim::mutation::{DriftPlan, DriftRule, MutationPlan, MutationRule};
    pub use websim::sitegen::{BibConfig, Bibliography, University, UniversityConfig};
    pub use websim::{FaultPlan, FaultRule, LatencyProfile, Site, VirtualServer};
    pub use wrapper::wrap_page;
    pub use wvcore::views::{bibliography_catalog, university_catalog};
    pub use wvcore::{
        AnalyzedOutcome, ConjunctiveQuery, ConstraintDependency, Cost, Explain, ExplainAnalyze,
        FallbackOutcome, LiveSource, Optimizer, QueryOutcome, QuerySession, RuleMask,
        SiteStatistics, ViewCatalog,
    };
    pub use wvquery::parse_query;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_links() {
        let ws = websim::sitegen::university::university_scheme();
        assert!(ws.is_entry_point("HomePage"));
        let q = ConjunctiveQuery::new("t")
            .atom("Professor")
            .project((0, "PName"));
        assert_eq!(q.atoms.len(), 1);
    }

    // The README's "Surviving site drift" walkthrough, verbatim in spirit:
    // drift breaks a constraint, the audit catches it, the fallback answers,
    // and the next run routes around the quarantined constraint.
    #[test]
    fn readme_drift_walkthrough() {
        let mut site = University::generate(UniversityConfig::default()).unwrap();
        DriftPlan::new(3)
            .with_rule(DriftRule::perturb_attr("DeptPage", "DName", 1.0))
            .apply(&mut site.site)
            .unwrap();

        let stats = SiteStatistics::from_site(&site.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&site.site);
        let health = ConstraintHealth::new();
        let session = QuerySession::new(&site.site.scheme, &catalog, &stats, &source)
            .with_audit(1.0, 7)
            .with_constraint_health(&health);

        let q = ConjunctiveQuery::new("cs-dept")
            .atom("Dept")
            .select((0, "DName"), "Computer Science")
            .project((0, "Address"));
        let outcome = session.run(&q).unwrap();
        assert!(outcome.fell_back());
        let fb = outcome.fallback.as_ref().unwrap();
        assert!(!fb.violated.is_empty());
        assert!(fb.diverged);

        let again = session.run(&q).unwrap();
        assert!(!again.fell_back());
        assert!(again.explain.report().contains("quarantined (excluded"));
    }

    // The README's "Operating the server" walkthrough: a fully observed
    // server hands every request a deterministic id, a phase breakdown,
    // a causal trace in the flight recorder, and an SLO score — without
    // touching the answer.
    #[test]
    fn readme_operating_walkthrough() {
        let site = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&site.site);
        let catalog = university_catalog();
        let live = LiveSource::for_site(&site.site);
        let coalesced = CoalescingSource::new(&live);

        let slo = SloTracker::new(LatencyObjective::new("serve", 250_000, 0.99));
        let recorder = FlightRecorder::new();
        let server = QueryServer::new(&site.site.scheme, &catalog, &stats, &coalesced)
            .with_admission_capacity(4)
            .with_trace(42)
            .with_slo(&slo)
            .with_flight_recorder(&recorder);

        let q = ConjunctiveQuery::new("full professors")
            .atom("Professor")
            .select((0, "Rank"), "Full")
            .project((0, "PName"));
        let out = server.serve(&q).unwrap();

        let rid = out.request_id.unwrap();
        let _phases = out.phases.unwrap();

        let trace = &recorder.recent()[0];
        assert_eq!(trace.request_id, rid);
        assert!(trace.causal_jsonl().contains("serve.request"));

        let snap = slo.snapshot();
        assert_eq!(snap.total, 1);
        assert!(snap.to_json().contains("p99_us"));
    }

    // The README's "Keeping a view fresh incrementally" walkthrough: a
    // registered view tracks a mutating site through ± delta propagation,
    // fetching only changed pages, and the answer always matches live
    // evaluation.
    #[test]
    fn readme_incremental_walkthrough() {
        let mut site = University::generate(UniversityConfig::default()).unwrap();
        let ws = site.site.scheme.clone();

        // Materialize the site once, then register a view over it.
        let mut views = IncrementalView::new(&ws);
        views.materialize(&site.site.server).unwrap();
        views.set_cursor(site.site.change_cursor());
        let profs = NalgExpr::entry("DeptListPage")
            .unnest("DeptList")
            .follow("ToDept", "DeptPage")
            .unnest("ProfList")
            .follow("ToProf", "ProfPage")
            .project(vec!["ProfPage.PName", "ProfPage.Rank"]);
        views
            .register("profs", "profs", &profs, &site.site.server)
            .unwrap();

        // The site drifts: some professors change rank.
        let plan = MutationPlan::new(5).with_rule(MutationRule::edit_attr("ProfPage", "Rank", 0.4));
        let mutated = plan.apply_round(&mut site.site, 0).unwrap();
        assert!(mutated.edited_pages > 0);

        // One sync drains the change feed — fetching only what changed.
        let report = views.sync(&site.site).unwrap();
        assert_eq!(report.changes_seen, mutated.total());
        assert!(report.pages_fetched <= report.changes_seen);

        // The maintained answer matches a from-scratch live evaluation.
        let source = LiveSource::new(&ws, &site.site.server);
        let live = Evaluator::new(&ws, &source)
            .eval(&profs)
            .unwrap()
            .relation
            .sorted();
        assert_eq!(views.answer("profs").unwrap().sorted(), live);
    }

    // The README's "Running the server workload" walkthrough: a shared
    // QueryServer over a coalescing source serves concurrent sessions,
    // repeated queries hit the plan cache, and the answers stay
    // byte-identical to a plain sequential session.
    #[test]
    fn readme_serving_walkthrough() {
        let site = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&site.site);
        let catalog = university_catalog();
        let live = LiveSource::for_site(&site.site);
        let coalesced = CoalescingSource::new(&live);
        let server = QueryServer::new(&site.site.scheme, &catalog, &stats, &coalesced)
            .with_admission_capacity(4);

        let q = ConjunctiveQuery::new("full professors")
            .atom("Professor")
            .select((0, "Rank"), "Full")
            .project((0, "PName"));
        let baseline = QuerySession::new(&site.site.scheme, &catalog, &stats, &live)
            .run(&q)
            .unwrap();

        // First request optimizes and fills the plan cache...
        assert!(!server.serve(&q).unwrap().cached_plan);
        // ...then concurrent sessions reuse the plan and share fetches.
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let (server, q, baseline) = (&server, &q, &baseline);
                scope.spawn(move || {
                    let out = server.serve(q).unwrap();
                    assert!(out.cached_plan);
                    let out = out.outcome.unwrap();
                    assert_eq!(
                        out.report.relation.sorted(),
                        baseline.report.relation.sorted()
                    );
                    assert_eq!(out.report.page_accesses, baseline.report.page_accesses);
                });
            }
        });
        let s = server.stats();
        assert_eq!(s.requests, 4);
        assert_eq!(s.plan_cache.hits, 3, "one miss fills, the rest hit");
        assert!(server
            .metrics()
            .render_prometheus()
            .contains("serve_requests 4"));
    }

    // The README's "Bounding tail latency" walkthrough: under seeded
    // latency-only chaos a budgeted, hedged, relevance-cancelling server
    // still answers byte-exactly within a generous budget, and an
    // already-expired request browns out honestly as an empty partial.
    #[test]
    fn readme_tail_latency_walkthrough() {
        let site = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&site.site);
        let catalog = university_catalog();
        let live = LiveSource::for_site(&site.site);
        let coalesced = CoalescingSource::new(&live);

        site.site.server.set_latency_profile(LatencyProfile {
            floor_us: 100,
            tail_us: 5_000,
            tail_rate: 0.2,
            seed: 7,
        });

        let hedge = HedgePolicy::new(500).with_jitter_seed(7);
        let server = QueryServer::new(&site.site.scheme, &catalog, &stats, &coalesced)
            .with_concurrent_fetch(3)
            .with_deadline_budget(250_000)
            .with_hedging(hedge.config())
            .with_relevance_cancel();

        let q = ConjunctiveQuery::new("full professors")
            .atom("Professor")
            .select((0, "Rank"), "Full")
            .project((0, "PName"));

        let out = server.serve(&q).unwrap();
        assert!(!out.brown_out);
        let report = out.outcome.unwrap().report;
        assert!(report.is_complete() && !report.deadline_exceeded);

        let snap = hedge.snapshot();
        assert!(snap.hedge_wins <= snap.hedges);

        let expired = server
            .serve_with_deadline(&q, Deadline::after_us(0))
            .unwrap();
        assert!(expired.brown_out && expired.outcome.is_none());
        site.site.server.clear_latency_profile();
    }
}
