//! An interactive shell over web views: load a (simulated) site, pose SQL,
//! inspect plans, statistics, and schemes.
//!
//! ```sh
//! cargo run --bin webviews-cli
//! webviews> site university 3 20 50
//! webviews> explain SELECT PName FROM Professor WHERE Rank = 'Full'
//! webviews> sql SELECT PName FROM Professor WHERE Rank = 'Full'
//! webviews> help
//! ```

use std::io::{BufRead, Write as _};
use webviews::prelude::*;

enum LoadedSite {
    University(Box<University>),
    Bibliography(Box<Bibliography>),
}

struct State {
    site: LoadedSite,
    stats: SiteStatistics,
    catalog: ViewCatalog,
}

impl State {
    fn university(cfg: UniversityConfig) -> Result<State, Box<dyn std::error::Error>> {
        let u = University::generate(cfg)?;
        let stats = SiteStatistics::from_site(&u.site);
        Ok(State {
            site: LoadedSite::University(Box::new(u)),
            stats,
            catalog: university_catalog(),
        })
    }

    fn bibliography(cfg: BibConfig) -> Result<State, Box<dyn std::error::Error>> {
        let b = Bibliography::generate(cfg)?;
        let stats = SiteStatistics::from_site(&b.site);
        Ok(State {
            site: LoadedSite::Bibliography(Box::new(b)),
            stats,
            catalog: bibliography_catalog(),
        })
    }

    fn the_site(&self) -> &Site {
        match &self.site {
            LoadedSite::University(u) => &u.site,
            LoadedSite::Bibliography(b) => &b.site,
        }
    }
}

const HELP: &str = "\
commands:
  site university [depts profs courses]   load a university site (default 3 20 50)
  site bibliography [authors]             load a bibliography site (default 300)
  sql <query>                             optimize, run, and show the answer
  explain <query>                         show every candidate plan with costs
  relations                               list the external (relational) view
  schema                                  print the ADM web scheme
  dot                                     print the scheme as Graphviz DOT
  stats                                   print the collected site statistics
  help                                    this text
  quit                                    exit";

fn handle(state: &mut State, line: &str) -> String {
    let line = line.trim();
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd.to_ascii_lowercase().as_str() {
        "" => String::new(),
        "help" | "?" => HELP.to_string(),
        "site" => {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("university") => {
                    let nums: Vec<usize> = parts.filter_map(|p| p.parse().ok()).collect();
                    let cfg = UniversityConfig {
                        departments: *nums.first().unwrap_or(&3),
                        professors: *nums.get(1).unwrap_or(&20),
                        courses: *nums.get(2).unwrap_or(&50),
                        ..UniversityConfig::default()
                    };
                    match State::university(cfg) {
                        Ok(s) => {
                            *state = s;
                            format!(
                                "loaded university site: {} pages",
                                state.the_site().total_pages()
                            )
                        }
                        Err(e) => format!("error: {e}"),
                    }
                }
                Some("bibliography") => {
                    let authors = parts.next().and_then(|p| p.parse().ok()).unwrap_or(300);
                    match State::bibliography(BibConfig {
                        authors,
                        ..BibConfig::default()
                    }) {
                        Ok(s) => {
                            *state = s;
                            format!(
                                "loaded bibliography site: {} pages",
                                state.the_site().total_pages()
                            )
                        }
                        Err(e) => format!("error: {e}"),
                    }
                }
                _ => "usage: site university [depts profs courses] | site bibliography [authors]"
                    .to_string(),
            }
        }
        "relations" => {
            let mut out = String::new();
            for rel in state.catalog.relations() {
                out.push_str(&format!(
                    "{}({}) — {} navigation(s)\n",
                    rel.name,
                    rel.attrs.join(", "),
                    rel.navigations.len()
                ));
            }
            out.trim_end().to_string()
        }
        "schema" => state.the_site().scheme.describe(),
        "dot" => webviews::adm::dot::scheme_to_dot(&state.the_site().scheme),
        "stats" => state.stats.to_text(),
        "sql" | "explain" => {
            let query = match parse_query(rest, &state.catalog) {
                Ok(q) => q,
                Err(e) => return format!("error: {e}"),
            };
            let site = state.the_site();
            let source = LiveSource::for_site(site);
            let session = QuerySession::new(&site.scheme, &state.catalog, &state.stats, &source);
            if cmd.eq_ignore_ascii_case("explain") {
                match session.explain(&query) {
                    Ok(explain) => explain.report(),
                    Err(e) => format!("error: {e}"),
                }
            } else {
                site.server.reset_stats();
                match session.run(&query) {
                    Ok(outcome) => format!(
                        "{}\nestimated {:.1} pages — measured {} accesses, {} downloads\n\n{}",
                        nalg::display::tree(&outcome.explain.best().expr),
                        outcome.estimated_pages(),
                        outcome.measured_pages(),
                        outcome.downloads(),
                        outcome.report.relation.to_table()
                    ),
                    Err(e) => format!("error: {e}"),
                }
            }
        }
        other => format!("unknown command `{other}` — try `help`"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut state = State::university(UniversityConfig::default())?;
    println!(
        "webviews interactive shell — university site loaded ({} pages); `help` for commands",
        state.the_site().total_pages()
    );
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("webviews> ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.eq_ignore_ascii_case("quit") || trimmed.eq_ignore_ascii_case("exit") {
            break;
        }
        let reply = handle(&mut state, trimmed);
        if !reply.is_empty() {
            println!("{reply}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> State {
        State::university(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 10,
            ..UniversityConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn help_and_unknown() {
        let mut s = fresh();
        assert!(handle(&mut s, "help").contains("commands:"));
        assert!(handle(&mut s, "bogus").contains("unknown command"));
        assert_eq!(handle(&mut s, ""), "");
    }

    #[test]
    fn sql_round_trip() {
        let mut s = fresh();
        let out = handle(
            &mut s,
            "sql SELECT PName FROM Professor WHERE Rank = 'Full'",
        );
        assert!(out.contains("measured"), "{out}");
        assert!(out.contains("ProfPage.PName"), "{out}");
    }

    #[test]
    fn explain_lists_candidates() {
        let mut s = fresh();
        let out = handle(&mut s, "explain SELECT DName, Address FROM Dept");
        assert!(out.contains("candidate plan"), "{out}");
    }

    #[test]
    fn switch_sites() {
        let mut s = fresh();
        let out = handle(&mut s, "site bibliography 40");
        assert!(out.contains("loaded bibliography"), "{out}");
        let out = handle(&mut s, "sql SELECT ConfName FROM Conference");
        assert!(out.contains("ConfName"), "{out}");
        let out = handle(&mut s, "site university 2 5 8");
        assert!(out.contains("loaded university"), "{out}");
    }

    #[test]
    fn introspection_commands() {
        let mut s = fresh();
        assert!(handle(&mut s, "relations").contains("Professor(PName, Rank, Email)"));
        assert!(handle(&mut s, "schema").contains("ProfPage(URL"));
        assert!(handle(&mut s, "dot").starts_with("digraph"));
        assert!(handle(&mut s, "stats").contains("card ProfPage 6"));
    }

    #[test]
    fn sql_errors_are_reported_not_fatal() {
        let mut s = fresh();
        let out = handle(&mut s, "sql SELECT Nope FROM Professor");
        assert!(out.starts_with("error:"), "{out}");
        let out = handle(&mut s, "sql this is not sql");
        assert!(out.starts_with("error:"), "{out}");
    }
}
